"""Tracers: the single instrumentation surface of the simulated runtime.

Two implementations share one API:

* :class:`NullTracer` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented hot paths can skip argument
  construction entirely (``if tracer.enabled: ...``) and a run without
  tracing costs nothing (null-object pattern; no ``if tracer is not
  None`` branches at call sites).
* :class:`Tracer` — records :class:`~repro.obs.events.TraceEvent`
  objects in emission order.  It reads its clock from the simulation
  :class:`~repro.sim.core.Environment` it is attached to and never
  schedules anything, so attaching a tracer cannot perturb a run: a
  traced simulation finishes at exactly the same ``total_time`` as an
  untraced one.

Components find the active tracer on the environment
(``env.tracer``), which :class:`~repro.core.runtime.FelaRuntime` sets
when one is supplied — the one wiring point for the whole token
machinery, the collectives, and the network fabric.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ObservabilityError
from repro.obs.events import (
    CAT_FAULT,
    CAT_NETWORK,
    CAT_STRAGGLER,
    CAT_SYNC,
    CAT_TOKEN,
    CAT_TS,
    CAT_WORKER,
    EV_ALLREDUCE,
    EV_ASSIGNED,
    EV_BUFFERED,
    EV_DELAY,
    EV_FETCH,
    EV_LEVEL_SYNCED,
    EV_MINTED,
    EV_REPORTED,
    EV_TOKEN_INVALIDATED,
    EV_TOKEN_RECLAIMED,
    EV_TOKEN_REMINTED,
    EV_TRAINED,
    EV_TRANSFER,
    EV_TS_REQUEST,
    EV_WORKER_FAILED,
    EV_WORKER_JOINED,
    EV_WORKER_LEFT,
    TS_TRACK,
    TraceEvent,
)

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.tokens import Token


class NullTracer:
    """Disabled tracer: every operation is a no-op, every query empty."""

    #: Call sites guard non-trivial argument construction on this flag.
    enabled: bool = False

    __slots__ = ()

    def attach_env(self, env: _t.Any) -> None:
        """Accept (and ignore) a simulation environment."""

    def now(self) -> float:
        return 0.0

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Recorded events in emission order (always empty when null)."""
        return ()

    # -- generic emission ---------------------------------------------------

    def instant(
        self,
        name: str,
        category: str,
        track: int = TS_TRACK,
        **args: _t.Any,
    ) -> None:
        """Record an instantaneous event at the current simulation time."""

    def span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: int = TS_TRACK,
        **args: _t.Any,
    ) -> None:
        """Record a completed time interval."""

    # -- token lifecycle ----------------------------------------------------

    def token_minted(self, token: "Token") -> None:
        """The Token Generator produced ``token``."""

    def token_buffered(self, token: "Token") -> None:
        """``token`` entered the Token Bucket (its home worker's STB)."""

    def token_assigned(self, token: "Token", wid: int) -> None:
        """The distributor handed ``token`` to worker ``wid``."""

    def token_trained(
        self, token: "Token", wid: int, start: float, end: float
    ) -> None:
        """Worker ``wid`` computed ``token`` over ``[start, end]``."""

    def token_reported(self, token: "Token", wid: int) -> None:
        """The TS processed worker ``wid``'s completion report."""

    def level_synced(
        self,
        iteration: int,
        level: int,
        participants: _t.Sequence[int],
        wire_bytes: float,
    ) -> None:
        """A level's gradient synchronization finished."""

    # -- spans around the token lifecycle -----------------------------------

    def ts_request(
        self,
        wid: int,
        start: float,
        end: float,
        *,
        granted: bool,
        conflict: bool,
        token: int | None = None,
    ) -> None:
        """One complete TS request round-trip by worker ``wid``."""

    def fetch(
        self,
        wid: int,
        token: "Token",
        start: float,
        end: float,
        nbytes: float,
    ) -> None:
        """Worker ``wid`` fetched ``token``'s inputs over the fabric."""

    def straggler_delay(
        self, wid: int, iteration: int, start: float, end: float
    ) -> None:
        """Worker ``wid`` served an injected straggler delay."""

    def transfer(
        self, src: int, dst: int, nbytes: float, start: float, end: float
    ) -> None:
        """One network flow completed on the fabric."""

    def allreduce(
        self,
        workers: _t.Sequence[int],
        size_bytes: float,
        wire_bytes: float,
        start: float,
        end: float,
        context: _t.Any = None,
    ) -> None:
        """One gradient all-reduce collective completed."""

    # -- faults & elastic membership ----------------------------------------

    def worker_failed(
        self,
        wid: int,
        *,
        crash_time: float,
        reclaimed: int,
        reminted: int,
    ) -> None:
        """The TS detected worker ``wid``'s death (lease expiry)."""

    def token_reclaimed(self, token: "Token", dead_wid: int) -> None:
        """An in-flight token taken back from a dead worker."""

    def token_reminted(self, token: "Token", dead_wid: int) -> None:
        """A completed token re-entered the bucket for retraining."""

    def token_invalidated(
        self, token: "Token", assignee: int | None
    ) -> None:
        """A downstream consumer withdrawn after a dependency died."""

    def worker_joined(self, wid: int, *, iteration: int) -> None:
        """An elastic worker joined, first pulling at ``iteration``."""

    def worker_left(self, wid: int) -> None:
        """A draining worker finished its graceful leave."""


#: Module-level null tracer shared by every untraced environment.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer; see the module docstring for the contract."""

    enabled = True

    __slots__ = ("_events", "_seq", "_env")

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._seq: int = 0
        self._env: _t.Any = None

    def attach_env(self, env: _t.Any) -> None:
        """Bind the tracer's clock to a simulation environment."""
        self._env = env

    def now(self) -> float:
        if self._env is None:
            raise ObservabilityError(
                "tracer is not attached to a simulation environment; "
                "call attach_env() (FelaRuntime does this automatically)"
            )
        return self._env.now

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- emission -----------------------------------------------------------

    def _emit(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        track: int,
        args: dict[str, _t.Any],
    ) -> None:
        self._events.append(
            TraceEvent(
                name=name,
                category=category,
                start=start,
                duration=duration,
                track=track,
                seq=self._seq,
                args=args,
            )
        )
        self._seq += 1

    def instant(
        self,
        name: str,
        category: str,
        track: int = TS_TRACK,
        **args: _t.Any,
    ) -> None:
        self._emit(name, category, self.now(), 0.0, track, args)

    def span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        track: int = TS_TRACK,
        **args: _t.Any,
    ) -> None:
        if end < start:
            raise ObservabilityError(
                f"span {name!r} ends before it starts: [{start}, {end}]"
            )
        self._emit(name, category, start, end - start, track, args)

    # -- token lifecycle ----------------------------------------------------

    def _token_args(self, token: "Token") -> dict[str, _t.Any]:
        return {
            "token": token.tid,
            "level": token.level,
            "iteration": token.iteration,
            "token_type": token.type_name,
        }

    def token_minted(self, token: "Token") -> None:
        args = self._token_args(token)
        args["home"] = token.home_worker
        args["batch"] = token.batch
        args["deps"] = list(token.deps)
        self._emit(EV_MINTED, CAT_TOKEN, self.now(), 0.0, TS_TRACK, args)

    def token_buffered(self, token: "Token") -> None:
        args = self._token_args(token)
        args["stb"] = token.home_worker
        self._emit(EV_BUFFERED, CAT_TOKEN, self.now(), 0.0, TS_TRACK, args)

    def token_assigned(self, token: "Token", wid: int) -> None:
        args = self._token_args(token)
        args["worker"] = wid
        self._emit(EV_ASSIGNED, CAT_TOKEN, self.now(), 0.0, wid, args)

    def token_trained(
        self, token: "Token", wid: int, start: float, end: float
    ) -> None:
        args = self._token_args(token)
        args["worker"] = wid
        args["batch"] = token.batch
        self._emit(EV_TRAINED, CAT_TOKEN, start, end - start, wid, args)

    def token_reported(self, token: "Token", wid: int) -> None:
        args = self._token_args(token)
        args["worker"] = wid
        self._emit(EV_REPORTED, CAT_TOKEN, self.now(), 0.0, wid, args)

    def level_synced(
        self,
        iteration: int,
        level: int,
        participants: _t.Sequence[int],
        wire_bytes: float,
    ) -> None:
        self._emit(
            EV_LEVEL_SYNCED,
            CAT_SYNC,
            self.now(),
            0.0,
            TS_TRACK,
            {
                "iteration": iteration,
                "level": level,
                "participants": list(participants),
                "wire_bytes": wire_bytes,
            },
        )

    # -- spans --------------------------------------------------------------

    def ts_request(
        self,
        wid: int,
        start: float,
        end: float,
        *,
        granted: bool,
        conflict: bool,
        token: int | None = None,
    ) -> None:
        self.span(
            EV_TS_REQUEST,
            CAT_TS,
            start,
            end,
            track=wid,
            worker=wid,
            granted=granted,
            conflict=conflict,
            token=token,
        )

    def fetch(
        self,
        wid: int,
        token: "Token",
        start: float,
        end: float,
        nbytes: float,
    ) -> None:
        self.span(
            EV_FETCH,
            CAT_WORKER,
            start,
            end,
            track=wid,
            worker=wid,
            token=token.tid,
            token_type=token.type_name,
            bytes=nbytes,
        )

    def straggler_delay(
        self, wid: int, iteration: int, start: float, end: float
    ) -> None:
        self.span(
            EV_DELAY,
            CAT_STRAGGLER,
            start,
            end,
            track=wid,
            worker=wid,
            iteration=iteration,
        )

    def transfer(
        self, src: int, dst: int, nbytes: float, start: float, end: float
    ) -> None:
        self.span(
            EV_TRANSFER,
            CAT_NETWORK,
            start,
            end,
            track=src,
            src=src,
            dst=dst,
            bytes=nbytes,
        )

    def allreduce(
        self,
        workers: _t.Sequence[int],
        size_bytes: float,
        wire_bytes: float,
        start: float,
        end: float,
        context: _t.Any = None,
    ) -> None:
        args: dict[str, _t.Any] = {
            "participants": list(workers),
            "size_bytes": size_bytes,
            "wire_bytes": wire_bytes,
        }
        if (
            isinstance(context, tuple)
            and len(context) == 2
            and all(isinstance(part, int) for part in context)
        ):
            args["iteration"], args["level"] = context
        elif context is not None:
            args["context"] = repr(context)
        self.span(EV_ALLREDUCE, CAT_SYNC, start, end, track=TS_TRACK, **args)

    # -- faults & elastic membership ----------------------------------------

    def worker_failed(
        self,
        wid: int,
        *,
        crash_time: float,
        reclaimed: int,
        reminted: int,
    ) -> None:
        self.instant(
            EV_WORKER_FAILED,
            CAT_FAULT,
            track=wid,
            worker=wid,
            crash_time=crash_time,
            detect_time=self.now(),
            reclaimed=reclaimed,
            reminted=reminted,
        )

    def token_reclaimed(self, token: "Token", dead_wid: int) -> None:
        args = self._token_args(token)
        args["dead_worker"] = dead_wid
        self._emit(
            EV_TOKEN_RECLAIMED, CAT_FAULT, self.now(), 0.0, TS_TRACK, args
        )

    def token_reminted(self, token: "Token", dead_wid: int) -> None:
        args = self._token_args(token)
        args["dead_worker"] = dead_wid
        self._emit(
            EV_TOKEN_REMINTED, CAT_FAULT, self.now(), 0.0, TS_TRACK, args
        )

    def token_invalidated(
        self, token: "Token", assignee: int | None
    ) -> None:
        args = self._token_args(token)
        args["assignee"] = assignee
        self._emit(
            EV_TOKEN_INVALIDATED, CAT_FAULT, self.now(), 0.0, TS_TRACK, args
        )

    def worker_joined(self, wid: int, *, iteration: int) -> None:
        self.instant(
            EV_WORKER_JOINED,
            CAT_FAULT,
            track=wid,
            worker=wid,
            iteration=iteration,
        )

    def worker_left(self, wid: int) -> None:
        self.instant(EV_WORKER_LEFT, CAT_FAULT, track=wid, worker=wid)
