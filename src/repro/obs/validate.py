"""Trace-file validation CLI: ``python -m repro.obs.validate TRACE...``.

Checks an exported Chrome trace-event JSON file against the event schema
(:func:`repro.obs.exporters.validate_chrome_trace`) and, with
``--chains``, the Fela acceptance property: every (iteration, level) in
the trace must contain at least one complete
``minted -> buffered -> assigned -> trained -> reported -> synced``
causal chain (:func:`repro.obs.exporters.verify_causal_chains`).

CI runs this on the trace produced by a small traced experiment before
uploading it as a build artifact.  Exit code 0 means every file passed.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.errors import ReproError
from repro.obs.exporters import (
    complete_events,
    read_chrome_trace,
    validate_chrome_trace,
    verify_causal_chains,
)


def validate_file(path: str, check_chains: bool = False) -> list[str]:
    """Validate one trace file; returns the list of problems found."""
    try:
        payload = read_chrome_trace(path)
    except (OSError, ValueError, ReproError) as exc:
        return [f"cannot load {path}: {exc}"]
    problems = validate_chrome_trace(payload)
    if not problems and check_chains:
        problems = verify_causal_chains(payload)
    return problems


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate Chrome trace-event JSON files",
    )
    parser.add_argument("paths", nargs="+", help="trace JSON files")
    parser.add_argument(
        "--chains",
        action="store_true",
        help="also require a complete minted->synced causal chain per "
        "(iteration, level)",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        problems = validate_file(path, check_chains=args.chains)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            try:
                count = len(complete_events(read_chrome_trace(path)))
            except (OSError, ValueError, ReproError):
                count = 0
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
