"""Typed seams between the runtime and its observability attachments.

The runtime used to accept ``recorder: Any`` and ``invariants: Any``;
these :class:`typing.Protocol` definitions give mypy (and readers) the
actual contracts.  Anything structurally conforming can be plugged into
:class:`~repro.core.runtime.FelaRuntime` — the shipped implementations
are :class:`~repro.metrics.timeline.TimelineRecorder`,
:class:`~repro.analysis.invariants.InvariantChecker`, and
:class:`~repro.obs.tracer.Tracer`.
"""

from __future__ import annotations

import typing as _t

from repro.obs.events import TraceEvent

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import FelaConfig
    from repro.core.server import TokenServer
    from repro.core.tokens import Token


@_t.runtime_checkable
class TracerLike(_t.Protocol):
    """What instrumented components need from a tracer.

    Structural subset of :class:`~repro.obs.tracer.NullTracer`; see that
    class for per-method semantics.  Only the members every component
    touches are required here — the domain helpers are invoked through
    the concrete tracer the environment carries.
    """

    enabled: bool

    def attach_env(self, env: _t.Any) -> None: ...

    @property
    def events(self) -> tuple[TraceEvent, ...]: ...


@_t.runtime_checkable
class SpanSink(_t.Protocol):
    """A timeline consumer fed from the trace stream after a run.

    :class:`~repro.metrics.timeline.TimelineRecorder` is the shipped
    implementation; anything with these two methods can be handed to
    :class:`~repro.core.runtime.FelaRuntime` as ``recorder``.
    """

    def record(
        self,
        worker: int,
        kind: str,
        start: float,
        end: float,
        label: str = "",
    ) -> None: ...

    def ingest(self, events: _t.Sequence[TraceEvent]) -> None: ...


class InvariantMonitor(_t.Protocol):
    """The token-machinery hooks an invariant checker must provide.

    Mirrors :class:`~repro.analysis.invariants.InvariantChecker`; the
    runtime and Token Server call these at every lifecycle transition.
    """

    #: Gradient-collective accounting fed by ``ring_allreduce``.
    ledger: _t.Any

    def bind(self, config: "FelaConfig") -> None: ...

    def attach_env(self, env: _t.Any) -> None: ...

    def on_minted(self, token: "Token") -> None: ...

    def on_assigned(self, token: "Token", wid: int) -> None: ...

    def on_completed(self, token: "Token", wid: int) -> None: ...

    def on_reclaimed(self, token: "Token") -> None: ...

    def on_reminted(self, token: "Token") -> None: ...

    def on_invalidated(
        self, token: "Token", was_assigned: bool
    ) -> None: ...

    def on_worker_joined(self, wid: int) -> None: ...

    def on_sync_start(
        self,
        iteration: int,
        level: int,
        participants: _t.Sequence[int],
    ) -> None: ...

    def on_iteration_end(
        self, iteration: int, server: "TokenServer"
    ) -> None: ...

    def on_run_end(self, server: "TokenServer") -> None: ...

    def verify_conservation(self, server: "TokenServer") -> None: ...
