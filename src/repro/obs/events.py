"""The structured trace-event model: one vocabulary for the whole runtime.

Every instrumented component — the :class:`~repro.core.server.TokenServer`,
the workers, the collectives, the network fabric — emits
:class:`TraceEvent` records through a single
:class:`~repro.obs.tracer.Tracer`.  Events are *causally linkable*: token
lifecycle events carry the token id in their ``args``, so an exporter can
reconstruct the full ``minted -> buffered -> assigned -> trained ->
reported -> level-synced`` chain of any token, and a critical-path
analysis can walk dependency edges backwards through time.

Timestamps are simulation seconds straight from the event loop's clock;
``duration`` is zero for instantaneous lifecycle transitions and positive
for spans (training, fetches, network transfers, straggler delays,
gradient synchronizations, TS request round-trips).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ObservabilityError

#: Track (Chrome "thread") used for events not tied to one worker: the
#: Token Server, the runtime, and gradient synchronizations.
TS_TRACK: int = -1

# -- categories ---------------------------------------------------------------

CAT_TOKEN = "token"
CAT_SYNC = "sync"
CAT_NETWORK = "network"
CAT_STRAGGLER = "straggler"
CAT_TS = "ts"
CAT_WORKER = "worker"
CAT_FAULT = "fault"
CAT_CLUSTER = "cluster"

#: Every category a conforming trace may contain.
CATEGORIES: frozenset[str] = frozenset(
    {
        CAT_TOKEN,
        CAT_SYNC,
        CAT_NETWORK,
        CAT_STRAGGLER,
        CAT_TS,
        CAT_WORKER,
        CAT_FAULT,
        CAT_CLUSTER,
    }
)

# -- event names --------------------------------------------------------------

EV_MINTED = "token.minted"
EV_BUFFERED = "token.buffered"
EV_ASSIGNED = "token.assigned"
EV_TRAINED = "token.trained"
EV_REPORTED = "token.reported"
EV_LEVEL_SYNCED = "sync.level"
EV_ALLREDUCE = "sync.allreduce"
EV_TRANSFER = "net.transfer"
EV_DELAY = "straggler.delay"
EV_TS_REQUEST = "ts.request"
EV_FETCH = "worker.fetch"

# Fault-injection / elastic-membership events (category CAT_FAULT).
EV_WORKER_FAILED = "worker.failed"
EV_TOKEN_RECLAIMED = "token.reclaimed"
EV_TOKEN_REMINTED = "token.reminted"
EV_TOKEN_INVALIDATED = "token.invalidated"
EV_WORKER_JOINED = "worker.joined"
EV_WORKER_LEFT = "worker.left"

# Multi-tenant job lifecycle events (category CAT_CLUSTER).  The track
# is the cluster job id; ``repro.cluster`` emits these so a whole
# scheduler run can be read as one Chrome trace.
EV_JOB_SUBMITTED = "job.submitted"
EV_JOB_STARTED = "job.started"
EV_JOB_RESIZED = "job.resized"
EV_JOB_FINISHED = "job.finished"

#: The token lifecycle stages, in causal order.  A *complete* chain has
#: every stage once, followed by the level's :data:`EV_ALLREDUCE` span.
TOKEN_LIFECYCLE: tuple[str, ...] = (
    EV_MINTED,
    EV_BUFFERED,
    EV_ASSIGNED,
    EV_TRAINED,
    EV_REPORTED,
)


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured observation of the simulated runtime.

    ``seq`` is the tracer's emission counter: it makes ordering total and
    deterministic even when several events share a timestamp (common in a
    discrete-event simulation, where whole scheduling cascades happen at
    one instant).
    """

    name: str
    category: str
    #: Simulation time the event (or span) started, in seconds.
    start: float
    #: Span length in seconds; 0.0 for instantaneous lifecycle events.
    duration: float
    #: Worker id, or :data:`TS_TRACK` for server/runtime-side events.
    track: int
    #: Emission order, unique per tracer.
    seq: int
    #: Structured payload (token id, level, iteration, byte counts, ...).
    args: _t.Mapping[str, _t.Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ObservabilityError(
                f"event {self.name!r} has negative duration: "
                f"{self.duration}"
            )
        if self.category not in CATEGORIES:
            raise ObservabilityError(
                f"event {self.name!r} has unknown category "
                f"{self.category!r}; expected one of {sorted(CATEGORIES)}"
            )

    @property
    def end(self) -> float:
        """Simulation time the event (or span) ended."""
        return self.start + self.duration

    @property
    def is_span(self) -> bool:
        """Whether the event covers a time interval (vs an instant)."""
        return self.duration > 0
