"""Plain-text run reports derived from the trace stream.

The report answers the temporal questions the paper's claims hinge on,
straight from a :class:`~repro.obs.tracer.Tracer`'s events:

* **where did each worker's time go** — compute / fetch / injected
  straggler delay / idle, per worker;
* **what was the critical path** — the dependency-ordered chain of
  tokens whose training intervals bound the final synchronization, found
  by walking ``deps`` edges backwards from the last level to sync;
* **who caused the straggling** — injected delay per worker and how much
  of it the token machinery absorbed (delay overlapped by other workers'
  useful compute is *not* lost cluster time — that absorption is the
  paper's elasticity claim).
"""

from __future__ import annotations

import typing as _t

from repro.obs.events import (
    EV_ALLREDUCE,
    EV_DELAY,
    EV_FETCH,
    EV_MINTED,
    EV_TRAINED,
    EV_TS_REQUEST,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.metrics.results import RunResult


def _by_name(
    events: _t.Sequence[TraceEvent], name: str
) -> list[TraceEvent]:
    return [event for event in events if event.name == name]


def _sum_by_track(events: _t.Iterable[TraceEvent]) -> dict[int, float]:
    totals: dict[int, float] = {}
    for event in events:
        totals[event.track] = totals.get(event.track, 0.0) + event.duration
    return totals


@_t.runtime_checkable
class _HasStats(_t.Protocol):
    total_time: float
    runtime_name: str
    model_name: str
    iterations: int
    stats: dict[str, _t.Any]


def critical_path(
    events: _t.Sequence[TraceEvent],
) -> list[TraceEvent]:
    """The trained-token chain bounding the last gradient sync.

    Starting from the latest-ending ``sync.allreduce`` span that carries
    an (iteration, level) context, picks the latest-finishing trained
    token of that level and walks its ``deps`` backwards, at each hop
    following the dependency whose training finished last.  Returns the
    ``token.trained`` spans from level 0 up to the top level (empty when
    the trace holds no attributable sync).
    """
    trained: dict[int, TraceEvent] = {
        event.args["token"]: event for event in _by_name(events, EV_TRAINED)
    }
    minted: dict[int, TraceEvent] = {
        event.args["token"]: event for event in _by_name(events, EV_MINTED)
    }
    syncs = [
        event
        for event in _by_name(events, EV_ALLREDUCE)
        if "iteration" in event.args and "level" in event.args
    ]
    if not syncs or not trained:
        return []
    last_sync = max(syncs, key=lambda event: (event.end, event.seq))
    iteration = last_sync.args["iteration"]
    level = last_sync.args["level"]
    candidates = [
        event
        for event in trained.values()
        if event.args["iteration"] == iteration
        and event.args["level"] == level
    ]
    if not candidates:
        return []
    current = max(candidates, key=lambda event: (event.end, event.seq))
    chain = [current]
    while True:
        deps = minted.get(current.args["token"], current).args.get(
            "deps", []
        )
        dep_spans = [trained[dep] for dep in deps if dep in trained]
        if not dep_spans:
            break
        current = max(dep_spans, key=lambda event: (event.end, event.seq))
        chain.append(current)
    chain.reverse()
    return chain


def straggler_attribution(
    events: _t.Sequence[TraceEvent],
) -> dict[int, dict[str, float]]:
    """Per-worker injected-delay accounting.

    For each delayed worker: total injected ``delay`` seconds, and the
    ``absorbed`` fraction of that delay during which at least one *other*
    worker was computing (work the elastic token machinery kept flowing
    while this worker slept).
    """
    delays = _by_name(events, EV_DELAY)
    computes = _by_name(events, EV_TRAINED)
    out: dict[int, dict[str, float]] = {}
    for delay in delays:
        absorbed = 0.0
        for span in computes:
            if span.track == delay.track:
                continue
            overlap = min(delay.end, span.end) - max(
                delay.start, span.start
            )
            if overlap > 0:
                absorbed += overlap
        # Concurrent helpers can over-count the overlap; the absorbed
        # share is capped at the delay itself.
        absorbed = min(absorbed, delay.duration)
        entry = out.setdefault(
            delay.track, {"delay": 0.0, "absorbed": 0.0}
        )
        entry["delay"] += delay.duration
        entry["absorbed"] += absorbed
    return out


def render_run_report(
    result: "_HasStats | RunResult",
    events: _t.Sequence[TraceEvent],
    registry: MetricsRegistry | None = None,
) -> str:
    """Multi-section plain-text report for one traced run."""
    lines: list[str] = []
    total = result.total_time
    lines.append(
        f"== Run report: {result.runtime_name} on {result.model_name} "
        f"({result.iterations} iterations, {total:.3f} s) =="
    )

    # -- per-worker activity ------------------------------------------------
    compute = _sum_by_track(_by_name(events, EV_TRAINED))
    fetch = _sum_by_track(_by_name(events, EV_FETCH))
    delay = _sum_by_track(_by_name(events, EV_DELAY))
    workers = sorted(
        wid
        for wid in set(compute) | set(fetch) | set(delay)
        if wid >= 0
    )
    lines.append("")
    lines.append("-- Worker activity (seconds) --")
    lines.append(
        f"{'worker':>8} {'compute':>10} {'fetch':>10} {'delay':>10} "
        f"{'idle':>10} {'busy%':>7}"
    )
    for wid in workers:
        busy = compute.get(wid, 0.0)
        fetching = fetch.get(wid, 0.0)
        delayed = delay.get(wid, 0.0)
        idle = max(0.0, total - busy - fetching - delayed)
        share = busy / total if total > 0 else 0.0
        lines.append(
            f"{wid:>8} {busy:>10.3f} {fetching:>10.3f} "
            f"{delayed:>10.3f} {idle:>10.3f} {share:>6.1%}"
        )

    # -- critical path ------------------------------------------------------
    lines.append("")
    lines.append("-- Critical path (minted -> synced) --")
    chain = critical_path(events)
    if not chain:
        lines.append("(no attributable synchronization in trace)")
    else:
        path_compute = sum(span.duration for span in chain)
        previous_end = None
        for span in chain:
            wait = (
                span.start - previous_end
                if previous_end is not None
                else 0.0
            )
            lines.append(
                f"  {span.args['token_type']:>5} token "
                f"{span.args['token']:>4} on W{span.track}: "
                f"train [{span.start:9.3f}, {span.end:9.3f}] "
                f"({span.duration:.3f} s, +{max(wait, 0.0):.3f} s wait)"
            )
            previous_end = span.end
        syncs = _by_name(events, EV_ALLREDUCE)
        if syncs:
            last_sync = max(
                syncs, key=lambda event: (event.end, event.seq)
            )
            lines.append(
                f"  sync it={last_sync.args.get('iteration')} "
                f"level={last_sync.args.get('level')} "
                f"[{last_sync.start:9.3f}, {last_sync.end:9.3f}] "
                f"({last_sync.duration:.3f} s)"
            )
        share = path_compute / total if total > 0 else 0.0
        lines.append(
            f"  chain compute {path_compute:.3f} s = {share:.1%} of "
            "the run"
        )

    # -- straggler attribution ----------------------------------------------
    lines.append("")
    lines.append("-- Straggler attribution --")
    attribution = straggler_attribution(events)
    if not attribution:
        lines.append("(no straggler delays injected)")
    else:
        for wid in sorted(attribution):
            entry = attribution[wid]
            injected = entry["delay"]
            absorbed = entry["absorbed"]
            fraction = absorbed / injected if injected > 0 else 0.0
            lines.append(
                f"  W{wid}: {injected:.3f} s injected, "
                f"{absorbed:.3f} s absorbed by other workers' compute "
                f"({fraction:.1%})"
            )

    # -- analytical fast-forward --------------------------------------------
    fast_forward = result.stats.get("fast_forward")
    if fast_forward is not None and fast_forward["events_elided"]:
        lines.append("")
        lines.append("-- Analytical fast-forward --")
        lines.append(
            f"  {fast_forward['events_elided']} dead events elided "
            f"across {fast_forward['intervals_skipped']} steady "
            f"intervals "
            f"({fast_forward['sim_seconds_fast_forwarded']:.3f} sim "
            "seconds crossed analytically)"
        )

    # -- faults -------------------------------------------------------------
    faults = result.stats.get("faults")
    if faults is not None:
        lines.append("")
        lines.append("-- Faults and degradation --")
        for record in faults["failures"]:
            lines.append(
                f"  W{record['wid']} crashed at "
                f"{record['crash_time']:.3f} s: detected in "
                f"{record['detection_seconds']:.3f} s, "
                f"{record['lost_compute_seconds']:.3f} s of compute "
                f"lost ({record['reclaimed']} reclaimed, "
                f"{record['reminted']} re-minted, "
                f"{record['invalidated']} invalidated tokens)"
            )
        if not faults["failures"]:
            lines.append("  (no worker failures)")
        if faults["joined"]:
            joined = ", ".join(f"W{wid}" for wid in faults["joined"])
            lines.append(f"  joined mid-run: {joined}")
        if faults["left"]:
            left = ", ".join(f"W{wid}" for wid in faults["left"])
            lines.append(f"  left gracefully: {left}")
        detection = sum(faults["recovery_detection_seconds"])
        lost = faults["lost_compute_seconds"]
        share = lost / total if total > 0 else 0.0
        lines.append(
            f"  totals: {detection:.3f} s detection latency, "
            f"{lost:.3f} s compute lost = {share:.1%} of the run"
        )

    # -- token server -------------------------------------------------------
    requests = _by_name(events, EV_TS_REQUEST)
    lines.append("")
    lines.append("-- Token server --")
    if registry is not None:
        latency = registry.histogram("ts.request_latency")
        lines.append(
            f"  {int(registry.counter('ts.requests').value)} requests, "
            f"{int(registry.counter('ts.conflicts').value)} conflicts"
        )
        lines.append(
            f"  request latency mean {latency.mean * 1e3:.3f} ms, "
            f"p95 {latency.percentile(0.95) * 1e3:.3f} ms, "
            f"max {latency.maximum * 1e3:.3f} ms"
        )
    elif requests:
        durations = sorted(event.duration for event in requests)
        mean = sum(durations) / len(durations)
        p95 = durations[min(len(durations) - 1, int(0.95 * len(durations)))]
        conflicts = sum(
            1 for event in requests if event.args.get("conflict")
        )
        lines.append(
            f"  {len(requests)} requests, {conflicts} conflicts"
        )
        lines.append(
            f"  request latency mean {mean * 1e3:.3f} ms, "
            f"p95 {p95 * 1e3:.3f} ms, max {durations[-1] * 1e3:.3f} ms"
        )
    else:
        lines.append("(no TS request spans in trace)")

    # -- synchronization ----------------------------------------------------
    lines.append("")
    lines.append("-- Synchronization --")
    syncs = _by_name(events, EV_ALLREDUCE)
    if not syncs:
        lines.append("(no gradient synchronizations in trace)")
    else:
        per_level: dict[_t.Any, dict[str, float]] = {}
        for span in syncs:
            level = span.args.get("level", "?")
            entry = per_level.setdefault(
                level, {"count": 0, "seconds": 0.0, "bytes": 0.0}
            )
            entry["count"] += 1
            entry["seconds"] += span.duration
            entry["bytes"] += span.args.get("wire_bytes", 0.0)
        for level in sorted(per_level, key=repr):
            entry = per_level[level]
            lines.append(
                f"  level {level}: {int(entry['count'])} syncs, "
                f"{entry['seconds']:.3f} s on the wire, "
                f"{entry['bytes'] / 1e6:.2f} MB moved"
            )
    return "\n".join(lines)
