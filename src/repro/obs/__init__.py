"""Observability: structured tracing + metrics for the token lifecycle.

The paper's central claims — elastic straggler absorption, sync/compute
overlap, the two-phase tuner's cost model — are temporal claims; this
package makes them *visible*:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — causally-linked
  structured events for the full token lifecycle (minted -> buffered ->
  assigned -> trained -> reported -> level-synced) plus network-transfer,
  straggler-delay, and TS-request spans.  The default
  :class:`NullTracer` makes instrumentation free when tracing is off.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters /
  gauges / histograms that the runtime derives ``RunResult.stats`` from.
* :mod:`repro.obs.timeseries` — a sim-time-driven :class:`Sampler`
  (null-object pair, like the tracer) snapshotting gauges — worker
  phase, buffer depth, fabric utilization, membership, staleness — at a
  fixed sim-second interval with zero schedule perturbation.
* :mod:`repro.obs.exporters` — Chrome trace-event JSON (open in
  Perfetto or ``chrome://tracing``), CSV metric dumps, schema validation,
  and the bridge feeding the ASCII timeline from the trace stream.
* :mod:`repro.obs.report` — plain-text run report with critical-path and
  straggler-attribution analysis.
* :mod:`repro.obs.protocols` — typed seams (``TracerLike``,
  ``SpanSink``, ``InvariantMonitor``) for the runtime's attachments.

CLI entry points: ``repro trace <model>``, ``--trace-out`` on
``repro run``, and ``python -m repro.obs.validate`` for trace files.
"""

from repro.obs.events import (
    CAT_FAULT,
    CAT_NETWORK,
    CAT_STRAGGLER,
    CAT_SYNC,
    CAT_TOKEN,
    CAT_TS,
    CAT_WORKER,
    EV_ALLREDUCE,
    EV_ASSIGNED,
    EV_BUFFERED,
    EV_DELAY,
    EV_FETCH,
    EV_LEVEL_SYNCED,
    EV_MINTED,
    EV_REPORTED,
    EV_TOKEN_INVALIDATED,
    EV_TOKEN_RECLAIMED,
    EV_TOKEN_REMINTED,
    EV_TRAINED,
    EV_TRANSFER,
    EV_TS_REQUEST,
    EV_WORKER_FAILED,
    EV_WORKER_JOINED,
    EV_WORKER_LEFT,
    TOKEN_LIFECYCLE,
    TS_TRACK,
    TraceEvent,
)
from repro.obs.exporters import (
    chrome_trace,
    complete_events,
    dump_chrome_trace,
    metrics_to_csv,
    read_chrome_trace,
    timeline_spans,
    validate_chrome_trace,
    verify_causal_chains,
    write_chrome_trace,
    write_metrics_csv,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.protocols import InvariantMonitor, SpanSink, TracerLike
from repro.obs.report import (
    critical_path,
    render_run_report,
    straggler_attribution,
)
from repro.obs.timeseries import (
    NULL_SAMPLER,
    PHASE_CODES,
    PHASE_NAMES,
    SERIES,
    NullSampler,
    Sample,
    Sampler,
    series_keys,
    series_points,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "CAT_FAULT",
    "CAT_NETWORK",
    "CAT_STRAGGLER",
    "CAT_SYNC",
    "CAT_TOKEN",
    "CAT_TS",
    "CAT_WORKER",
    "Counter",
    "EV_ALLREDUCE",
    "EV_ASSIGNED",
    "EV_BUFFERED",
    "EV_DELAY",
    "EV_FETCH",
    "EV_LEVEL_SYNCED",
    "EV_MINTED",
    "EV_REPORTED",
    "EV_TOKEN_INVALIDATED",
    "EV_TOKEN_RECLAIMED",
    "EV_TOKEN_REMINTED",
    "EV_TRAINED",
    "EV_TRANSFER",
    "EV_TS_REQUEST",
    "EV_WORKER_FAILED",
    "EV_WORKER_JOINED",
    "EV_WORKER_LEFT",
    "Gauge",
    "Histogram",
    "InvariantMonitor",
    "MetricsRegistry",
    "NULL_SAMPLER",
    "NULL_TRACER",
    "NullSampler",
    "NullTracer",
    "PHASE_CODES",
    "PHASE_NAMES",
    "SERIES",
    "Sample",
    "Sampler",
    "SpanSink",
    "TOKEN_LIFECYCLE",
    "TS_TRACK",
    "TraceEvent",
    "Tracer",
    "TracerLike",
    "chrome_trace",
    "complete_events",
    "critical_path",
    "dump_chrome_trace",
    "metrics_to_csv",
    "read_chrome_trace",
    "render_run_report",
    "series_keys",
    "series_points",
    "straggler_attribution",
    "timeline_spans",
    "validate_chrome_trace",
    "verify_causal_chains",
    "write_chrome_trace",
    "write_metrics_csv",
]
