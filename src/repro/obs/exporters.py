"""Trace and metric exporters.

Three output formats:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — loadable in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.  Every
  :class:`~repro.obs.events.TraceEvent` becomes a complete ("X") event;
  token lifecycle chains additionally become flow events
  (``s``/``t``/``f``) so the UI draws arrows from mint to sync.
* **CSV metric dumps** (:func:`metrics_to_csv`) — one row per metric
  field, byte-stable across reruns.
* **Timeline spans** (:func:`timeline_spans`) — the bridge that lets
  :class:`~repro.metrics.timeline.TimelineRecorder` consume the trace
  stream instead of being a second, parallel recording path.

Plus the inverse direction: :func:`read_chrome_trace` /
:func:`complete_events` parse an exported file back, and
:func:`validate_chrome_trace` / :func:`verify_causal_chains` check a
payload against the event schema (CI runs these on a freshly traced
experiment).
"""

from __future__ import annotations

import io
import json
import typing as _t

from repro.errors import ObservabilityError
from repro.obs.events import (
    CATEGORIES,
    EV_ALLREDUCE,
    EV_FETCH,
    EV_TRAINED,
    TOKEN_LIFECYCLE,
    TS_TRACK,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry

#: Seconds -> microseconds (the trace-event format's time unit).
_US = 1e6

#: Chrome event phases this exporter produces / the validator accepts.
#: "C" (counter) events carry the sampler's gauge time-series.
_PHASES = frozenset({"M", "X", "i", "s", "t", "f", "C"})

#: pid used for the whole simulated cluster.
_PID = 0


def _tid(track: int) -> int:
    """Chrome thread ids must be non-negative; shift our tracks by one."""
    return track + 1


def _track_name(track: int) -> str:
    return "token-server" if track == TS_TRACK else f"worker-{track}"


# -- Chrome trace-event JSON --------------------------------------------------


def chrome_trace(
    events: _t.Sequence[TraceEvent],
    *,
    process_name: str = "fela-sim",
    samples: _t.Sequence[_t.Any] = (),
) -> dict[str, _t.Any]:
    """Render events (plus optional sampler gauges) as Chrome trace JSON.

    ``samples`` is a sequence of
    :class:`~repro.obs.timeseries.Sample` rows; each distinct
    ``(series, time)`` pair becomes one counter ("C") event whose args
    hold every key sampled at that instant, so Perfetto draws the
    buffer depths, fabric utilization and membership gauges as stacked
    counter tracks alongside the span timeline.
    """
    trace_events: list[dict[str, _t.Any]] = []

    trace_events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    tracks = sorted({event.track for event in events})
    for sort_index, track in enumerate(tracks):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _tid(track),
                "args": {"name": _track_name(track)},
            }
        )
        trace_events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": _tid(track),
                "args": {"sort_index": sort_index},
            }
        )

    for event in events:
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "ts": event.start * _US,
                "dur": event.duration * _US,
                "pid": _PID,
                "tid": _tid(event.track),
                "args": dict(event.args),
            }
        )

    trace_events.extend(_flow_events(events))
    trace_events.extend(_counter_events(samples))
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def _counter_events(
    samples: _t.Sequence[_t.Any],
) -> list[dict[str, _t.Any]]:
    """Sampler gauges as counter events, one per (series, tick)."""
    grouped: dict[tuple[str, float], dict[str, float]] = {}
    for sample in samples:
        grouped.setdefault((sample.series, sample.time), {})[
            sample.key or "value"
        ] = sample.value
    return [
        {
            "name": series,
            "cat": "sample",
            "ph": "C",
            "ts": ts * _US,
            "pid": _PID,
            "tid": 0,
            "args": {key: values[key] for key in sorted(values)},
        }
        for (series, ts), values in sorted(grouped.items())
    ]


def _flow_events(
    events: _t.Sequence[TraceEvent],
) -> list[dict[str, _t.Any]]:
    """Causal arrows: one flow per token, minted -> ... -> level sync."""
    lifecycle_rank = {name: rank for rank, name in enumerate(TOKEN_LIFECYCLE)}
    chains: dict[int, list[TraceEvent]] = {}
    syncs: dict[tuple[int, int], TraceEvent] = {}
    for event in events:
        if event.name in lifecycle_rank:
            chains.setdefault(event.args["token"], []).append(event)
        elif (
            event.name == EV_ALLREDUCE
            and "iteration" in event.args
            and "level" in event.args
        ):
            syncs[(event.args["iteration"], event.args["level"])] = event

    flows: list[dict[str, _t.Any]] = []
    for tid in sorted(chains):
        chain = sorted(chains[tid], key=lambda event: event.seq)
        steps: list[tuple[str, float, int]] = [
            (event.name, event.start, event.track) for event in chain
        ]
        sync = syncs.get(
            (chain[0].args["iteration"], chain[0].args["level"])
        )
        if sync is not None:
            steps.append((sync.name, sync.start, sync.track))
        for index, (name, ts, track) in enumerate(steps):
            phase = (
                "s"
                if index == 0
                else ("f" if index == len(steps) - 1 else "t")
            )
            flow: dict[str, _t.Any] = {
                "name": "token-flow",
                "cat": "token",
                "ph": phase,
                "id": tid,
                "pid": _PID,
                "tid": _tid(track),
                "ts": ts * _US,
            }
            if phase == "f":
                flow["bp"] = "e"
            flows.append(flow)
    return flows


def dump_chrome_trace(
    events: _t.Sequence[TraceEvent], **kwargs: _t.Any
) -> str:
    """Serialize events as canonical (byte-stable) trace JSON."""
    return json.dumps(
        chrome_trace(events, **kwargs),
        sort_keys=True,
        separators=(",", ":"),
    )


def write_chrome_trace(
    path: _t.Any, events: _t.Sequence[TraceEvent], **kwargs: _t.Any
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    with io.open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_trace(events, **kwargs))
    return len(events)


def read_chrome_trace(path: _t.Any) -> dict[str, _t.Any]:
    """Load a trace JSON file written by :func:`write_chrome_trace`."""
    with io.open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ObservabilityError(
            f"trace file {path} does not hold a JSON object"
        )
    return payload


def complete_events(payload: dict[str, _t.Any]) -> list[dict[str, _t.Any]]:
    """The "X" (complete) events of a parsed trace, in file order.

    These correspond 1:1, in order, to the tracer's emitted
    :class:`~repro.obs.events.TraceEvent` stream — the round-trip
    property the export tests pin down.
    """
    return [
        event
        for event in payload.get("traceEvents", ())
        if isinstance(event, dict) and event.get("ph") == "X"
    ]


# -- validation ---------------------------------------------------------------


def validate_chrome_trace(payload: _t.Any) -> list[str]:
    """Check a parsed trace against the event schema; return problems."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top-level value is not a JSON object"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["missing or non-list 'traceEvents'"]
    if payload.get("displayTimeUnit") not in (None, "ms", "ns"):
        problems.append(
            f"displayTimeUnit must be 'ms' or 'ns', got "
            f"{payload.get('displayTimeUnit')!r}"
        )
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: 'X' event needs dur >= 0")
            category = event.get("cat")
            if category not in CATEGORIES:
                problems.append(
                    f"{where}: unknown category {category!r}"
                )
        if phase in ("s", "t", "f") and "id" not in event:
            problems.append(f"{where}: flow event without 'id'")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' is not an object")
            continue
        if phase == "C":
            if not isinstance(args, dict) or not args:
                problems.append(
                    f"{where}: counter event needs non-empty 'args'"
                )
            else:
                for key in sorted(args):
                    if not isinstance(args[key], (int, float)):
                        problems.append(
                            f"{where}: counter value {key!r} is not "
                            "numeric"
                        )
    return problems


def verify_causal_chains(payload: dict[str, _t.Any]) -> list[str]:
    """Check the acceptance property of an exported Fela trace.

    Every ``(iteration, level)`` that appears in the trace must contain
    at least one token with a *complete* lifecycle (all of
    ``minted -> buffered -> assigned -> trained -> reported``) plus the
    level's synchronization span.  Returns a list of problems (empty
    when every level has a complete minted->synced chain).
    """
    stages: dict[tuple[int, int], dict[int, set[str]]] = {}
    synced: set[tuple[int, int]] = set()
    lifecycle = set(TOKEN_LIFECYCLE)
    for event in complete_events(payload):
        args = event.get("args") or {}
        name = event.get("name")
        if name in lifecycle:
            key = (args.get("iteration"), args.get("level"))
            if None in key:
                continue
            stages.setdefault(key, {}).setdefault(
                args.get("token"), set()
            ).add(_t.cast(str, name))
        elif (
            name == EV_ALLREDUCE
            and "iteration" in args
            and "level" in args
        ):
            synced.add((args["iteration"], args["level"]))

    problems = []
    if not stages:
        problems.append("trace contains no token lifecycle events")
    for key in sorted(stages):
        complete = [
            tid
            for tid, seen in stages[key].items()
            if lifecycle <= seen
        ]
        if not complete:
            problems.append(
                f"iteration {key[0]} level {key[1]}: no token with a "
                "complete lifecycle"
            )
        elif key not in synced:
            problems.append(
                f"iteration {key[0]} level {key[1]}: lifecycle chains "
                "but no synchronization span"
            )
    return problems


# -- timeline bridge ----------------------------------------------------------


def timeline_spans(
    events: _t.Iterable[TraceEvent],
) -> _t.Iterator[tuple[int, str, float, float, str]]:
    """Map trace events to ``(worker, kind, start, end, label)`` spans.

    This is how the ASCII Gantt timeline is derived from the trace
    stream: ``token.trained`` spans become ``compute`` activity and
    ``worker.fetch`` spans become ``fetch`` activity, in emission order.
    """
    for event in events:
        if event.name == EV_TRAINED:
            kind = "compute"
        elif event.name == EV_FETCH:
            kind = "fetch"
        else:
            continue
        yield (
            event.track,
            kind,
            event.start,
            event.end,
            str(event.args.get("token_type", "")),
        )


# -- metrics ------------------------------------------------------------------


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """One CSV row per metric field: ``metric,kind,labels,field,value``."""
    lines = ["metric,kind,labels,field,value"]
    for row in registry.samples():
        label_text = ";".join(
            f"{key}={value}" for key, value in row.labels
        )
        for field in sorted(row.fields):
            lines.append(
                f"{row.name},{row.kind},{label_text},{field},"
                f"{row.fields[field]!r}"
            )
    return "\n".join(lines) + "\n"


def write_metrics_csv(path: _t.Any, registry: MetricsRegistry) -> None:
    """Write the registry's CSV dump to ``path``."""
    with io.open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_csv(registry))
