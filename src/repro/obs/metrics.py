"""Metrics: counters, gauges, and histograms for the simulated runtime.

A :class:`MetricsRegistry` is the structured replacement for the
hand-rolled ``stats`` dict :class:`~repro.core.runtime.FelaRuntime` used
to assemble: instrumented components register named (and optionally
labelled) metrics, and the runtime derives its backward-compatible
``RunResult.stats`` payload from a registry snapshot at the end of the
run.

Everything here is deterministic: metric iteration order is insertion
order with a sorted tie-break in exports, histograms keep their
observations in arrival order, and the CSV export is byte-stable across
reruns of a seeded experiment.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ObservabilityError

#: Label sets are stored as sorted (key, value) tuples so that
#: ``counter("x", a=1, b=2)`` and ``counter("x", b=2, a=1)`` are one metric.
LabelKey = tuple[tuple[str, _t.Any], ...]


def _label_key(labels: dict[str, _t.Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; got increment {amount}"
            )
        self.value += amount

    def fields(self) -> dict[str, _t.Any]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins value (utilization, byte totals, ...)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def fields(self) -> dict[str, _t.Any]:
        return {"value": self.value}


class Histogram:
    """Distribution of observations (latencies, span lengths, ...).

    Observations are kept verbatim — simulation-scale cardinalities are
    small enough that exact percentiles beat bucketing.
    """

    kind = "histogram"

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self.total / len(self._values)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not 0 <= fraction <= 1:
            raise ObservabilityError(
                f"percentile fraction must be in [0, 1]: {fraction}"
            )
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def fields(self) -> dict[str, _t.Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


Metric = _t.Union[Counter, Gauge, Histogram]


@dataclasses.dataclass(frozen=True)
class MetricSample:
    """One exported metric row: name + labels + the metric's fields."""

    name: str
    kind: str
    labels: LabelKey
    fields: dict[str, _t.Any]


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(
        self,
        name: str,
        factory: type[Metric],
        labels: dict[str, _t.Any],
    ) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise ObservabilityError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{factory.kind}"
            )
        return metric

    def counter(self, name: str, **labels: _t.Any) -> Counter:
        return _t.cast(Counter, self._get(name, Counter, labels))

    def gauge(self, name: str, **labels: _t.Any) -> Gauge:
        return _t.cast(Gauge, self._get(name, Gauge, labels))

    def histogram(self, name: str, **labels: _t.Any) -> Histogram:
        return _t.cast(Histogram, self._get(name, Histogram, labels))

    # -- reads --------------------------------------------------------------

    def series(self, name: str, label: str) -> dict[_t.Any, float]:
        """Map one label's values to metric values, for labelled families.

        ``series("ts.tokens_assigned", "worker")`` returns
        ``{wid: count, ...}`` — the shape the legacy per-worker stats use.
        """
        out: dict[_t.Any, float] = {}
        for (metric_name, labels), metric in self._metrics.items():
            if metric_name != name:
                continue
            label_map = dict(labels)
            if label not in label_map:
                continue
            if isinstance(metric, Histogram):
                out[label_map[label]] = metric.total
            else:
                out[label_map[label]] = metric.value
        return dict(sorted(out.items(), key=lambda item: repr(item[0])))

    def samples(self) -> list[MetricSample]:
        """All metrics as export rows, in deterministic sorted order."""
        rows = [
            MetricSample(
                name=name,
                kind=metric.kind,
                labels=labels,
                fields=metric.fields(),
            )
            for (name, labels), metric in self._metrics.items()
        ]
        rows.sort(key=lambda row: (row.name, repr(row.labels)))
        return rows

    def snapshot(self) -> dict[str, _t.Any]:
        """Nested-dict view: ``{name: {label-repr: fields}}``.

        Unlabelled metrics map straight to their fields (single-field
        counters/gauges collapse to the bare value).
        """
        out: dict[str, _t.Any] = {}
        for row in self.samples():
            fields: _t.Any = row.fields
            if set(fields) == {"value"}:
                fields = fields["value"]
            if not row.labels:
                out[row.name] = fields
            else:
                label_text = ",".join(
                    f"{key}={value}" for key, value in row.labels
                )
                out.setdefault(row.name, {})[label_text] = fields
        return out
