"""Sim-time-driven gauge sampling: the time-series half of observability.

The tracer (:mod:`repro.obs.tracer`) records *transitions*; this module
records *states*: at every sim-second tick a :class:`Sampler` snapshots
the gauges the paper's distribution-over-time claims are about —
per-worker busy/idle/fetch phase, token-buffer depth per level, fabric
utilization, membership epoch and active-worker count, outstanding
gradient staleness, and cumulative tokens trained.

Two implementations share one API, exactly like the tracer pair:

* :class:`NullSampler` — the default.  ``enabled`` is ``False``, every
  method is a no-op, and :class:`~repro.core.runtime.FelaRuntime` never
  constructs a sampler when none is supplied (the shared
  :data:`NULL_SAMPLER` is used), so an unsampled run costs nothing.
* :class:`Sampler` — attaches a read-only step monitor to the simulation
  :class:`~repro.sim.core.Environment`.  It never schedules events,
  never touches the queue, and only *reads* runtime state, so a sampled
  run finishes at exactly the same ``total_time`` as an unsampled one
  (the monitor hook runs between event pop and callback dispatch and is
  invisible to the schedule).

Sampling semantics: ticks land at ``k * interval`` of simulated time.
The monitor fires when the event loop pops the first event at or past a
tick, *before* that event's callbacks run — so the recorded state is the
state that actually held at the tick instant.  Several ticks crossed by
one quiet stretch all record the same (correct, unchanged) state.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.errors import ObservabilityError

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.runtime import FelaRuntime

# -- worker phases ------------------------------------------------------------

PHASE_IDLE = "idle"
PHASE_COMPUTE = "compute"
PHASE_FETCH = "fetch"
PHASE_DELAY = "delay"
PHASE_DEAD = "dead"

#: Numeric encoding of worker phases in sample rows (values are floats
#: everywhere for a uniform schema; the dashboard maps codes to colors).
PHASE_CODES: dict[str, int] = {
    PHASE_IDLE: 0,
    PHASE_COMPUTE: 1,
    PHASE_FETCH: 2,
    PHASE_DELAY: 3,
    PHASE_DEAD: 4,
}

#: Inverse of :data:`PHASE_CODES` for renderers.
PHASE_NAMES: dict[int, str] = {
    code: name for name, code in PHASE_CODES.items()
}

# -- series names -------------------------------------------------------------

SER_WORKER_PHASE = "worker.phase"
SER_BUFFER_DEPTH = "buffer.depth"
SER_FABRIC_UTILIZATION = "fabric.utilization"
SER_FABRIC_FLOWS = "fabric.flows"
SER_ACTIVE_WORKERS = "membership.active"
SER_EPOCH = "membership.epoch"
SER_STALENESS = "staleness.outstanding"
SER_TOKENS_DONE = "tokens.completed"

#: Every series a conforming sample stream may contain.
SERIES: frozenset[str] = frozenset(
    {
        SER_WORKER_PHASE,
        SER_BUFFER_DEPTH,
        SER_FABRIC_UTILIZATION,
        SER_FABRIC_FLOWS,
        SER_ACTIVE_WORKERS,
        SER_EPOCH,
        SER_STALENESS,
        SER_TOKENS_DONE,
    }
)


@dataclasses.dataclass(frozen=True, slots=True)
class Sample:
    """One gauge observation at one sample tick.

    ``key`` distinguishes members of a labelled family (the worker id
    for :data:`SER_WORKER_PHASE`, the level for :data:`SER_BUFFER_DEPTH`)
    and is empty for cluster-wide gauges.
    """

    time: float
    series: str
    key: str
    value: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ObservabilityError(
                f"sample at negative time {self.time} ({self.series})"
            )
        if self.series not in SERIES:
            raise ObservabilityError(
                f"unknown sample series {self.series!r}; expected one "
                f"of {sorted(SERIES)}"
            )


class NullSampler:
    """Disabled sampler: attaching is a no-op and no samples exist."""

    #: Runtime guards sampler bookkeeping on this flag.
    enabled: bool = False

    __slots__ = ()

    def attach_runtime(self, runtime: "FelaRuntime") -> None:
        """Accept (and ignore) a runtime to observe."""

    def finish(self, total_time: float) -> None:
        """Accept (and ignore) the end-of-run flush."""

    @property
    def samples(self) -> tuple[Sample, ...]:
        """Recorded samples in tick order (always empty when null)."""
        return ()


#: Module-level null sampler shared by every unsampled runtime.
NULL_SAMPLER = NullSampler()


class Sampler(NullSampler):
    """Recording sampler; see the module docstring for the contract."""

    enabled = True

    __slots__ = ("interval", "_samples", "_next", "_runtime")

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ObservabilityError(
                f"sample interval must be > 0 sim-seconds: {interval}"
            )
        self.interval = float(interval)
        self._samples: list[Sample] = []
        self._next: float = 0.0
        self._runtime: "FelaRuntime | None" = None

    @property
    def samples(self) -> tuple[Sample, ...]:
        return tuple(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    # -- wiring -------------------------------------------------------------

    def attach_runtime(self, runtime: "FelaRuntime") -> None:
        """Observe ``runtime``: register the read-only step monitor.

        Called once from ``FelaRuntime.__init__``.  Ticks land on
        ``k * interval`` boundaries of *absolute* simulation time, also
        for environments constructed with a positive ``initial_time``:
        if the attach instant is itself a boundary (t=0 always is), it
        records the initial state; otherwise the first sample lands on
        the next boundary, never at the off-grid attach time.
        """
        if self._runtime is not None:
            raise ObservabilityError(
                "sampler is already attached to a runtime"
            )
        self._runtime = runtime
        env = runtime.cluster.env
        now = env.now
        interval = self.interval
        k = math.ceil(now / interval)
        boundary = k * interval
        while boundary < now:  # guard against float dust in the ceil
            k += 1
            boundary = k * interval
        if boundary == now:
            self._tick(now)
            boundary += interval
        self._next = boundary
        # The sampler only acts at tick boundaries, so it declares
        # ``_next`` as its observation horizon: the run loop may
        # fast-forward dead events strictly before the next tick without
        # changing a single sample.
        env.attach_monitor(self._on_step, next_due=self._next_due)

    def _next_due(self) -> float:
        """Observation horizon for the run loop's fast-forward gate."""
        return self._next

    def _on_step(self, now: float, _event: _t.Any) -> None:
        while now >= self._next:
            self._tick(self._next)
            self._next += self.interval

    def finish(self, total_time: float) -> None:
        """Record any ticks between the last popped event and run end."""
        while total_time >= self._next:
            self._tick(self._next)
            self._next += self.interval

    # -- the snapshot -------------------------------------------------------

    def _tick(self, at: float) -> None:
        runtime = self._runtime
        assert runtime is not None
        emit = self._samples.append
        server = runtime.server

        # Per-worker phase (stable wid order; crashes override phase).
        tokens_done = 0
        for worker in sorted(runtime.workers, key=lambda w: w.wid):
            tokens_done += worker.tokens_trained
            phase = PHASE_DEAD if worker.crashed else worker.phase
            emit(
                Sample(
                    at, SER_WORKER_PHASE, str(worker.wid),
                    float(PHASE_CODES[phase]),
                )
            )
        emit(Sample(at, SER_TOKENS_DONE, "", float(tokens_done)))

        # Token-buffer depth per level (always one row per level, so the
        # series is rectangular and the dashboard needs no gap logic).
        depths = [0] * runtime.config.levels
        for token in server.bucket.all_tokens():
            depths[token.level] += 1
        for level, depth in enumerate(depths):
            emit(Sample(at, SER_BUFFER_DEPTH, str(level), float(depth)))

        # Fabric: aggregate NIC utilization + active flow count.
        fabric = runtime.cluster.fabric
        flows = fabric.active_flows
        capacity = fabric.link_bandwidth * fabric.num_nodes
        used = sum(flow.rate for flow in flows)
        emit(
            Sample(
                at, SER_FABRIC_UTILIZATION, "",
                used / capacity if capacity > 0 else 0.0,
            )
        )
        emit(Sample(at, SER_FABRIC_FLOWS, "", float(len(flows))))

        # Membership: epoch + active workers (faultless runs have a
        # static membership of all configured workers at epoch 0).
        faults = runtime.faults
        if faults is not None and faults.membership is not None:
            membership = faults.membership
            active = len(membership.active_workers())
            epoch = membership.epoch
        else:
            active = runtime.config.num_workers
            epoch = 0
        emit(Sample(at, SER_ACTIVE_WORKERS, "", float(active)))
        emit(Sample(at, SER_EPOCH, "", float(epoch)))

        # Gradient staleness: iterations opened but not yet synced.
        emit(
            Sample(
                at, SER_STALENESS, "", float(len(runtime._sync_done))
            )
        )


# -- post-hoc views -----------------------------------------------------------


def series_points(
    samples: _t.Sequence[Sample], series: str, key: str = ""
) -> list[tuple[float, float]]:
    """``(time, value)`` points of one series member, in tick order."""
    return [
        (sample.time, sample.value)
        for sample in samples
        if sample.series == series and sample.key == key
    ]


def series_keys(
    samples: _t.Sequence[Sample], series: str
) -> list[str]:
    """The distinct keys of a labelled family, in first-seen order."""
    seen: dict[str, None] = {}
    for sample in samples:
        if sample.series == series and sample.key not in seen:
            seen[sample.key] = None
    return list(seen)
