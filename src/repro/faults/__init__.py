"""Fault injection and elastic membership for the Fela simulation.

Public surface:

* :class:`FaultController` — wires an injector into a runtime; owns
  lease-based failure detection and the recovery sweep.
* :class:`Membership` — the worker lifecycle state machine.
* Injectors — :class:`FaultScript`, :class:`ProbabilisticCrashes`,
  :class:`CompositeFaultInjector`, :class:`NoFaults`, plus
  :func:`parse_faults` for the CLI ``--faults`` grammar.
* Signals — :class:`WorkerCrash` / :class:`ReviveWork` interrupt causes.
"""

from repro.faults.controller import FailureRecord, FaultController
from repro.faults.injector import (
    KIND_CRASH,
    KIND_JOIN,
    KIND_LEAVE,
    CompositeFaultInjector,
    FaultEvent,
    FaultInjector,
    FaultScript,
    NoFaults,
    ProbabilisticCrashes,
    parse_faults,
)
from repro.faults.membership import (
    ACTIVE,
    DRAINING,
    FAILED,
    JOINING,
    LEFT,
    Membership,
)
from repro.faults.signals import FaultSignal, ReviveWork, WorkerCrash

__all__ = [
    "ACTIVE",
    "DRAINING",
    "FAILED",
    "JOINING",
    "LEFT",
    "KIND_CRASH",
    "KIND_JOIN",
    "KIND_LEAVE",
    "CompositeFaultInjector",
    "FailureRecord",
    "FaultController",
    "FaultEvent",
    "FaultInjector",
    "FaultScript",
    "FaultSignal",
    "Membership",
    "NoFaults",
    "ProbabilisticCrashes",
    "ReviveWork",
    "WorkerCrash",
    "parse_faults",
]
