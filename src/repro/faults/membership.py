"""Elastic cluster membership: the worker lifecycle state machine.

States and transitions (see ``docs/faults.md``)::

    JOINING  --activate-->  ACTIVE  --mark_draining-->  DRAINING
                              |                             |
                              |  mark_failed                |  mark_left
                              v                             v
                            FAILED  <--mark_failed--      LEFT (terminal)

``ACTIVE`` workers pull tokens, may home freshly minted tokens, and count
toward the CTD conditional subset.  ``DRAINING`` workers finish their
current token but receive no new ones; their node stays online (it still
serves activation fetches and joins gradient syncs for levels it
trained).  ``LEFT`` is the terminal graceful state.  ``FAILED`` workers
are gone entirely: their in-flight tokens are reclaimed and activations
that lived only on them are re-minted (see
:class:`~repro.faults.controller.FaultController`).  ``JOINING`` workers
are provisioned but not yet participating; they activate at the next
iteration boundary.

Every transition bumps :attr:`Membership.epoch`, which lets the token
distributor cache its membership-derived CTD subset.
"""

from __future__ import annotations

from repro.errors import SchedulingError

ACTIVE = "active"
DRAINING = "draining"
LEFT = "left"
FAILED = "failed"
JOINING = "joining"

#: States whose node is still online (holds data, serves fetches).
_ONLINE = frozenset({ACTIVE, DRAINING, LEFT})

_VALID_TRANSITIONS: dict[tuple[str, str], None] = {
    (JOINING, ACTIVE): None,
    (ACTIVE, DRAINING): None,
    (DRAINING, LEFT): None,
    (ACTIVE, FAILED): None,
    (DRAINING, FAILED): None,
}


class Membership:
    """Tracks each worker's lifecycle state for one elastic run."""

    def __init__(self, num_initial: int) -> None:
        if num_initial < 1:
            raise SchedulingError(
                f"need >= 1 initial worker: {num_initial}"
            )
        self._states: dict[int, str] = {
            wid: ACTIVE for wid in range(num_initial)
        }
        #: Bumped on every transition (distributor cache invalidation).
        self.epoch: int = 0

    def __repr__(self) -> str:
        return f"<Membership {self._states}>"

    # -- transitions ----------------------------------------------------------

    def _transition(self, wid: int, target: str) -> None:
        current = self._states.get(wid)
        if current is None:
            raise SchedulingError(f"unknown worker {wid}")
        if (current, target) not in _VALID_TRANSITIONS:
            raise SchedulingError(
                f"invalid membership transition for worker {wid}: "
                f"{current} -> {target}"
            )
        self._states[wid] = target
        self.epoch += 1

    def add_joining(self, wid: int) -> None:
        """Provision a new worker slot in the JOINING state."""
        if wid in self._states:
            raise SchedulingError(f"worker {wid} already has a state")
        self._states[wid] = JOINING
        self.epoch += 1

    def activate(self, wid: int) -> None:
        self._transition(wid, ACTIVE)

    def mark_draining(self, wid: int) -> None:
        self._transition(wid, DRAINING)

    def mark_left(self, wid: int) -> None:
        self._transition(wid, LEFT)

    def mark_failed(self, wid: int) -> None:
        self._transition(wid, FAILED)

    # -- queries --------------------------------------------------------------

    def state(self, wid: int) -> str:
        if wid not in self._states:
            raise SchedulingError(f"unknown worker {wid}")
        return self._states[wid]

    def known_workers(self) -> list[int]:
        return sorted(self._states)

    def active_workers(self) -> list[int]:
        return sorted(
            wid for wid, state in self._states.items() if state == ACTIVE
        )

    def is_active(self, wid: int) -> bool:
        return self._states.get(wid) == ACTIVE

    def is_draining(self, wid: int) -> bool:
        return self._states.get(wid) == DRAINING

    def is_failed(self, wid: int) -> bool:
        return self._states.get(wid) == FAILED

    def is_online(self, wid: int) -> bool:
        """Whether the worker's node still holds data and serves fetches."""
        return self._states.get(wid) in _ONLINE

    def may_request(self, wid: int) -> bool:
        """Whether the TS may hand this worker another token."""
        return self._states.get(wid) == ACTIVE

    def rehome_target(self, old_home: int) -> int:
        """Deterministic ACTIVE worker to adopt tokens homed at a dead
        or departed worker (spread by the old home id)."""
        active = self.active_workers()
        if not active:
            raise SchedulingError(
                "no active workers left to re-home tokens onto"
            )
        return active[old_home % len(active)]
