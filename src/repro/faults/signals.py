"""Interrupt causes exchanged between the fault controller and workers.

These are deliberately dependency-free: :mod:`repro.core.worker` inspects
them to tell a fatal crash apart from a benign "work was re-minted, stop
parking" nudge, and :mod:`repro.faults.controller` raises them — neither
side needs to import the other.
"""

from __future__ import annotations


class FaultSignal:
    """Base class for causes delivered via ``Process.interrupt``."""


class WorkerCrash(FaultSignal):
    """Fatal: the injector killed this worker's process mid-run."""

    def __init__(self, wid: int) -> None:
        self.wid = wid

    def __repr__(self) -> str:
        return f"<WorkerCrash wid={self.wid}>"


class ReviveWork(FaultSignal):
    """Benign: reclaimed/re-minted tokens are available; a parked worker
    should wake and pull again instead of waiting for the next iteration."""

    def __repr__(self) -> str:
        return "<ReviveWork>"
