"""The fault controller: lease-based failure detection plus elastic
membership, driven by a :class:`~repro.faults.injector.FaultInjector`.

The controller owns three responsibilities (see ``docs/faults.md``):

* **Dispatch** — a simulation process walks the injector's scripted
  events (crash / leave / join) and per-iteration probabilistic crash
  draws, delivering crashes as :class:`~repro.faults.signals.WorkerCrash`
  interrupts to worker processes.
* **Detection** — the token server never *observes* a crash directly; it
  learns about one the way a real TS does, by a lease expiring.  Every
  TS interaction renews the worker's lease (``touch``); a monitor
  process sleeps toward the earliest deadline and, on expiry, either
  renews (worker alive, merely idle) or declares failure and runs the
  recovery sweep (:meth:`repro.core.server.TokenServer.recover_from_failure`).
* **Membership** — joins activate at the next iteration boundary; leaves
  drain gracefully (finish the current token, then depart); the CTD
  subset and the bucket's per-worker STBs resize through the shared
  :class:`~repro.faults.membership.Membership` epoch.

Nothing here runs unless a controller is attached: every hook in the
core is gated on ``server.faults is not None`` so fault-free runs are
float-identical to a build without this module.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.faults.injector import (
    KIND_CRASH,
    KIND_JOIN,
    KIND_LEAVE,
    FaultEvent,
    FaultInjector,
)
from repro.faults.membership import Membership
from repro.faults.signals import ReviveWork, WorkerCrash

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import FelaRuntime


@dataclass(frozen=True)
class FailureRecord:
    """One detected worker failure and what recovery cost."""

    wid: int
    crash_time: float
    detect_time: float
    reclaimed: int
    reminted: int
    invalidated: int
    revoked: int
    promoted: int
    lost_compute_seconds: float

    @property
    def detection_seconds(self) -> float:
        return self.detect_time - self.crash_time

    def as_dict(self) -> dict[str, _t.Any]:
        return {
            "wid": self.wid,
            "crash_time": self.crash_time,
            "detect_time": self.detect_time,
            "detection_seconds": self.detection_seconds,
            "reclaimed": self.reclaimed,
            "reminted": self.reminted,
            "invalidated": self.invalidated,
            "revoked": self.revoked,
            "promoted": self.promoted,
            "lost_compute_seconds": self.lost_compute_seconds,
        }


@dataclass
class _Ledger:
    """Mutable tallies the controller accumulates across the run."""

    failures: list[FailureRecord] = field(default_factory=list)
    joins: list[int] = field(default_factory=list)
    leaves: list[int] = field(default_factory=list)
    skipped_crashes: int = 0
    skipped_leaves: int = 0


class FaultController:
    """Injects faults and recovers from them.  One per run.

    ``lease_timeout`` is the TS-side failure-detection bound: a worker
    whose lease has been silent that long is probed, and probing a
    crashed worker declares the failure.  Detection therefore lags the
    crash by at most ``lease_timeout`` of simulated time.
    """

    def __init__(
        self,
        injector: FaultInjector,
        lease_timeout: float = 0.25,
    ) -> None:
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease timeout must be > 0: {lease_timeout}"
            )
        self.injector = injector
        self.lease_timeout = lease_timeout
        self.membership: Membership | None = None
        self.runtime: FelaRuntime | None = None
        self._deadlines: dict[int, float] = {}
        self._crashed: dict[int, float] = {}
        self._pending_joins = 0
        self._ledger = _Ledger()
        #: Set by :meth:`stop` once the run is over, so the lease monitor
        #: terminates instead of ticking forever — irrelevant when the
        #: environment dies with the run, load-bearing when many runs
        #: share one environment (``repro.cluster``).
        self._stopped = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, runtime: FelaRuntime) -> None:
        """Bind to a runtime; called once from ``FelaRuntime.__init__``."""
        if self.runtime is not None:
            raise ConfigurationError("fault controller is already attached")
        num_workers = runtime.config.num_workers
        planned = self.injector.planned_joins
        if num_workers + planned > runtime.cluster.num_nodes:
            raise ConfigurationError(
                f"cluster has {runtime.cluster.num_nodes} nodes but the "
                f"fault script needs {num_workers} initial workers plus "
                f"{planned} joins"
            )
        for event in self.injector.scripted_events():
            if event.kind in (KIND_CRASH, KIND_LEAVE):
                assert event.wid is not None
                if event.wid >= num_workers:
                    raise ConfigurationError(
                        f"scripted {event.kind} targets worker "
                        f"{event.wid} but only {num_workers} initial "
                        "workers exist"
                    )
        self.runtime = runtime
        self.membership = Membership(num_workers)
        server = runtime.server
        server.faults = self
        server.distributor.attach_membership(self.membership)
        server.generator.home_resolver = self._resolve_home
        self._detection = runtime.metrics.histogram(
            "fault.detection_seconds"
        )
        env = runtime.cluster.env
        for wid in range(num_workers):
            self._deadlines[wid] = env.now + self.lease_timeout
        env.process(self._dispatch())
        env.process(self._monitor())

    def _resolve_home(self, candidate: int) -> int:
        """Generator hook: re-home fresh tokens off non-active workers."""
        assert self.membership is not None
        if self.membership.is_active(candidate):
            return candidate
        return self.membership.rehome_target(candidate)

    # -- injection processes --------------------------------------------------

    def _dispatch(self) -> _t.Iterator[_t.Any]:
        assert self.runtime is not None
        env = self.runtime.cluster.env
        for event in self.injector.scripted_events():
            delay = event.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            if event.kind == KIND_CRASH:
                assert event.wid is not None
                self._do_crash(event.wid)
            elif event.kind == KIND_LEAVE:
                assert event.wid is not None
                self._do_leave(event.wid)
            else:
                self._pending_joins += 1

    def _delayed_crash(self, event: FaultEvent) -> _t.Iterator[_t.Any]:
        assert self.runtime is not None
        env = self.runtime.cluster.env
        yield env.timeout(max(0.0, event.time - env.now))
        assert event.wid is not None
        self._do_crash(event.wid)

    def _do_crash(self, wid: int) -> None:
        assert self.runtime is not None and self.membership is not None
        membership = self.membership
        targetable = membership.is_active(wid) or membership.is_draining(wid)
        if not targetable or wid in self._crashed:
            self._ledger.skipped_crashes += 1
            return
        # Membership lags reality: a crashed worker stays ACTIVE until
        # its lease expires, so count survivors as active AND not yet
        # crashed — otherwise two near-simultaneous crashes can both
        # pass an ``active_workers() > 1`` check and deadlock the run.
        survivors = [
            w
            for w in membership.active_workers()
            if w not in self._crashed
        ]
        if wid in survivors and len(survivors) <= 1:
            # Killing the last live worker would deadlock the run; a
            # real cluster would abort the job here, we just skip.
            self._ledger.skipped_crashes += 1
            return
        self._crashed[wid] = self.runtime.cluster.env.now
        process = self.runtime._worker_procs.get(wid)
        if process is not None and process.is_alive:
            process.interrupt(WorkerCrash(wid))

    def _do_leave(self, wid: int) -> None:
        assert self.runtime is not None and self.membership is not None
        membership = self.membership
        survivors = [
            w
            for w in membership.active_workers()
            if w not in self._crashed
        ]
        if (
            not membership.is_active(wid)
            or wid in self._crashed
            or len(survivors) <= 1
        ):
            self._ledger.skipped_leaves += 1
            return
        membership.mark_draining(wid)
        # A parked worker would otherwise only notice at the next
        # iteration boundary; nudge it so it departs promptly.
        worker = self._worker(wid)
        process = self.runtime._worker_procs.get(wid)
        if (
            worker is not None
            and worker._parked
            and process is not None
            and process.is_alive
        ):
            process.interrupt(ReviveWork())

    # -- detection ------------------------------------------------------------

    def _monitor(self) -> _t.Iterator[_t.Any]:
        assert self.runtime is not None
        env = self.runtime.cluster.env
        while not self._stopped:
            if not self._deadlines:
                yield env.timeout(self.lease_timeout)
                continue
            horizon = min(self._deadlines.values())
            if horizon > env.now:
                yield env.timeout(horizon - env.now)
                continue
            for wid in sorted(self._deadlines):
                deadline = self._deadlines.get(wid)
                if deadline is None or deadline > env.now:
                    continue
                if wid in self._crashed:
                    self._handle_failure(wid)
                else:
                    # Lease expired but the probe answers: the worker is
                    # alive, just idle (parked or mid-compute).  Renew.
                    self._deadlines[wid] = env.now + self.lease_timeout

    def stop(self) -> None:
        """Retire the controller: the lease monitor exits at its next wake.

        Called by cluster-level drivers when the attached job finishes;
        single-job runs never need it because ``env.run(main)`` simply
        stops pumping events once the main process completes.
        """
        self._stopped = True

    def touch(self, wid: int) -> None:
        """Renew a worker's lease (called on every TS interaction)."""
        assert self.runtime is not None
        if wid in self._deadlines:
            self._deadlines[wid] = (
                self.runtime.cluster.env.now + self.lease_timeout
            )

    def _handle_failure(self, wid: int) -> None:
        assert self.runtime is not None and self.membership is not None
        runtime = self.runtime
        env = runtime.cluster.env
        crash_time = self._crashed[wid]
        self.membership.mark_failed(wid)
        self._deadlines.pop(wid, None)
        server = runtime.server
        sweep = server.recover_from_failure(wid, self._copy_holders())
        lost_compute = self._lost_compute(wid, sweep["reminted"])
        record = FailureRecord(
            wid=wid,
            crash_time=crash_time,
            detect_time=env.now,
            reclaimed=len(sweep["reclaimed"]),
            reminted=len(sweep["reminted"]),
            invalidated=len(sweep["invalidated"]),
            revoked=len(sweep["revoked"]),
            promoted=len(sweep["promoted"]),
            lost_compute_seconds=lost_compute,
        )
        self._ledger.failures.append(record)
        self._detection.observe(record.detection_seconds)
        tracer = env.tracer
        if tracer.enabled:
            tracer.worker_failed(
                wid,
                crash_time=crash_time,
                reclaimed=record.reclaimed,
                reminted=record.reminted,
            )
        self._revive_parked()

    def _copy_holders(self) -> list[tuple[int, set[int]]]:
        """Live workers (and their Parameter Chunk contents) that may
        adopt activation copies of lost tokens, in deterministic order."""
        assert self.runtime is not None and self.membership is not None
        holders = []
        for worker in sorted(self.runtime.workers, key=lambda w: w.wid):
            if self.membership.is_online(worker.wid):
                holders.append((worker.wid, worker.chunks))
        return holders

    def _lost_compute(self, wid: int, reminted: list[_t.Any]) -> float:
        """Nominal GPU-seconds the dead worker had sunk into tokens that
        now need retraining (the paper's lost-work degradation metric)."""
        assert self.runtime is not None
        runtime = self.runtime
        node = runtime.cluster[wid]
        total = 0.0
        for token in reminted:
            submodel = runtime.config.partition.submodels[token.level]
            nominal = node.gpu_spec.train_time(
                submodel.layers, token.batch
            )
            total += nominal / node.speed_factor
        return total

    def _revive_parked(self) -> None:
        """Wake parked live workers: the sweep refilled the bucket."""
        assert self.runtime is not None and self.membership is not None
        for worker in sorted(self.runtime.workers, key=lambda w: w.wid):
            if not self.membership.is_active(worker.wid):
                continue
            if not worker._parked:
                continue
            process = self.runtime._worker_procs.get(worker.wid)
            if process is not None and process.is_alive:
                process.interrupt(ReviveWork())

    # -- membership hooks (called by server / worker / runtime) ---------------

    def iteration_started(self, iteration: int) -> None:
        """Runtime hook: activate pending joins, draw iteration crashes."""
        assert self.runtime is not None and self.membership is not None
        runtime = self.runtime
        env = runtime.cluster.env
        while self._pending_joins > 0:
            self._pending_joins -= 1
            worker = runtime.provision_worker()
            wid = worker.wid
            self.membership.add_joining(wid)
            self.membership.activate(wid)
            self._deadlines[wid] = env.now + self.lease_timeout
            invariants = runtime.server.invariants
            if invariants is not None:
                invariants.on_worker_joined(wid)
            if env.tracer.enabled:
                env.tracer.worker_joined(wid, iteration=iteration)
            runtime._worker_procs[wid] = env.process(
                worker.run_loop(runtime, first_iteration=iteration)
            )
            self._ledger.joins.append(wid)
        crashes = self.injector.iteration_crashes(
            iteration, env.now, self.membership.active_workers()
        )
        for event in crashes:
            env.process(self._delayed_crash(event))

    def worker_departed(self, wid: int) -> None:
        """Worker hook: a draining worker finished its last token."""
        assert self.runtime is not None and self.membership is not None
        self.membership.mark_left(wid)
        self._deadlines.pop(wid, None)
        self._ledger.leaves.append(wid)
        env = self.runtime.cluster.env
        if env.tracer.enabled:
            env.tracer.worker_left(wid)

    def may_request(self, wid: int) -> bool:
        assert self.membership is not None
        return self.membership.may_request(wid)

    def should_depart(self, wid: int) -> bool:
        assert self.membership is not None
        return self.membership.is_draining(wid)

    def is_failed(self, wid: int) -> bool:
        assert self.membership is not None
        return self.membership.is_failed(wid)

    def _worker(self, wid: int) -> _t.Any:
        assert self.runtime is not None
        for worker in self.runtime.workers:
            if worker.wid == wid:
                return worker
        return None

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict[str, _t.Any]:
        """Degradation accounting for ``RunResult.stats['faults']``."""
        if self.membership is None:
            raise SchedulingError("fault controller was never attached")
        ledger = self._ledger
        failures = [record.as_dict() for record in ledger.failures]
        return {
            "failures": failures,
            "joined": list(ledger.joins),
            "left": list(ledger.leaves),
            "skipped_crashes": ledger.skipped_crashes,
            "skipped_leaves": ledger.skipped_leaves,
            "pending_joins": self._pending_joins,
            "tokens_reclaimed": sum(r.reclaimed for r in ledger.failures),
            "tokens_reminted": sum(r.reminted for r in ledger.failures),
            "tokens_invalidated": sum(
                r.invalidated for r in ledger.failures
            ),
            "tokens_revoked": sum(r.revoked for r in ledger.failures),
            "copies_promoted": sum(r.promoted for r in ledger.failures),
            "lost_compute_seconds": sum(
                r.lost_compute_seconds for r in ledger.failures
            ),
            "recovery_detection_seconds": [
                r.detection_seconds for r in ledger.failures
            ],
            "final_states": {
                wid: self.membership.state(wid)
                for wid in self.membership.known_workers()
            },
        }
