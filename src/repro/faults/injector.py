"""Fault injectors: deterministic scripts of crash / leave / join events.

Mirrors the straggler-injector design (`repro.stragglers.injector`): every
injector is seeded or scripted, never samples wall-clock entropy, so a
faulted run replays byte-identically.  Two query surfaces exist because
faults come in two shapes:

* :meth:`FaultInjector.scripted_events` — absolute-time events (crash a
  specific worker at t=3.5, open a join slot at t=6.0).  The controller
  process sleeps toward each event time and dispatches.
* :meth:`FaultInjector.iteration_crashes` — per-iteration probabilistic
  crashes, sampled with the shared ``seed * 1_000_003 + iteration`` idiom
  when the controller learns the iteration has started.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

KIND_CRASH = "crash"
KIND_LEAVE = "leave"
KIND_JOIN = "join"

_KINDS = frozenset({KIND_CRASH, KIND_LEAVE, KIND_JOIN})


@dataclass(frozen=True)
class FaultEvent:
    """One scripted membership event.

    ``wid`` is the target worker for crash/leave and ``None`` for join
    (the controller assigns the next free slot id).
    """

    time: float
    kind: str
    wid: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown fault kind: {self.kind!r}")
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0: {self.time}")
        if self.kind == KIND_JOIN:
            if self.wid is not None:
                raise ConfigurationError("join events must not name a worker")
        elif self.wid is None or self.wid < 0:
            raise ConfigurationError(
                f"{self.kind} events need a worker id: {self.wid}"
            )


class FaultInjector(ABC):
    """Decides which membership events happen during a run."""

    @abstractmethod
    def scripted_events(self) -> list[FaultEvent]:
        """Absolute-time events, sorted by time."""

    def iteration_crashes(
        self, iteration: int, now: float, active: list[int]
    ) -> list[FaultEvent]:
        """Crashes to inject during ``iteration``, which started at
        ``now`` with ``active`` workers.  Event times are absolute."""
        return []

    @property
    def planned_joins(self) -> int:
        """How many join slots the cluster must reserve capacity for."""
        return sum(
            1 for ev in self.scripted_events() if ev.kind == KIND_JOIN
        )


class NoFaults(FaultInjector):
    """Fault layer enabled but no events — useful for overhead checks."""

    def scripted_events(self) -> list[FaultEvent]:
        return []


class FaultScript(FaultInjector):
    """A fixed, explicit list of events."""

    def __init__(self, events: list[FaultEvent]) -> None:
        self._events = sorted(events, key=lambda ev: (ev.time, ev.kind))

    def scripted_events(self) -> list[FaultEvent]:
        return list(self._events)


class ProbabilisticCrashes(FaultInjector):
    """Each active worker crashes with ``probability`` per iteration.

    The crash lands uniformly within ``window`` seconds of the iteration
    start, so some tokens are already in flight.  Sampling is keyed on
    ``(seed, iteration)`` only — worker membership changes do not shift
    the stream for other iterations.
    """

    def __init__(
        self,
        probability: float,
        window: float = 1.0,
        seed: int = 0,
        max_crashes: int | None = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"crash probability must be in [0, 1]: {probability}"
            )
        if window <= 0:
            raise ConfigurationError(f"crash window must be > 0: {window}")
        self.probability = probability
        self.window = window
        self.seed = seed
        self.max_crashes = max_crashes
        self._crashes_emitted = 0

    def scripted_events(self) -> list[FaultEvent]:
        return []

    def iteration_crashes(
        self, iteration: int, now: float, active: list[int]
    ) -> list[FaultEvent]:
        rng = random.Random(self.seed * 1_000_003 + iteration)
        events: list[FaultEvent] = []
        for wid in sorted(active):
            roll = rng.random()
            offset = rng.uniform(0.0, self.window)
            if roll >= self.probability:
                continue
            if (
                self.max_crashes is not None
                and self._crashes_emitted >= self.max_crashes
            ):
                continue
            self._crashes_emitted += 1
            events.append(FaultEvent(now + offset, KIND_CRASH, wid))
        return events


class CompositeFaultInjector(FaultInjector):
    """Union of several injectors (e.g. a script plus random crashes)."""

    def __init__(self, injectors: list[FaultInjector]) -> None:
        if not injectors:
            raise ConfigurationError("composite injector needs >= 1 part")
        self._injectors = list(injectors)

    def scripted_events(self) -> list[FaultEvent]:
        merged = [
            ev for inj in self._injectors for ev in inj.scripted_events()
        ]
        return sorted(merged, key=lambda ev: (ev.time, ev.kind))

    def iteration_crashes(
        self, iteration: int, now: float, active: list[int]
    ) -> list[FaultEvent]:
        merged = [
            ev
            for inj in self._injectors
            for ev in inj.iteration_crashes(iteration, now, active)
        ]
        return sorted(merged, key=lambda ev: (ev.time, ev.wid or 0))


def parse_faults(text: str) -> FaultInjector | None:
    """Parse the CLI ``--faults`` spec.

    Grammar (comma-separated clauses)::

        none                  no fault layer at all (returns None)
        crash:W@T             kill worker W at time T
        leave:W@T             worker W drains gracefully starting at T
        join@T                one new worker joins at time T
        crashp:P[:SEED]       each worker crashes with prob P per iteration

    Example: ``crash:2@3.5,join@6`` or ``crashp:0.05:7``.
    """
    text = text.strip().lower()
    if text in ("", "none", "off"):
        return None
    events: list[FaultEvent] = []
    injectors: list[FaultInjector] = []
    for clause in text.split(","):
        clause = clause.strip()
        try:
            if clause.startswith("crashp:"):
                parts = clause.split(":")[1:]
                prob = float(parts[0])
                seed = int(parts[1]) if len(parts) > 1 else 0
                injectors.append(ProbabilisticCrashes(prob, seed=seed))
            elif clause.startswith(("crash:", "leave:")):
                kind, rest = clause.split(":", 1)
                wid_text, time_text = rest.split("@", 1)
                events.append(
                    FaultEvent(float(time_text), kind, int(wid_text))
                )
            elif clause.startswith("join@"):
                events.append(
                    FaultEvent(float(clause.split("@", 1)[1]), KIND_JOIN)
                )
            else:
                raise ValueError(clause)
        except (ValueError, IndexError) as exc:
            raise ConfigurationError(
                f"bad --faults clause {clause!r}; expected crash:W@T, "
                "leave:W@T, join@T, crashp:P[:SEED], or none"
            ) from exc
    if events:
        injectors.insert(0, FaultScript(events))
    if len(injectors) == 1:
        return injectors[0]
    return CompositeFaultInjector(injectors)
