"""The performance lab: deterministic benchmarks and regression tracking.

Three parts, one measurement loop:

* :mod:`repro.perf.scenarios` — a registry of seeded macro scenarios
  (whole Fela/baseline runs, straggler/faulted/traced variants) and
  micro scenarios (event-loop churn, fabric transfers, the token
  mint/assign/report path, ring all-reduce), each fully deterministic;
* :mod:`repro.perf.runner` — warmup + repeated wall-clock measurement
  producing median/IQR, simulated-seconds-per-wall-second, events/sec,
  and peak RSS for each scenario, with a rerun determinism check;
* :mod:`repro.perf.store` — the schema-versioned regression store
  behind ``BENCH_core.json`` and the comparator ``repro bench
  --compare`` uses to fail on regressions.

:mod:`repro.perf.hotspots` adds the cProfile-backed top-N report that
justifies every hot-path optimization with data.
"""

from repro.perf.hotspots import profile_scenario
from repro.perf.runner import (
    ScenarioMeasurement,
    measure_scenario,
    run_benchmarks,
)
from repro.perf.scenarios import (
    Scenario,
    ScenarioContext,
    ScenarioStats,
    baseline_run,
    build_cluster,
    get_scenario,
    scenario_names,
    scenarios,
    tuned_fela_config,
)
from repro.perf.store import (
    SCHEMA_VERSION,
    BenchRun,
    Comparison,
    ComparisonRow,
    ScenarioRecord,
    append_run,
    compare_runs,
    load_store,
    render_history,
    run_for_label,
    save_store,
    scenario_history,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchRun",
    "Comparison",
    "ComparisonRow",
    "Scenario",
    "ScenarioContext",
    "ScenarioMeasurement",
    "ScenarioRecord",
    "ScenarioStats",
    "append_run",
    "baseline_run",
    "build_cluster",
    "compare_runs",
    "get_scenario",
    "load_store",
    "measure_scenario",
    "profile_scenario",
    "render_history",
    "run_benchmarks",
    "run_for_label",
    "save_store",
    "scenario_history",
    "scenario_names",
    "scenarios",
    "tuned_fela_config",
]
