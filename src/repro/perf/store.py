"""The regression store: schema-versioned benchmark history + comparator.

``BENCH_core.json`` at the repository root holds an append-only list of
labelled benchmark *runs* (each a set of per-scenario records), so the
performance trajectory of the engine is part of the repository's
history: every optimization PR appends a before/after pair, and CI
compares fresh measurements against the last committed run.

The file format is deliberately strict: a missing file, malformed JSON,
a wrong/old ``schema`` field, or structurally broken records all raise
:class:`~repro.errors.BenchmarkError` with a message naming the problem
— a corrupt baseline must never silently pass a regression gate.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from repro.errors import BenchmarkError

#: Bump on any backwards-incompatible change to the store layout.
SCHEMA_VERSION = 1

#: Default classification/gate threshold: a scenario regresses when its
#: median wall-clock grows by more than this percentage.
DEFAULT_REGRESSION_PCT = 20.0


@dataclasses.dataclass(frozen=True)
class ScenarioRecord:
    """One scenario's stored measurement."""

    name: str
    kind: str
    repeats: int
    warmup: int
    wall_seconds: tuple[float, ...]
    wall_seconds_median: float
    wall_seconds_iqr: float
    simulated_seconds: float
    events: int
    sim_seconds_per_wall_second: float
    events_per_second: float
    peak_rss_kb: float
    #: Events the analytical fast-forward drained without dispatching
    #: (0 for scenarios that never enter a steady interval).  Optional
    #: in stored payloads so pre-existing stores keep loading; the
    #: schema version is unchanged.
    events_elided: int = 0

    def to_dict(self) -> dict[str, _t.Any]:
        payload = dataclasses.asdict(self)
        payload["wall_seconds"] = list(self.wall_seconds)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, _t.Any]) -> "ScenarioRecord":
        try:
            return cls(
                name=payload["name"],
                kind=payload["kind"],
                repeats=int(payload["repeats"]),
                warmup=int(payload["warmup"]),
                wall_seconds=tuple(
                    float(wall) for wall in payload["wall_seconds"]
                ),
                wall_seconds_median=float(payload["wall_seconds_median"]),
                wall_seconds_iqr=float(payload["wall_seconds_iqr"]),
                simulated_seconds=float(payload["simulated_seconds"]),
                events=int(payload["events"]),
                sim_seconds_per_wall_second=float(
                    payload["sim_seconds_per_wall_second"]
                ),
                events_per_second=float(payload["events_per_second"]),
                peak_rss_kb=float(payload["peak_rss_kb"]),
                events_elided=int(payload.get("events_elided", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed scenario record in benchmark store: {exc!r}"
            ) from None


@dataclasses.dataclass(frozen=True)
class BenchRun:
    """One labelled benchmark invocation over a set of scenarios."""

    label: str
    records: tuple[ScenarioRecord, ...]

    def record_for(self, name: str) -> ScenarioRecord | None:
        for record in self.records:
            if record.name == name:
                return record
        return None

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "label": self.label,
            "results": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, _t.Any]) -> "BenchRun":
        if not isinstance(payload, dict):
            raise BenchmarkError(
                f"malformed benchmark run: expected object, got "
                f"{type(payload).__name__}"
            )
        label = payload.get("label")
        results = payload.get("results")
        if not isinstance(label, str) or not isinstance(results, list):
            raise BenchmarkError(
                "malformed benchmark run: needs a string 'label' and a "
                "'results' list"
            )
        return cls(
            label=label,
            records=tuple(
                ScenarioRecord.from_dict(entry) for entry in results
            ),
        )


# -- persistence --------------------------------------------------------------


def load_store(path: str | pathlib.Path) -> list[BenchRun]:
    """Read all runs from a store file; strict about schema and shape."""
    path = pathlib.Path(path)
    if not path.exists():
        raise BenchmarkError(f"no benchmark baseline at {path}")
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(
            f"malformed benchmark store {path}: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise BenchmarkError(
            f"malformed benchmark store {path}: top level must be an "
            "object"
        )
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise BenchmarkError(
            f"benchmark store {path} has schema {schema!r}; this tool "
            f"reads schema {SCHEMA_VERSION} — regenerate with "
            "'repro bench --out'"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list):
        raise BenchmarkError(
            f"malformed benchmark store {path}: 'runs' must be a list"
        )
    return [BenchRun.from_dict(entry) for entry in runs]


def save_store(
    path: str | pathlib.Path, runs: _t.Sequence[BenchRun]
) -> None:
    """Write the full store (schema envelope + runs), byte-stable."""
    payload = {
        "schema": SCHEMA_VERSION,
        "runs": [run.to_dict() for run in runs],
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def append_run(
    path: str | pathlib.Path, run: BenchRun
) -> list[BenchRun]:
    """Append ``run`` to the store (creating it if absent); returns all."""
    path = pathlib.Path(path)
    runs = load_store(path) if path.exists() else []
    runs.append(run)
    save_store(path, runs)
    return runs


def run_for_label(
    runs: _t.Sequence[BenchRun], label: str
) -> BenchRun:
    """The most recent run stored under ``label``.

    Labels are not unique in an append-only store (every PR may append
    another ``optimized`` run); the latest occurrence is the one a gate
    should measure against.  Unknown labels raise
    :class:`~repro.errors.BenchmarkError` naming the labels that exist.
    """
    for run in reversed(runs):
        if run.label == label:
            return run
    known = ", ".join(
        dict.fromkeys(run.label for run in runs)
    ) or "(nothing)"
    raise BenchmarkError(
        f"no benchmark run labelled {label!r} in the store; "
        f"stored labels: {known}"
    )


# -- history ------------------------------------------------------------------


def scenario_history(
    runs: _t.Sequence[BenchRun], scenario: str
) -> list[tuple[str, float]]:
    """``(run label, median wall seconds)`` for every run measuring it."""
    history = [
        (run.label, record.wall_seconds_median)
        for run in runs
        for record in run.records
        if record.name == scenario
    ]
    if not history:
        known = sorted(
            {record.name for run in runs for record in run.records}
        )
        raise BenchmarkError(
            f"no recorded runs measure scenario {scenario!r}; store "
            f"holds: {', '.join(known) or '(nothing)'}"
        )
    return history


def render_history(
    runs: _t.Sequence[BenchRun], scenario: str
) -> str:
    """Trend report over the full store history of one scenario.

    Complements the last-run-only comparator: first/min/median/last
    median-wall values plus a per-run sparkline, so a slow drift that
    never trips the single-step regression gate is still visible.
    """
    from repro.store.dashboard import sparkline

    history = scenario_history(runs, scenario)
    walls = [wall for _, wall in history]
    if not walls:  # scenario_history raises first; keep the gate local too
        raise BenchmarkError(
            f"no recorded runs measure scenario {scenario!r}"
        )
    ordered = sorted(walls)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        # True median: even-length histories average the two middles
        # (indexing [len // 2] alone reports the upper one).
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    from repro.harness import render_table

    trend = render_table(
        ["Run", "Label", "Wall med (s)", "vs first"],
        [
            [
                position,
                label,
                f"{wall:.4f}",
                f"{(wall / walls[0] - 1) * 100:+.1f}%"
                if walls[0] > 0 else "-",
            ]
            for position, (label, wall) in enumerate(history)
        ],
        title=f"History of {scenario!r} ({len(history)} runs)",
    )
    summary = (
        f"first {walls[0]:.4f}s  min {min(walls):.4f}s  "
        f"median {median:.4f}s  last {walls[-1]:.4f}s\n"
        f"trend {sparkline(walls)}"
    )
    return f"{trend}\n{summary}"


# -- comparison ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One scenario's current-vs-baseline wall-clock verdict."""

    scenario: str
    baseline_wall: float | None
    current_wall: float
    #: Positive = slower than baseline, negative = faster (percent).
    delta_pct: float | None
    #: baseline / current (>1 = speedup); None without a baseline.
    speedup: float | None
    #: "regression" | "improvement" | "ok" | "new"
    status: str


@dataclasses.dataclass(frozen=True)
class Comparison:
    """Comparator output: per-scenario rows + the gate threshold used."""

    rows: tuple[ComparisonRow, ...]
    threshold_pct: float
    baseline_label: str

    @property
    def regressions(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def improvements(self) -> list[ComparisonRow]:
        return [row for row in self.rows if row.status == "improvement"]

    def render(self) -> str:
        from repro.harness import render_table

        rows = []
        for row in self.rows:
            rows.append(
                [
                    row.scenario,
                    "-" if row.baseline_wall is None
                    else f"{row.baseline_wall:.4f}",
                    f"{row.current_wall:.4f}",
                    "-" if row.delta_pct is None
                    else f"{row.delta_pct:+.1f}%",
                    "-" if row.speedup is None
                    else f"{row.speedup:.2f}x",
                    row.status,
                ]
            )
        table = render_table(
            ["Scenario", "Base wall (s)", "Now wall (s)", "Delta",
             "Speedup", "Status"],
            rows,
            title=(
                f"vs baseline {self.baseline_label!r} "
                f"(gate: +{self.threshold_pct:g}%)"
            ),
        )
        if self.regressions:
            names = ", ".join(row.scenario for row in self.regressions)
            table += f"\nREGRESSION: {names}"
        return table


def compare_runs(
    current: BenchRun,
    baseline: BenchRun,
    threshold_pct: float = DEFAULT_REGRESSION_PCT,
) -> Comparison:
    """Classify every current scenario against the baseline run.

    A scenario regresses when its median wall-clock exceeds the
    baseline's by more than ``threshold_pct`` percent, improves when it
    undercuts it by the same margin, and is ``new`` when the baseline
    run never measured it.
    """
    if threshold_pct < 0:
        raise BenchmarkError(
            f"regression threshold must be >= 0: {threshold_pct}"
        )
    rows: list[ComparisonRow] = []
    for record in current.records:
        base = baseline.record_for(record.name)
        if base is None:
            rows.append(
                ComparisonRow(
                    scenario=record.name,
                    baseline_wall=None,
                    current_wall=record.wall_seconds_median,
                    delta_pct=None,
                    speedup=None,
                    status="new",
                )
            )
            continue
        if base.wall_seconds_median <= 0:
            raise BenchmarkError(
                f"baseline for {record.name!r} has non-positive wall "
                f"time {base.wall_seconds_median}"
            )
        delta_pct = (
            (record.wall_seconds_median - base.wall_seconds_median)
            / base.wall_seconds_median
            * 100.0
        )
        if delta_pct > threshold_pct:
            status = "regression"
        elif delta_pct < -threshold_pct:
            status = "improvement"
        else:
            status = "ok"
        rows.append(
            ComparisonRow(
                scenario=record.name,
                baseline_wall=base.wall_seconds_median,
                current_wall=record.wall_seconds_median,
                delta_pct=delta_pct,
                speedup=(
                    base.wall_seconds_median / record.wall_seconds_median
                    if record.wall_seconds_median > 0
                    else None
                ),
                status=status,
            )
        )
    return Comparison(
        rows=tuple(rows),
        threshold_pct=threshold_pct,
        baseline_label=baseline.label,
    )
