"""The deterministic benchmark runner.

Measures each scenario as: one-off ``build`` (untimed), ``warmup``
untimed repetitions, then ``repeats`` timed repetitions.  Wall-clock is
summarized as median + interquartile range — the paper-standard robust
pair for noisy timers — alongside simulated-seconds-per-wall-second
(how much cluster time one host second buys), events/sec (event-loop
throughput), and the process's peak RSS.

Every repetition must return identical :class:`ScenarioStats`; a
mismatch means the scenario (or the engine underneath it) is
nondeterministic, and the runner fails loudly instead of averaging over
the bug.
"""

from __future__ import annotations

import dataclasses
import statistics
import time
import typing as _t

from repro.errors import BenchmarkError
from repro.perf.scenarios import (
    Scenario,
    ScenarioContext,
    ScenarioStats,
    get_scenario,
)
from repro.perf.store import BenchRun, ScenarioRecord

DEFAULT_REPEATS = 5
DEFAULT_WARMUP = 1


def _peak_rss_kb() -> float:
    """Peak resident set size of this process, in KiB (0.0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX host
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return float(usage) / (1024.0 if usage > 1 << 30 else 1.0)


@dataclasses.dataclass(frozen=True)
class ScenarioMeasurement:
    """One scenario's measured performance."""

    name: str
    kind: str
    repeats: int
    warmup: int
    wall_seconds: tuple[float, ...]
    wall_seconds_median: float
    wall_seconds_iqr: float
    simulated_seconds: float
    events: int
    sim_seconds_per_wall_second: float
    events_per_second: float
    peak_rss_kb: float
    events_elided: int = 0

    def to_record(self) -> ScenarioRecord:
        return ScenarioRecord(
            name=self.name,
            kind=self.kind,
            repeats=self.repeats,
            warmup=self.warmup,
            wall_seconds=self.wall_seconds,
            wall_seconds_median=self.wall_seconds_median,
            wall_seconds_iqr=self.wall_seconds_iqr,
            simulated_seconds=self.simulated_seconds,
            events=self.events,
            sim_seconds_per_wall_second=self.sim_seconds_per_wall_second,
            events_per_second=self.events_per_second,
            peak_rss_kb=self.peak_rss_kb,
            events_elided=self.events_elided,
        )


def _summarize(walls: _t.Sequence[float]) -> tuple[float, float]:
    """(median, interquartile range) of the timed repetitions."""
    median = statistics.median(walls)
    if len(walls) < 2:
        return median, 0.0
    quartiles = statistics.quantiles(walls, n=4, method="inclusive")
    return median, quartiles[2] - quartiles[0]


def measure_scenario(
    scenario: Scenario | str,
    ctx: ScenarioContext | None = None,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> ScenarioMeasurement:
    """Measure one scenario; raises on nondeterministic repetitions."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if repeats < 1:
        raise BenchmarkError(f"need at least one repeat: {repeats}")
    if warmup < 0:
        raise BenchmarkError(f"warmup must be >= 0: {warmup}")
    ctx = ctx or ScenarioContext()
    run_once = scenario.build(ctx)
    for _ in range(warmup):
        run_once()

    walls: list[float] = []
    stats: ScenarioStats | None = None
    for repeat in range(repeats):
        begin = time.perf_counter()
        observed = run_once()
        walls.append(time.perf_counter() - begin)
        if stats is None:
            stats = observed
        elif observed != stats:
            raise BenchmarkError(
                f"scenario {scenario.name!r} is nondeterministic: "
                f"repeat {repeat} produced {observed}, expected {stats}"
            )
    assert stats is not None
    median, iqr = _summarize(walls)
    return ScenarioMeasurement(
        name=scenario.name,
        kind=scenario.kind,
        repeats=repeats,
        warmup=warmup,
        wall_seconds=tuple(walls),
        wall_seconds_median=median,
        wall_seconds_iqr=iqr,
        simulated_seconds=stats.simulated_seconds,
        events=stats.events,
        sim_seconds_per_wall_second=(
            stats.simulated_seconds / median if median > 0 else 0.0
        ),
        events_per_second=stats.events / median if median > 0 else 0.0,
        peak_rss_kb=_peak_rss_kb(),
        events_elided=stats.events_elided,
    )


def run_benchmarks(
    names: _t.Sequence[str],
    label: str,
    ctx: ScenarioContext | None = None,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    executor: _t.Any | None = None,
) -> BenchRun:
    """Measure ``names`` in order and bundle them into one labelled run.

    With a parallel :class:`~repro.exec.SweepExecutor` the *scenarios*
    fan out across pool workers (one :class:`~repro.exec.BenchJob`
    each); the repetitions of a single scenario always stay serial
    inside their worker, so the per-repetition determinism tripwire is
    untouched.  Parallel timings measure contended workers — use them
    for smoke coverage, not for pinning speedups.
    """
    if not names:
        raise BenchmarkError("no scenarios selected")
    for name in names:
        get_scenario(name)  # fail fast before spawning workers
    if executor is not None and executor.jobs > 1 and len(names) > 1:
        from repro.exec import BenchJob

        measurements = executor.map(
            [
                BenchJob(scenario=name, repeats=repeats, warmup=warmup)
                for name in names
            ]
        )
        return BenchRun(
            label=label,
            records=tuple(m.to_record() for m in measurements),
        )
    ctx = ctx or ScenarioContext()
    records = tuple(
        measure_scenario(name, ctx, repeats=repeats, warmup=warmup)
        .to_record()
        for name in names
    )
    return BenchRun(label=label, records=records)
