"""The benchmark scenario registry.

A *scenario* is a named, fully deterministic workload.  ``build()``
performs the expensive one-off setup (model construction, two-phase
tuning) and returns a zero-argument ``run_once`` callable; the runner
times ``run_once`` alone, so measurements capture the engine, not the
warm-up.  Every ``run_once`` builds a fresh simulation (environment,
cluster, injectors), which is why repeats of a scenario are bit-identical
— the determinism check in :mod:`repro.perf.runner` relies on it.

Macro scenarios exercise whole training runs (the Fela runtime on
vgg19/googlenet, the DP/MP/HP baselines, straggler + faulted + traced
variants); micro scenarios isolate one hot path each (sim event-loop
churn, fabric transfers, the token mint/assign/report path, ring
all-reduce, and raw object allocation for the ``__slots__`` ledger).

The shared builders (:func:`tuned_fela_config`, :func:`build_cluster`,
:func:`baseline_run`) are also the setup surface the benchmark suite's
``conftest`` routes through, so figure benchmarks and the perf lab agree
on how a workload is constructed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import BenchmarkError
from repro.hardware import Cluster, ClusterSpec
from repro.harness import ExperimentRunner, ExperimentSpec

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import FelaConfig
    from repro.metrics import RunResult

MACRO = "macro"
MICRO = "micro"


@dataclasses.dataclass(frozen=True)
class ScenarioStats:
    """What one scenario repetition produced (must not vary across reps)."""

    #: Final simulation clock of the run (0.0 for pure-allocation micros).
    simulated_seconds: float
    #: Events scheduled on the simulation environment(s) of the run.
    events: int
    #: Events the analytical fast-forward drained without dispatching
    #: (a subset of ``events``; deterministic, so the repetition check
    #: covers it too).
    events_elided: int = 0


@dataclasses.dataclass
class ScenarioContext:
    """Shared expensive state for scenario setup.

    One context serves a whole ``repro bench`` invocation, so scenarios
    over the same workload share the cached two-phase tuning exactly as
    the figure benchmarks share their session-scoped runner.
    """

    runner: ExperimentRunner = dataclasses.field(
        default_factory=ExperimentRunner
    )


RunOnce = _t.Callable[[], ScenarioStats]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    kind: str
    description: str
    _builder: _t.Callable[[ScenarioContext], RunOnce]

    def build(self, ctx: ScenarioContext) -> RunOnce:
        """One-off setup; returns the repeatable timed body."""
        return self._builder(ctx)


_REGISTRY: dict[str, Scenario] = {}


def register(
    name: str, kind: str, description: str
) -> _t.Callable[[_t.Callable[[ScenarioContext], RunOnce]], Scenario]:
    """Register a scenario builder under ``name``."""
    if kind not in (MACRO, MICRO):
        raise BenchmarkError(f"scenario kind must be macro/micro: {kind!r}")

    def wrap(builder: _t.Callable[[ScenarioContext], RunOnce]) -> Scenario:
        if name in _REGISTRY:
            raise BenchmarkError(f"duplicate scenario name {name!r}")
        scenario = Scenario(
            name=name, kind=kind, description=description, _builder=builder
        )
        _REGISTRY[name] = scenario
        return scenario

    return wrap


def scenarios(kind: str | None = None) -> list[Scenario]:
    """All registered scenarios, name-sorted, optionally one kind."""
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if kind is None or _REGISTRY[name].kind == kind
    ]


def scenario_names(kind: str | None = None) -> list[str]:
    return [scenario.name for scenario in scenarios(kind)]


def get_scenario(name: str) -> Scenario:
    scenario = _REGISTRY.get(name)
    if scenario is None:
        raise BenchmarkError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return scenario


# -- shared workload builders (also used by benchmarks/conftest.py) ----------


def build_cluster(
    num_nodes: int = 8, **overrides: _t.Any
) -> Cluster:
    """A fresh simulated cluster (fresh environment, fresh fabric)."""
    return Cluster(ClusterSpec(num_nodes=num_nodes, **overrides))


def tuned_fela_config(
    ctx: ScenarioContext,
    model_name: str,
    total_batch: int,
    num_workers: int = 8,
    iterations: int = 12,
    cluster_spec: ClusterSpec | None = None,
) -> "FelaConfig":
    """The two-phase tuned Fela configuration for a workload (cached)."""
    spec = ExperimentSpec(
        model_name=model_name,
        total_batch=total_batch,
        num_workers=num_workers,
        iterations=iterations,
        cluster_spec=cluster_spec,
    )
    return ctx.runner.fela_config(spec)


def baseline_run(
    ctx: ScenarioContext,
    kind: str,
    model_name: str,
    total_batch: int,
    num_workers: int = 8,
    iterations: int = 12,
    cluster: Cluster | None = None,
) -> tuple["RunResult", Cluster]:
    """Run one baseline runtime on a fresh cluster; returns (result, cluster)."""
    from repro.baselines import DataParallel, HybridParallel, ModelParallel

    baseline_cls = {
        "dp": DataParallel,
        "mp": ModelParallel,
        "hp": HybridParallel,
    }.get(kind)
    if baseline_cls is None:
        raise BenchmarkError(f"unknown baseline kind {kind!r}")
    cluster = cluster or build_cluster(num_workers)
    result = baseline_cls(
        ctx.runner.model(model_name),
        total_batch,
        num_workers,
        iterations=iterations,
        cluster=cluster,
    ).run()
    return result, cluster


# -- macro scenarios ----------------------------------------------------------


def _fela_macro_builder(
    model_name: str,
    total_batch: int,
    iterations: int,
    straggler: str | None = None,
    faults: str | None = None,
    traced: bool = False,
) -> _t.Callable[[ScenarioContext], RunOnce]:
    def build(ctx: ScenarioContext) -> RunOnce:
        from repro.core import FelaRuntime

        config = tuned_fela_config(
            ctx, model_name, total_batch, iterations=iterations
        )

        def run_once() -> ScenarioStats:
            from repro.cli import parse_straggler

            cluster = build_cluster(config.num_workers)
            tracer = None
            if traced:
                from repro.obs import Tracer

                tracer = Tracer()
            controller = None
            if faults is not None:
                from repro.faults import FaultController, parse_faults

                controller = FaultController(parse_faults(faults))
            result = FelaRuntime(
                config,
                cluster,
                straggler=parse_straggler(straggler),
                tracer=tracer,
                faults=controller,
            ).run()
            return ScenarioStats(
                simulated_seconds=result.total_time,
                events=cluster.env.scheduled_events,
                events_elided=cluster.env.ff_elided,
            )

        return run_once

    return build


register(
    "macro.vgg19_fela",
    MACRO,
    "tuned Fela BSP run: vgg19, batch 256, 8 workers, 12 iterations",
)(_fela_macro_builder("vgg19", 256, 12))

register(
    "macro.googlenet_fela",
    MACRO,
    "tuned Fela BSP run: googlenet, batch 256, 8 workers, 12 iterations",
)(_fela_macro_builder("googlenet", 256, 12))

register(
    "macro.vgg19_fela_straggler",
    MACRO,
    "Fela vgg19 run under the round-robin straggler (2 s delays)",
)(_fela_macro_builder("vgg19", 256, 12, straggler="rr:2"))

register(
    "macro.vgg19_fela_faulted",
    MACRO,
    "Fela vgg19 run surviving two seeded worker crashes",
)(_fela_macro_builder("vgg19", 256, 12, faults="crash:2@4.0,crash:5@9.0"))

register(
    "macro.vgg19_fela_traced",
    MACRO,
    "Fela vgg19 run with the structured tracer recording",
)(_fela_macro_builder("vgg19", 256, 12, traced=True))


@register(
    "macro.fela_1000workers",
    MACRO,
    "Fela at scale: 1000 workers, two-level vgg19 partition, "
    "hierarchical gradient sync, one iteration (O(changed)-worker "
    "scheduling, group-local fabric components)",
)
def _fela_1000workers(ctx: ScenarioContext) -> RunOnce:
    from repro.core import FelaConfig, FelaRuntime
    from repro.partition.submodel import Partition, SubModel

    # A two-level re-cut of the tuned vgg19 partition: three levels at
    # this worker count overlap three concurrent level syncs, bridging
    # the fabric into one ~2000-flow component whose max-min solve
    # dominates the host time without measuring anything new.  Two
    # levels keep the token-generation pipeline (ratios, level sync)
    # while components stay group-local.
    full = ctx.runner.partition("vgg19")
    rest = tuple(
        layer for submodel in list(full)[1:] for layer in submodel.layers
    )
    partition = Partition(
        model=full.model,
        submodels=(
            SubModel(
                index=0,
                layers=full[0].layers,
                threshold_batch=full[0].threshold_batch,
            ),
            SubModel(
                index=1, layers=rest, threshold_batch=full[1].threshold_batch
            ),
        ),
    )

    def run_once() -> ScenarioStats:
        cluster = build_cluster(1000)
        config = FelaConfig(
            partition=partition,
            total_batch=4000,
            num_workers=1000,
            weights=(1, 2),
            conditional_subset_size=128,
            iterations=1,
            collective="hierarchical",
        )
        result = FelaRuntime(config, cluster).run()
        return ScenarioStats(
            simulated_seconds=result.total_time,
            events=cluster.env.scheduled_events,
            events_elided=cluster.env.ff_elided,
        )

    return run_once


@register(
    "macro.cluster_100jobs",
    MACRO,
    "multi-tenant cluster service: 100-job Poisson trace scheduled "
    "elastically onto one 32-GPU pool (admission, membership-driven "
    "resizes, many runtimes on one shared clock)",
)
def _cluster_100jobs(_ctx: ScenarioContext) -> RunOnce:
    from repro.cluster import ClusterSimulator, TraceSpec, generate_trace

    # Trace generation is cheap but stays outside the timer anyway so
    # the measurement is pure simulator work.
    trace = generate_trace(
        TraceSpec(kind="poisson", num_jobs=100, seed=11,
                  mean_interarrival=12.0)
    )

    def run_once() -> ScenarioStats:
        result = ClusterSimulator(trace, "elastic", pool_size=32).run()
        return ScenarioStats(
            simulated_seconds=result.makespan,
            events=result.events_scheduled,
        )

    return run_once


def _baseline_macro_builder(
    kind: str, model_name: str, total_batch: int, iterations: int
) -> _t.Callable[[ScenarioContext], RunOnce]:
    def build(ctx: ScenarioContext) -> RunOnce:
        ctx.runner.model(model_name)  # cache the model outside the timer

        def run_once() -> ScenarioStats:
            result, cluster = baseline_run(
                ctx, kind, model_name, total_batch, iterations=iterations
            )
            return ScenarioStats(
                simulated_seconds=result.total_time,
                events=cluster.env.scheduled_events,
            )

        return run_once

    return build


@register(
    "macro.tune_vgg19_serial",
    MACRO,
    "cold exhaustive two-phase tune of vgg19 (jobs=1, no result cache)",
)
def _tune_vgg19_serial(ctx: ScenarioContext) -> RunOnce:
    import math

    from repro.tuning import PHASE1_EXHAUSTIVE, ConfigurationTuner

    partition = ctx.runner.partition("vgg19")

    def run_once() -> ScenarioStats:
        tuner = ConfigurationTuner(
            partition, total_batch=256, num_workers=8, profile_iterations=3
        )
        result = tuner.tune(phase1=PHASE1_EXHAUSTIVE)
        simulated = sum(
            case.per_iteration_time
            for case in result.cases
            if not math.isinf(case.per_iteration_time)
        )
        return ScenarioStats(
            simulated_seconds=simulated, events=result.warmup_iterations
        )

    return run_once


@register(
    "macro.tune_vgg19_parallel",
    MACRO,
    "warm-cache rerun of the same tune through the jobs=4 sweep engine: "
    "every case measurement is a persistent-cache hit, the path "
    "`repro figures` takes when regenerating artifacts",
)
def _tune_vgg19_parallel(ctx: ScenarioContext) -> RunOnce:
    import math
    import tempfile

    from repro.exec import ResultCache, SweepExecutor
    from repro.tuning import PHASE1_EXHAUSTIVE, ConfigurationTuner

    partition = ctx.runner.partition("vgg19")
    cache_dir = tempfile.mkdtemp(prefix="fela-bench-cache-")

    def tune(executor: SweepExecutor):
        tuner = ConfigurationTuner(
            partition,
            total_batch=256,
            num_workers=8,
            profile_iterations=3,
            executor=executor,
        )
        return tuner.tune(phase1=PHASE1_EXHAUSTIVE)

    # Populate the persistent cache outside the timer: the timed body
    # measures the sweep engine's rerun path, not the cold simulations.
    with SweepExecutor(jobs=1, cache=ResultCache(cache_dir)) as warm:
        tune(warm)

    def run_once() -> ScenarioStats:
        # A fresh executor + cache per repetition so the in-process memo
        # is empty and every hit exercises the on-disk tier.
        with SweepExecutor(jobs=4, cache=ResultCache(cache_dir)) as executor:
            result = tune(executor)
        simulated = sum(
            case.per_iteration_time
            for case in result.cases
            if not math.isinf(case.per_iteration_time)
        )
        return ScenarioStats(
            simulated_seconds=simulated, events=result.warmup_iterations
        )

    return run_once


register(
    "macro.vgg19_dp",
    MACRO,
    "data-parallel baseline: vgg19, batch 256, 8 workers, 12 iterations",
)(_baseline_macro_builder("dp", "vgg19", 256, 12))

register(
    "macro.vgg19_mp",
    MACRO,
    "model-parallel baseline: vgg19, batch 256, 8 workers, 12 iterations",
)(_baseline_macro_builder("mp", "vgg19", 256, 12))

register(
    "macro.vgg19_hp",
    MACRO,
    "hybrid-parallel baseline: vgg19, batch 256, 8 workers, 12 iterations",
)(_baseline_macro_builder("hp", "vgg19", 256, 12))


# -- micro scenarios ----------------------------------------------------------


@register(
    "micro.sim_event_churn",
    MICRO,
    "event-loop churn: timeouts, process resumption, any/all conditions",
)
def _sim_event_churn(_ctx: ScenarioContext) -> RunOnce:
    from repro.sim import Environment

    def run_once() -> ScenarioStats:
        env = Environment()

        def ticker(period: float, count: int):
            for _ in range(count):
                yield env.timeout(period)

        def conditioner(count: int):
            for _ in range(count):
                yield env.any_of(
                    [env.timeout(0.002), env.timeout(0.003)]
                )
                yield env.all_of(
                    [env.timeout(0.001), env.timeout(0.002)]
                )

        for worker in range(16):
            env.process(ticker(0.001 * (worker + 1), 1500))
        for _ in range(4):
            env.process(conditioner(400))
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.fabric_transfer",
    MICRO,
    "max-min fair fabric under many overlapping flows (waterfill path)",
)
def _fabric_transfer(_ctx: ScenarioContext) -> RunOnce:
    from repro.net import Fabric
    from repro.sim import Environment

    def run_once() -> ScenarioStats:
        env = Environment()
        fabric = Fabric(env, num_nodes=8, link_bandwidth=1.25e9)

        def sender(src: int, stride: int, count: int):
            for index in range(count):
                size = 1.0e6 + 1.0e5 * ((src + index) % 7)
                yield fabric.transfer(src, (src + stride) % 8, size)

        for src in range(8):
            for stride in (1, 2, 3):
                env.process(sender(src, stride, 80))
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.fabric_sparse_flows",
    MICRO,
    "many concurrent single-pair flows: disjoint components, the "
    "incremental waterfill's restricted-solve path",
)
def _fabric_sparse_flows(_ctx: ScenarioContext) -> RunOnce:
    from repro.net import Fabric
    from repro.sim import Environment

    def run_once() -> ScenarioStats:
        env = Environment()
        num_nodes = 64
        fabric = Fabric(env, num_nodes=num_nodes, link_bandwidth=1.25e9)

        def sender(src: int, dst: int, count: int):
            for index in range(count):
                size = 1.0e6 + 1.0e5 * ((src + index) % 5)
                yield fabric.transfer(src, dst, size)

        # Every pair is its own connected component: an add/remove
        # re-solves one flow, never the other 31 pairs.  400 transfers
        # per pair lifts the repetition above the host noise floor.
        for pair in range(num_nodes // 2):
            env.process(sender(2 * pair, 2 * pair + 1, 400))
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.fabric_megacomponent",
    MICRO,
    "one ~1000-flow connected component: batched mega waterfills on "
    "the full-solve path plus single-flow add/remove churn exercising "
    "the rate-reuse proof (hits and full-solve fallbacks)",
)
def _fabric_megacomponent(_ctx: ScenarioContext) -> RunOnce:
    from repro.net import Fabric
    from repro.sim import Environment

    def run_once() -> ScenarioStats:
        env = Environment()
        num_nodes = 1024
        bandwidth = 1.25e9
        fabric = Fabric(env, num_nodes=num_nodes, link_bandwidth=bandwidth)

        # Phase 1 — mega full solves.  A zigzag ring over all nodes:
        # every even node sends to both odd neighbours, so every flow is
        # transitively coupled through shared tx/rx NICs into ONE
        # ~1000-flow component.  Whole waves land through transfer_many
        # (one solve per wave) with equal sizes, so every flow finishes
        # at the same instant (one batched removal per wave) — each wave
        # costs exactly one full waterfill of the giant component.
        ring = [
            (even, (even + delta) % num_nodes, 2.0e6)
            for even in range(0, num_nodes, 2)
            for delta in (1, -1)
        ]

        def waves(count: int):
            for _ in range(count):
                yield env.all_of(fabric.transfer_many(ring))

        env.process(waves(6))
        env.run()

        # Phase 2 — reuse churn against a standing mega component: 600
        # senders into one anchor receiver freeze in a single cascade
        # round, leaving every sender NIC nearly idle.  Short flows from
        # a sender to an idle node then satisfy the add/remove reuse
        # proof (residual capacity beats the cascade's last share), while
        # a second flow into the saturated anchor violates it and must
        # fall back to a full solve.
        anchor = num_nodes - 1
        spare = num_nodes - 2
        # Sized so the star outlasts the whole churn sequence (~1.7 sim
        # seconds): the reuse record only exists while the big standing
        # component does.
        star = [(sender, anchor, 5.0e6) for sender in range(600)]
        standing = fabric.transfer_many(star)

        def churn(count: int):
            for index in range(count):
                if index % 8 == 7:
                    # Violator: the anchor rx has zero residual capacity,
                    # so the reuse proof fails and the solver re-solves.
                    yield fabric.transfer(600 + index % 16, anchor, 1.0e5)
                else:
                    yield fabric.transfer((index * 7) % 600, spare, 1.0e6)

        env.process(churn(240))
        env.run()
        assert all(event.processed for event in standing)
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.steady_fastforward",
    MICRO,
    "watchdog-style any_of waits leave dead long-stop timeouts in the "
    "future heap; draining them is the analytical fast-forward's "
    "steady-interval path",
)
def _steady_fastforward(_ctx: ScenarioContext) -> RunOnce:
    from repro.sim import Environment

    def run_once() -> ScenarioStats:
        env = Environment()

        def watchdog(short: float, count: int):
            # The guard timeout (the watchdog) almost never fires: the
            # short event wins every race, and the loser stays queued
            # far in the future with nothing left to do when it
            # surfaces.  Exactly the "provably steady interval" shape.
            for _ in range(count):
                yield env.any_of([env.timeout(short), env.timeout(1000.0)])

        def ticker(period: float, count: int):
            # Live wakeups beyond t=1000 interleave with the dead
            # watchdog guards, splitting the drain into many intervals.
            for _ in range(count):
                yield env.timeout(period)

        for lane in range(3):
            env.process(watchdog(0.001 * (lane + 1), 12000))
        env.process(ticker(4.0, 280))
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.token_lifecycle",
    MICRO,
    "token server mint/assign/report churn without compute or fabric",
)
def _token_lifecycle(ctx: ScenarioContext) -> RunOnce:
    from repro.core import FelaConfig
    from repro.core.server import TokenServer

    partition = ctx.runner.partition("vgg19")
    # Enough iterations to lift the scenario well above the host timing
    # noise floor (sub-10ms medians swing +-20% run to run).
    iterations = 32

    def run_once() -> ScenarioStats:
        cluster = build_cluster(8)
        env = cluster.env
        config = FelaConfig(
            partition=partition,
            total_batch=512,
            num_workers=8,
            weights=(1, 2, 8),
            conditional_subset_size=4,
            iterations=iterations,
        )
        server = TokenServer(config, cluster)

        def puller(wid: int):
            while True:
                token = yield from server.request_token(wid)
                if token is None:
                    return
                yield from server.report_completion(wid, token)

        def main():
            for iteration in range(iterations):
                server.begin_iteration(iteration)
                pullers = [
                    env.process(puller(wid))
                    for wid in range(config.num_workers)
                ]
                yield env.all_of(pullers)
                server.end_iteration(iteration)

        env.process(main())
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.ring_allreduce",
    MICRO,
    "repeated 8-way ring all-reduce of a 50 MB gradient payload",
)
def _ring_allreduce(_ctx: ScenarioContext) -> RunOnce:
    from repro.core.collectives import ring_allreduce

    def run_once() -> ScenarioStats:
        cluster = build_cluster(8)
        env = cluster.env

        def main():
            for _ in range(30):
                yield from ring_allreduce(
                    cluster, list(range(8)), 5.0e7
                )

        env.process(main())
        env.run()
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.result_cache",
    MICRO,
    "result-cache churn: canonical hashing, atomic puts, memo and disk "
    "hits, misses, and corrupt-entry eviction on fixed keys",
)
def _result_cache(_ctx: ScenarioContext) -> RunOnce:
    import tempfile
    from pathlib import Path

    from repro.exec import ResultCache, canonical_key

    cache_dir = tempfile.mkdtemp(prefix="fela-bench-cache-")
    keys = [
        canonical_key("bench", {"index": index, "weights": (1, 2, index)})
        for index in range(64)
    ]

    def run_once() -> ScenarioStats:
        writer = ResultCache(cache_dir)
        writer.clear()  # every repetition starts from an empty store
        for index, key in enumerate(keys):
            writer.put(key, float(index))
            writer.get(key)  # memo hit
        reader = ResultCache(cache_dir)
        for key in keys:
            reader.get(key)  # disk hit
            reader.get(canonical_key("bench-miss", {"key": key}))  # miss
        for key in keys[::8]:
            path = Path(cache_dir) / f"{key}.json"
            path.write_text("{not json", encoding="utf-8")
            fresh = ResultCache(cache_dir)
            assert fresh.get(key) is None  # corrupt entry evicted
        return ScenarioStats(simulated_seconds=0.0, events=len(keys))

    return run_once


@register(
    "micro.object_churn",
    MICRO,
    "raw allocation of hot sim/token objects (the __slots__ ledger)",
)
def _object_churn(_ctx: ScenarioContext) -> RunOnce:
    from repro.core.tokens import SampleRange, Token
    from repro.sim import Environment
    from repro.sim.events import Event

    def run_once() -> ScenarioStats:
        env = Environment()

        def churner(count: int):
            for _ in range(count):
                Event(env)  # pending event, never scheduled
                yield env.timeout(0.0001)

        env.process(churner(15000))
        env.run()
        for index in range(30000):
            samples = SampleRange(0, 16)
            Token(
                tid=index,
                level=0,
                iteration=0,
                ordinal=index,
                samples=samples,
                deps=(),
                home_worker=index % 8,
            )
        return ScenarioStats(
            simulated_seconds=env.now,
            events=env.scheduled_events,
            events_elided=env.ff_elided,
        )

    return run_once


@register(
    "micro.flow_analysis",
    MICRO,
    "whole-program flow analysis over the repro.analysis package: "
    "fact extraction, call-graph fixed points, rule evaluation "
    "(memory-cache warm pass included)",
)
def _flow_analysis(_ctx: ScenarioContext) -> RunOnce:
    from pathlib import Path

    import repro
    from repro.analysis.flow import analyze_paths
    from repro.exec import ResultCache

    # A fixed, committed slice of the package keeps the workload
    # byte-stable across machines: the analyzer analyzing itself.
    target = Path(repro.__file__).parent / "analysis"

    def run_once() -> ScenarioStats:
        cache = ResultCache(directory=None)  # memo tier only
        cold = analyze_paths([target], cache=cache)
        warm = analyze_paths([target], cache=cache)
        assert warm.cache_misses == 0  # the memo tier must carry pass 2
        assert warm.findings == cold.findings
        return ScenarioStats(
            simulated_seconds=0.0,
            events=cold.functions + len(cold.findings),
        )

    return run_once
