"""cProfile-backed hotspot reports for benchmark scenarios.

``repro bench --profile`` runs each selected scenario once under
:mod:`cProfile` and prints the top-N functions by cumulative time, so
every optimization in this repo can point at the profile line that
motivated it.  The report is formatted from :class:`pstats.Stats`
directly (not via ``print_stats``) to keep column layout stable and the
function ordering deterministic: ties on cumulative time break on the
``file:line(function)`` label.
"""

from __future__ import annotations

import cProfile
import pstats

from repro.errors import BenchmarkError
from repro.perf.scenarios import Scenario, ScenarioContext, get_scenario

DEFAULT_TOP = 15


def _label(func: tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":
        return f"<built-in {name}>"
    # Keep paths readable: trim everything before the package root.
    for marker in ("/repro/", "/tests/", "/benchmarks/"):
        index = filename.rfind(marker)
        if index >= 0:
            filename = filename[index + 1 :]
            break
    return f"{filename}:{lineno}({name})"


def profile_scenario(
    scenario: Scenario | str,
    ctx: ScenarioContext | None = None,
    top: int = DEFAULT_TOP,
) -> str:
    """Run ``scenario`` once under cProfile; return a top-N report."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if top < 1:
        raise BenchmarkError(f"hotspot report needs top >= 1: {top}")
    ctx = ctx or ScenarioContext()
    run_once = scenario.build(ctx)

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_once()
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    total_time = stats.total_tt  # type: ignore[attr-defined]
    entries = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        entries.append((cumtime, tottime, nc, cc, _label(func)))
    entries.sort(key=lambda entry: (-entry[0], entry[4]))

    lines = [
        f"hotspots for {scenario.name} "
        f"(total {total_time:.3f}s, top {top} by cumulative time)",
        f"{'cum s':>9}  {'self s':>9}  {'calls':>9}  function",
    ]
    for cumtime, tottime, ncalls, primcalls, label in entries[:top]:
        calls = (
            str(ncalls)
            if ncalls == primcalls
            else f"{ncalls}/{primcalls}"
        )
        lines.append(
            f"{cumtime:9.3f}  {tottime:9.3f}  {calls:>9}  {label}"
        )
    return "\n".join(lines)
