"""The data-parallel (DP) baseline.

Every worker holds a complete model replica and trains
``total_batch / N`` samples per iteration on its local shard of the
training data, then all workers ring-all-reduce the full parameter set
(Gloo-style, as in the paper's PyTorch prototype).  Properties the paper's
evaluation leans on:

* communication volume is the whole model, **independent of batch size** —
  which is why DP eventually overtakes HP as the batch grows;
* when the per-worker batch exceeds GPU memory (VGG19 beyond ~32 samples
  on a 12 GB K40c, footnote 3), the worker falls back to **gradient
  accumulation**: it trains in the largest micro-batches that fit, paying
  the saturation floor repeatedly;
* under BSP every worker waits for the slowest one, so a straggler's delay
  lands on the iteration in full.
"""

from __future__ import annotations

import typing as _t

from repro.baselines.base import BaselineRuntime
from repro.core.collectives import (
    hierarchical_allreduce,
    parameter_server_sync,
    ring_allreduce,
    tree_allreduce,
)
from repro.errors import CapacityError, ConfigurationError

#: Synchronization strategies selectable on the DP baseline.  The paper's
#: prototype uses Gloo's ring; the others exist for the design-choice
#: ablation (and "ps" reproduces the FlexPS-style centralized bottleneck
#: of Table II).
SYNC_STRATEGIES: tuple[str, ...] = ("ring", "tree", "ps", "hierarchical")


class DataParallel(BaselineRuntime):
    """BSP data parallelism with configurable gradient synchronization."""

    name = "dp"

    def __init__(self, *args, sync_strategy: str = "ring", **kwargs) -> None:
        if sync_strategy not in SYNC_STRATEGIES:
            raise ConfigurationError(
                f"unknown sync strategy {sync_strategy!r}; expected one "
                f"of {SYNC_STRATEGIES}"
            )
        self.sync_strategy = sync_strategy
        super().__init__(*args, **kwargs)

    def _sync(self):
        """Process generator for one gradient synchronization."""
        workers = list(range(self.num_workers))
        size = self.model.param_bytes
        if self.sync_strategy == "ring":
            yield from ring_allreduce(self.cluster, workers, size)
        elif self.sync_strategy == "tree":
            yield from tree_allreduce(self.cluster, workers, size)
        elif self.sync_strategy == "ps":
            yield from parameter_server_sync(
                self.cluster, workers, server=0, size_bytes=size
            )
        else:  # hierarchical: split the cluster into two halves
            half = max(1, self.num_workers // 2)
            groups = [workers[:half], workers[half:]]
            groups = [group for group in groups if group]
            yield from hierarchical_allreduce(self.cluster, groups, size)

    def _validate(self) -> None:
        gpu = self.cluster.spec.gpu
        if gpu.max_batch(self.model.layers, self.model.input_floats) < 1:
            raise CapacityError(
                f"model {self.model.name!r} does not fit on the GPU even "
                "at batch 1; data parallelism is infeasible"
            )

    def accumulation_chunks(self, worker_batch: int) -> list[int]:
        """Micro-batches used to train ``worker_batch`` samples.

        One chunk if it fits; otherwise the largest fitting power-of-two
        micro-batch, repeated (gradient accumulation).
        """
        gpu = self.cluster.spec.gpu
        if gpu.fits(self.model.layers, worker_batch, self.model.input_floats):
            return [worker_batch]
        max_fit = gpu.max_batch(self.model.layers, self.model.input_floats)
        chunk = 1
        while chunk * 2 <= max_fit:
            chunk *= 2
        chunks = [chunk] * (worker_batch // chunk)
        remainder = worker_batch % chunk
        if remainder:
            chunks.append(remainder)
        return chunks

    def _iteration(self, iteration: int, delays: _t.Sequence[float]):
        env = self.cluster.env
        shares = self.split_batch(self.total_batch, self.num_workers)

        def train(wid: int):
            if delays[wid] > 0:
                yield env.timeout(delays[wid])
            seconds = sum(
                self.cluster.spec.gpu.train_time(self.model.layers, chunk)
                for chunk in self.accumulation_chunks(shares[wid])
            )
            yield from self.cluster[wid].compute(seconds)

        workers = [
            env.process(train(wid)) for wid in range(self.num_workers)
        ]
        yield env.all_of(workers)  # BSP: wait for the slowest worker
        yield from self._sync()
        return shares
