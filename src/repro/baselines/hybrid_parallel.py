"""The hybrid-parallel (HP) baseline, after Stanza (paper's reference [6]).

Layer separation: ``N - 1`` *CONV workers* run the convolutional front of
the model data-parallel on their own sample shards; one *FC worker* holds
the fully connected back.  Per iteration:

1. CONV workers forward their shard and ship the boundary activations to
   the FC worker (which is idle until they arrive — the paper's
   work-conservation critique);
2. the FC worker runs forward+backward of the FC part over the whole
   batch, then ships activation gradients back to every CONV worker;
3. CONV workers run their backward pass;
4. CONV parameters ring-all-reduce among the ``N - 1`` CONV workers; FC
   parameters never cross the network (Stanza's communication saving).

The FC worker's NIC receives/sends ``batch x boundary_bytes`` each
iteration, so it becomes a centralized bottleneck as the batch grows —
exactly why HP loses to DP at large batch sizes in Fig. 8.
"""

from __future__ import annotations

import typing as _t

from repro.baselines.base import BaselineRuntime
from repro.core.collectives import ring_allreduce
from repro.errors import ConfigurationError
from repro.models import LayerProfile
from repro.models.layers import LinearSpec


class HybridParallel(BaselineRuntime):
    """Stanza-style layer separation: N-1 CONV workers + 1 FC worker."""

    name = "hp"

    def _validate(self) -> None:
        if self.num_workers < 2:
            raise ConfigurationError(
                "hybrid parallelism needs at least 2 workers "
                "(N-1 CONV + 1 FC)"
            )
        split = self._split_index()
        if split == 0 or split == len(self.model):
            raise ConfigurationError(
                f"model {self.model.name!r} has no CONV/FC boundary; "
                "hybrid parallelism does not apply"
            )

    def _split_index(self) -> int:
        """Index of the first FC layer (the CONV/FC boundary)."""
        for profile in self.model.layers:
            if isinstance(profile.layer, LinearSpec):
                return profile.index
        return len(self.model)

    @property
    def conv_layers(self) -> list[LayerProfile]:
        return self.model.layers[: self._split_index()]

    @property
    def fc_layers(self) -> list[LayerProfile]:
        return self.model.layers[self._split_index():]

    @property
    def conv_workers(self) -> list[int]:
        return list(range(self.num_workers - 1))

    @property
    def fc_worker(self) -> int:
        return self.num_workers - 1

    @property
    def boundary_bytes_per_sample(self) -> int:
        """Bytes of boundary activation per sample (CONV out -> FC in)."""
        return self.conv_layers[-1].activation_bytes

    def _iteration(self, iteration: int, delays: _t.Sequence[float]):
        env = self.cluster.env
        gpu = self.cluster.spec.gpu
        conv_ids = self.conv_workers
        fc_id = self.fc_worker
        shares = self.split_batch(self.total_batch, len(conv_ids))

        #: Fired per CONV worker once its activations reached the FC node.
        activations_in = [env.event() for _ in conv_ids]
        #: Fired per CONV worker once its gradients arrived back.
        gradients_back = [env.event() for _ in conv_ids]

        def conv_proc(slot: int):
            wid = conv_ids[slot]
            if delays[wid] > 0:
                yield env.timeout(delays[wid])
            batch = shares[slot]
            yield from self.cluster[wid].compute(
                gpu.forward_time(self.conv_layers, batch)
            )
            yield self.cluster.fabric.transfer(
                wid, fc_id, batch * self.boundary_bytes_per_sample
            )
            activations_in[slot].succeed()
            # Idle until the FC worker returns the activation gradients —
            # the "bad work conservation" the paper measures.
            yield gradients_back[slot]
            yield from self.cluster[wid].compute(
                gpu.backward_time(self.conv_layers, batch)
            )

        def fc_proc():
            if delays[fc_id] > 0:
                yield env.timeout(delays[fc_id])
            yield env.all_of(activations_in)
            yield from self.cluster[fc_id].compute(
                gpu.train_time(self.fc_layers, self.total_batch)
            )
            returns = []
            for slot, wid in enumerate(conv_ids):
                transfer = self.cluster.fabric.transfer(
                    fc_id, wid, shares[slot] * self.boundary_bytes_per_sample
                )
                transfer.callbacks.append(
                    lambda _event, s=slot: gradients_back[s].succeed()
                )
                returns.append(transfer)
            yield env.all_of(returns)

        procs = [env.process(conv_proc(s)) for s in range(len(conv_ids))]
        procs.append(env.process(fc_proc()))
        yield env.all_of(procs)
        conv_param_bytes = sum(p.param_bytes for p in self.conv_layers)
        yield from ring_allreduce(self.cluster, conv_ids, conv_param_bytes)
        return shares + [self.total_batch]
