"""Shared machinery for the baseline runtimes (DP / MP / HP).

Each baseline drives the same simulated cluster and straggler injector as
Fela and produces the same :class:`~repro.metrics.RunResult`, so the
harness can compare average throughput (Equation 3) and per-iteration
delay (Equation 4) apples-to-apples.
"""

from __future__ import annotations

import abc
import typing as _t

from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec
from repro.metrics import IterationRecord, RunResult
from repro.models import ModelGraph
from repro.stragglers import NoStraggler, StragglerInjector


class BaselineRuntime(abc.ABC):
    """Template for a BSP baseline: per-iteration process + bookkeeping."""

    name = "baseline"

    def __init__(
        self,
        model: ModelGraph,
        total_batch: int,
        num_workers: int,
        iterations: int = 100,
        cluster: Cluster | None = None,
        straggler: StragglerInjector | None = None,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError(f"need >= 1 worker: {num_workers}")
        if total_batch < num_workers:
            raise ConfigurationError(
                f"total batch {total_batch} < {num_workers} workers"
            )
        if iterations < 1:
            raise ConfigurationError(f"need >= 1 iteration: {iterations}")
        self.model = model
        self.total_batch = total_batch
        self.num_workers = num_workers
        self.iterations = iterations
        self.cluster = cluster or Cluster(ClusterSpec(num_nodes=num_workers))
        if self.cluster.num_nodes < num_workers:
            raise ConfigurationError(
                f"cluster has {self.cluster.num_nodes} nodes for "
                f"{num_workers} workers"
            )
        self.straggler = straggler or NoStraggler()
        self._records: list[IterationRecord] = []
        self._validate()

    def _validate(self) -> None:
        """Hook: check memory feasibility etc. before running."""

    @abc.abstractmethod
    def _iteration(self, iteration: int, delays: _t.Sequence[float]):
        """Process generator for one BSP iteration.

        May return a per-worker work tuple for the iteration record.
        """

    def run(self) -> RunResult:
        env = self.cluster.env
        main = env.process(self._main())
        env.run(main)
        return RunResult(
            runtime_name=self.name,
            model_name=self.model.name,
            total_batch=self.total_batch,
            iterations=self.iterations,
            total_time=env.now,
            records=tuple(self._records),
            stats=self._stats(),
        )

    def _stats(self) -> dict[str, _t.Any]:
        return {
            "network_bytes": self.cluster.fabric.stats.bytes_transferred,
            "compute_seconds_by_worker": [
                node.busy_time for node in self.cluster
            ][: self.num_workers],
        }

    def _main(self):
        env = self.cluster.env
        for iteration in range(self.iterations):
            start = env.now
            delays = self.straggler.delays(iteration, self.num_workers)
            work = yield from self._iteration(iteration, delays)
            self._records.append(
                IterationRecord(
                    iteration=iteration,
                    start=start,
                    end=env.now,
                    work_by_worker=tuple(work or ()),
                )
            )

    @staticmethod
    def split_batch(total: int, parts: int) -> list[int]:
        """Near-even batch shares (first shards take the remainder)."""
        base, extra = divmod(total, parts)
        return [base + (1 if i < extra else 0) for i in range(parts)]
