"""Baseline runtimes: data-parallel, model-parallel, hybrid-parallel."""

from repro.baselines.base import BaselineRuntime
from repro.baselines.data_parallel import DataParallel
from repro.baselines.hybrid_parallel import HybridParallel
from repro.baselines.proactive import ProactiveElastic
from repro.baselines.model_parallel import (
    CHUNKS_PER_STAGE,
    DEFAULT_MICRO_BATCH,
    ModelParallel,
    balance_stages,
    default_micro_batch,
)

__all__ = [
    "BaselineRuntime",
    "CHUNKS_PER_STAGE",
    "DEFAULT_MICRO_BATCH",
    "DataParallel",
    "HybridParallel",
    "ModelParallel",
    "ProactiveElastic",
    "balance_stages",
    "default_micro_batch",
]
