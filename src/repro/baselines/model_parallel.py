"""The model-parallel (MP) pipeline baseline (PipeDream/GPipe-style).

The model is split into ``N`` contiguous stages balanced by training
FLOPs, one stage per worker.  Each iteration is a synchronous (BSP) flush:
all micro-batches flow forward through the pipeline, then backward in
reverse; weights update locally at the end of the flush — no cross-worker
parameter synchronization at all (each worker owns distinct layers).

The two pathologies the paper attributes to MP are both structural here:

* **bubbles / bad work conservation** — during fill and drain, most of the
  ``N`` stages are idle; with 8 workers, the majority of GPU time is idle
  time ("the majority of workers remain idle during one iteration");
* **under-saturation** — micro-batches are "small and fixed" (paper
  Section V-C1, citing GPipe), far below the per-layer threshold batch
  sizes, so every stage pays the kernel saturation floor.
"""

from __future__ import annotations

import typing as _t

from repro.baselines.base import BaselineRuntime
from repro.errors import ConfigurationError
from repro.hardware import Cluster
from repro.models import LayerProfile, ModelGraph
from repro.sim import Store
from repro.stragglers import StragglerInjector

#: The paper's MP baseline uses "small and fixed micro-batches" (citing
#: GPipe).  GPipe's guidance is ~4 micro-batches per stage, i.e. 32 chunks
#: on an 8-way pipeline; the micro-batch is the total batch over that
#: chunk count, floored at this minimum size.
DEFAULT_MICRO_BATCH: int = 4

#: GPipe's recommended chunks-per-stage factor.
CHUNKS_PER_STAGE: int = 4


def default_micro_batch(total_batch: int, num_stages: int) -> int:
    """The fixed micro-batch size the MP baseline uses by default."""
    chunks = max(1, num_stages * CHUNKS_PER_STAGE)
    return max(DEFAULT_MICRO_BATCH, total_batch // chunks)


def balance_stages(
    model: ModelGraph,
    num_stages: int,
    cost: _t.Callable[[LayerProfile], float] | None = None,
) -> list[list[LayerProfile]]:
    """Split layers into contiguous stages of near-equal ``cost``.

    Greedy cut: walk the layers accumulating cost and close a stage once
    it reaches the ideal share (total / num_stages), keeping at least one
    layer per stage and leaving enough layers for the remaining stages.
    The default cost is training FLOPs; the MP runtime balances by
    simulated per-layer *time* at its micro-batch instead, because
    saturation floors make small layers far more expensive than their
    FLOPs suggest.  The paper notes "model partition can hardly be
    balanced" — the residual imbalance of the greedy scheme is part of
    what the evaluation measures.
    """
    layers = model.layers
    if num_stages < 1:
        raise ConfigurationError(f"need >= 1 stage: {num_stages}")
    if num_stages > len(layers):
        raise ConfigurationError(
            f"{num_stages} stages exceed the {len(layers)} layers of "
            f"{model.name!r}"
        )
    if cost is None:
        cost = lambda profile: profile.train_flops  # noqa: E731
    total = sum(cost(p) for p in layers)
    ideal = total / num_stages
    stages: list[list[LayerProfile]] = []
    current: list[LayerProfile] = []
    acc = 0.0
    remaining = num_stages
    for index, profile in enumerate(layers):
        current.append(profile)
        acc += cost(profile)
        layers_left = len(layers) - index - 1
        stages_left = remaining - 1
        must_close = layers_left == stages_left
        may_close = acc >= ideal and stages_left > 0
        if stages_left > 0 and (must_close or may_close):
            stages.append(current)
            current = []
            acc = 0.0
            remaining -= 1
    if current:
        stages.append(current)
    return stages


class ModelParallel(BaselineRuntime):
    """BSP pipeline model parallelism with fixed micro-batches."""

    name = "mp"

    def __init__(
        self,
        model: ModelGraph,
        total_batch: int,
        num_workers: int,
        iterations: int = 100,
        cluster: Cluster | None = None,
        straggler: StragglerInjector | None = None,
        micro_batch: int | None = None,
    ) -> None:
        if micro_batch is None:
            micro_batch = default_micro_batch(total_batch, num_workers)
        if micro_batch < 1:
            raise ConfigurationError(f"micro batch must be >= 1: {micro_batch}")
        self.micro_batch = micro_batch
        super().__init__(
            model, total_batch, num_workers, iterations, cluster, straggler
        )
        gpu = self.cluster.spec.gpu
        self.stages = balance_stages(
            model,
            num_workers,
            cost=lambda p: gpu.layer_train_time(p, self.micro_batch),
        )

    def micro_batches(self) -> list[int]:
        """Sizes of the iteration's micro-batches (last may be smaller)."""
        full, remainder = divmod(self.total_batch, self.micro_batch)
        sizes = [self.micro_batch] * full
        if remainder:
            sizes.append(remainder)
        return sizes

    def _stage_io_bytes(self, stage: int, batch: int) -> float:
        """Bytes a stage sends downstream (fwd) per micro-batch."""
        boundary = self.stages[stage][-1]
        return batch * boundary.activation_bytes

    def _iteration(self, iteration: int, delays: _t.Sequence[float]):
        env = self.cluster.env
        gpu = self.cluster.spec.gpu
        sizes = self.micro_batches()
        num = self.num_workers
        # Per-stage inbound queues; items are (micro_index, batch).
        fwd_in: list[Store] = [Store(env) for _ in range(num)]
        bwd_in: list[Store] = [Store(env) for _ in range(num)]

        def stage_proc(stage: int):
            if delays[stage] > 0:
                yield env.timeout(delays[stage])
            layers = self.stages[stage]
            # Forward phase: process micro-batches in arrival order.
            for micro, batch in enumerate(sizes):
                if stage > 0:
                    yield fwd_in[stage].get()
                yield from self.cluster[stage].compute(
                    gpu.forward_time(layers, batch)
                )
                if stage < num - 1:
                    yield self.cluster.fabric.transfer(
                        stage, stage + 1, self._stage_io_bytes(stage, batch)
                    )
                    yield fwd_in[stage + 1].put((micro, batch))
                else:
                    # The last stage turns straight around into backward.
                    yield bwd_in[stage].put((micro, batch))
            # Backward phase: drain in re-arrival order (GPipe flush).
            for _ in sizes:
                micro, batch = yield bwd_in[stage].get()
                yield from self.cluster[stage].compute(
                    gpu.backward_time(layers, batch)
                )
                if stage > 0:
                    # Gradient w.r.t. the stage input, same size as the
                    # upstream boundary activation.
                    yield self.cluster.fabric.transfer(
                        stage,
                        stage - 1,
                        self._stage_io_bytes(stage - 1, batch),
                    )
                    yield bwd_in[stage - 1].put((micro, batch))

        procs = [env.process(stage_proc(s)) for s in range(num)]
        yield env.all_of(procs)
        return [len(sizes)] * num
