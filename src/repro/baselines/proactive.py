"""A proactive, periodically re-partitioning scheduler (ElasticPipe-like).

Section III-C argues that *proactive* straggler mitigation — a scheduler
that periodically profiles worker speeds and re-distributes workload —
reacts too late when stragglers are transient: it takes work away from
workers that have already recovered and piles it onto workers that just
became slow.  Fela's *reactive* token pull avoids this by letting workers
set their own pace.

:class:`ProactiveElastic` implements the proactive side of that argument
so it can be measured: workers get per-iteration sample quotas
proportional to the throughput the scheduler *believes* they have, and
that belief is only refreshed every ``profile_period`` iterations from
the observed durations of the previous period (exactly the
profiling-window design of FlexRR/ElasticPipe).  Everything else (model,
cluster, BSP all-reduce) matches the data-parallel baseline, so the only
difference under test is the scheduling strategy.
"""

from __future__ import annotations

import typing as _t

from repro.baselines.base import BaselineRuntime
from repro.core.collectives import ring_allreduce
from repro.errors import ConfigurationError
from repro.hardware import Cluster
from repro.models import ModelGraph
from repro.stragglers import StragglerInjector


class ProactiveElastic(BaselineRuntime):
    """BSP data-parallel training with periodic proactive re-balancing."""

    name = "proactive"

    def __init__(
        self,
        model: ModelGraph,
        total_batch: int,
        num_workers: int,
        iterations: int = 100,
        cluster: Cluster | None = None,
        straggler: StragglerInjector | None = None,
        profile_period: int = 5,
    ) -> None:
        if profile_period < 1:
            raise ConfigurationError(
                f"profile period must be >= 1: {profile_period}"
            )
        self.profile_period = profile_period
        super().__init__(
            model, total_batch, num_workers, iterations, cluster, straggler
        )
        #: The scheduler's current belief: relative worker speeds.
        self._believed_speed = [1.0] * num_workers
        #: Observations accumulated during the current profiling window:
        #: (samples, seconds) per worker.
        self._observations = [
            (0, 0.0) for _ in range(num_workers)
        ]

    # -- quota computation -------------------------------------------------------

    def quotas(self) -> list[int]:
        """Per-worker sample quotas proportional to believed speed."""
        total_speed = sum(self._believed_speed)
        raw = [
            self.total_batch * speed / total_speed
            for speed in self._believed_speed
        ]
        quotas = [int(q) for q in raw]
        # Distribute the rounding remainder to the largest fractional
        # parts, deterministically.
        remainder = self.total_batch - sum(quotas)
        order = sorted(
            range(self.num_workers),
            key=lambda w: (raw[w] - quotas[w], -w),
            reverse=True,
        )
        for w in order[:remainder]:
            quotas[w] += 1
        return quotas

    def _refresh_beliefs(self) -> None:
        """Adopt the previous window's observed speeds (the re-partition)."""
        speeds = []
        for samples, seconds in self._observations:
            if samples > 0 and seconds > 0:
                speeds.append(samples / seconds)
            else:
                speeds.append(0.0)
        if any(speed > 0 for speed in speeds):
            fallback = max(speeds)
            self._believed_speed = [
                speed if speed > 0 else fallback for speed in speeds
            ]
        self._observations = [(0, 0.0) for _ in range(self.num_workers)]

    # -- iteration ------------------------------------------------------------------

    def _iteration(self, iteration: int, delays: _t.Sequence[float]):
        env = self.cluster.env
        gpu = self.cluster.spec.gpu
        if iteration > 0 and iteration % self.profile_period == 0:
            self._refresh_beliefs()
        quotas = self.quotas()

        def train(wid: int):
            began = env.now
            if delays[wid] > 0:
                yield env.timeout(delays[wid])
            quota = quotas[wid]
            if quota > 0:
                seconds = gpu.train_time(self.model.layers, quota)
                yield from self.cluster[wid].compute(seconds)
            samples, seconds_seen = self._observations[wid]
            self._observations[wid] = (
                samples + quota,
                seconds_seen + (env.now - began),
            )

        workers = [
            env.process(train(wid)) for wid in range(self.num_workers)
        ]
        yield env.all_of(workers)
        yield from ring_allreduce(
            self.cluster,
            list(range(self.num_workers)),
            self.model.param_bytes,
        )
        return quotas
