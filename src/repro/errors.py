"""Exception hierarchy for the Fela reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly.

    Examples: running a finished environment until a never-triggered event,
    yielding a non-event from a process, or triggering an event twice.
    """


class ConfigurationError(ReproError):
    """An experiment, runtime, or hardware model was configured incorrectly."""


class CapacityError(ReproError):
    """A hardware capacity constraint was violated.

    Raised, for example, when a sub-model plus its activations for the
    requested batch size cannot fit into the simulated GPU memory.
    """


class SchedulingError(ReproError):
    """The token server or a scheduling policy reached an invalid state."""


class PartitionError(ReproError):
    """A model could not be partitioned as requested."""


class TuningError(ReproError):
    """The runtime configuration tuner was given an infeasible search space."""
