"""Exception hierarchy for the Fela reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly.

    Examples: running a finished environment until a never-triggered event,
    yielding a non-event from a process, or triggering an event twice.
    """


class ConfigurationError(ReproError):
    """An experiment, runtime, or hardware model was configured incorrectly."""


class CapacityError(ReproError):
    """A hardware capacity constraint was violated.

    Raised, for example, when a sub-model plus its activations for the
    requested batch size cannot fit into the simulated GPU memory.
    """


class SchedulingError(ReproError):
    """The token server or a scheduling policy reached an invalid state."""


class PartitionError(ReproError):
    """A model could not be partitioned as requested."""


class TuningError(ReproError):
    """The runtime configuration tuner was given an infeasible search space."""


class AnalysisError(ReproError):
    """The static-analysis tooling was invoked incorrectly."""


class ObservabilityError(ReproError):
    """The tracing/metrics subsystem was used or fed incorrectly.

    Examples: emitting events from a tracer that was never attached to a
    simulation environment, registering the same metric name with two
    different metric types, or exporting/validating a malformed trace.
    """


class CacheError(ReproError):
    """The persistent result cache was fed a value it cannot represent.

    Raised when encoding an object the exact-round-trip JSON codec does
    not cover, or when decoding a cached payload back into a result
    object fails.  Note that a *corrupt cache file* never raises: the
    strict loader evicts the entry and reports a miss, so a damaged
    cache only ever costs a recomputation.
    """


class LedgerError(ReproError):
    """The run ledger was used or fed incorrectly.

    Examples: opening a ledger file written with a different schema
    version, recording rows with missing required columns, or a
    validation pass over a ledger whose rows reference runs/sweeps
    that were never recorded.
    """


class BenchmarkError(ReproError):
    """The performance lab was used or fed incorrectly.

    Examples: requesting an unknown benchmark scenario, reading a
    missing/malformed/old-schema regression store, or a scenario whose
    repeated runs disagree (a determinism breach the runner refuses to
    average over).
    """


class InvariantViolation(ReproError):
    """A runtime invariant of the token machinery or simulator broke.

    Raised by :class:`repro.analysis.invariants.InvariantChecker` when
    token conservation, iteration hygiene, clock monotonicity, or
    gradient-sync accounting fails.  Carries a ``snapshot`` dict of the
    checker's counters at the moment of the breach;
    :meth:`serialized_snapshot` renders it as stable JSON for logs and
    bug reports.
    """

    def __init__(
        self, message: str, snapshot: dict[str, object] | None = None
    ) -> None:
        super().__init__(message)
        self.snapshot: dict[str, object] = dict(snapshot or {})

    def serialized_snapshot(self) -> str:
        import json

        return json.dumps(self.snapshot, sort_keys=True, default=repr)

    def __str__(self) -> str:
        base = super().__str__()
        if not self.snapshot:
            return base
        return f"{base} [snapshot: {self.serialized_snapshot()}]"
