"""Plain-text charts: render figure series without a plotting stack.

The benchmarks print the paper's figures as data series; these helpers
additionally draw them as ASCII charts so a terminal run of the harness
shows the curve *shapes* (the reproduction target) at a glance.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import ConfigurationError

#: Glyphs assigned to series, in order.
_SERIES_GLYPHS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.3g}"


def line_chart(
    series: _t.Mapping[str, _t.Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more (x, y) series as an ASCII scatter/line chart.

    Each series gets a glyph; overlapping points show the later series.
    ``log_x`` plots the x axis in log2 (batch-size sweeps).
    """
    if width < 16 or height < 4:
        raise ConfigurationError(
            f"chart too small: {width}x{height}"
        )
    if not series:
        raise ConfigurationError("chart needs at least one series")
    if len(series) > len(_SERIES_GLYPHS):
        raise ConfigurationError(
            f"too many series ({len(series)}); max {len(_SERIES_GLYPHS)}"
        )

    def x_of(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ConfigurationError(
                    f"log_x chart requires positive x values: {value}"
                )
            return math.log2(value)
        return value

    points = [
        (x_of(x), y)
        for data in series.values()
        for x, y in data
    ]
    if not points:
        raise ConfigurationError("chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, data) in zip(_SERIES_GLYPHS, series.items()):
        for x, y in data:
            col = int((x_of(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_top, y_bottom = _format_tick(y_hi), _format_tick(y_lo)
    margin = max(len(y_top), len(y_bottom))
    for index, row in enumerate(grid):
        if index == 0:
            label = y_top.rjust(margin)
        elif index == height - 1:
            label = y_bottom.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_left = _format_tick(2**x_lo if log_x else x_lo)
    x_right = _format_tick(2**x_hi if log_x else x_hi)
    axis = " " * margin + "  " + x_left
    axis += " " * max(1, width - len(x_left) - len(x_right)) + x_right
    lines.append(axis)
    legend = "   ".join(
        f"{glyph}={name}"
        for glyph, name in zip(_SERIES_GLYPHS, series)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: _t.Mapping[str, float],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        raise ConfigurationError("bar chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar chart values must be >= 0")
    peak = max(values.values()) or 1.0
    margin = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, int(value / peak * width))
        lines.append(
            f"{label.rjust(margin)} |{bar.ljust(width)} "
            f"{_format_tick(value)}"
        )
    return "\n".join(lines)
