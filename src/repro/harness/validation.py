"""Simulator verification: closed-form cross-checks.

A simulator is only as credible as its agreement with the arithmetic it
claims to implement.  For the simple runtimes, iteration time has a
closed form; this module computes those predictions independently of the
DES machinery so the test suite can assert that the simulation and the
algebra agree to within network-latency noise.

* Data-parallel BSP:
  ``max_w(delay_w + compute_w) + ring_allreduce(N, model_bytes)``
* Ring all-reduce: ``2 (k-1)/k * size / bandwidth`` plus per-round
  latency.
* GPipe-flush pipeline: fill + steady-state + drain over the slowest
  stage (a lower bound when transfers overlap poorly).
"""

from __future__ import annotations

import typing as _t

from repro.hardware import ClusterSpec
from repro.models import ModelGraph


def predict_ring_allreduce(
    workers: int, size_bytes: float, spec: ClusterSpec
) -> float:
    """Closed-form duration of a ring all-reduce on an idle fabric."""
    if workers <= 1 or size_bytes <= 0:
        return 0.0
    rounds = 2 * (workers - 1)
    chunk = size_bytes / workers
    per_round = chunk / spec.effective_bandwidth + spec.latency
    return rounds * per_round


def predict_dp_compute(
    model: ModelGraph, worker_batch: int, spec: ClusterSpec
) -> float:
    """Closed-form per-worker compute time of the DP baseline.

    Mirrors the gradient-accumulation logic: one pass if the batch fits,
    otherwise the largest fitting power-of-two chunk repeated.
    """
    gpu = spec.gpu
    if gpu.fits(model.layers, worker_batch, model.input_floats):
        return gpu.train_time(model.layers, worker_batch)
    max_fit = gpu.max_batch(model.layers, model.input_floats)
    chunk = 1
    while chunk * 2 <= max_fit:
        chunk *= 2
    full, remainder = divmod(worker_batch, chunk)
    seconds = full * gpu.train_time(model.layers, chunk)
    if remainder:
        seconds += gpu.train_time(model.layers, remainder)
    return seconds


def predict_dp_iteration(
    model: ModelGraph,
    total_batch: int,
    workers: int,
    spec: ClusterSpec,
    max_start_delay: float = 0.0,
) -> float:
    """Closed-form DP iteration time (uniform shards, idle network)."""
    worker_batch = -(-total_batch // workers)  # ceil: the slowest shard
    compute = predict_dp_compute(model, worker_batch, spec)
    sync = predict_ring_allreduce(workers, model.param_bytes, spec)
    return max_start_delay + compute + sync


def predict_pipeline_flush(
    stage_times: _t.Sequence[float], micro_batches: int
) -> float:
    """Lower bound for a GPipe-style flush (forward phase only shape).

    With ``S`` stages and ``M`` micro-batches, a synchronous flush takes
    at least ``(S + M - 1) * t_max`` for each of the forward and backward
    phases, where ``t_max`` is the slowest stage's per-micro-batch time.
    """
    if not stage_times or micro_batches < 1:
        return 0.0
    slowest = max(stage_times)
    stages = len(stage_times)
    return 2 * (stages + micro_batches - 1) * slowest


def relative_error(measured: float, predicted: float) -> float:
    """|measured - predicted| / predicted (0 when both are 0)."""
    if predicted == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - predicted) / predicted
