"""Unified experiment running: one entry point per runtime kind.

The harness's job is to make every figure's comparison apples-to-apples:

* all runtimes see the same model, batch, worker count and straggler
  pattern (straggler injectors are deterministic per seed+iteration);
* Fela always runs its two-phase tuned configuration, found once per
  (model, batch, workers, cluster) and cached — exactly the paper's
  warm-up protocol;
* every run starts on a fresh simulated cluster.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.baselines import (
    DataParallel,
    HybridParallel,
    ModelParallel,
    ProactiveElastic,
)
from repro.core import FelaConfig, FelaRuntime
from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec
from repro.metrics import RunResult
from repro.models import ModelGraph, get_model
from repro.partition import Partition, bin_partition, paper_partition
from repro.stragglers import NoStraggler, StragglerInjector
from repro.tuning import ConfigurationTuner, TuningResult

RUNTIME_KINDS: tuple[str, ...] = ("fela", "dp", "mp", "hp")

#: Iterations used when profiling tuning cases inside the harness.
TUNING_PROFILE_ITERATIONS: int = 3


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One workload: model + batch + cluster size + duration."""

    model_name: str
    total_batch: int
    num_workers: int = 8
    iterations: int = 100
    cluster_spec: ClusterSpec | None = None

    def resolved_cluster_spec(self) -> ClusterSpec:
        return self.cluster_spec or ClusterSpec(num_nodes=self.num_workers)


class ExperimentRunner:
    """Runs runtimes against specs, caching models/partitions/tunings."""

    def __init__(self) -> None:
        self._models: dict[str, ModelGraph] = {}
        self._partitions: dict[str, Partition] = {}
        self._tunings: dict[tuple, TuningResult] = {}

    # -- cached building blocks ---------------------------------------------

    def model(self, name: str) -> ModelGraph:
        if name not in self._models:
            self._models[name] = get_model(name)
        return self._models[name]

    def partition(self, model_name: str) -> Partition:
        """The paper's partition when published, else the bin partition."""
        if model_name not in self._partitions:
            model = self.model(model_name)
            try:
                self._partitions[model_name] = paper_partition(model)
            except Exception:
                self._partitions[model_name] = bin_partition(model)
        return self._partitions[model_name]

    def tuning(self, spec: ExperimentSpec) -> TuningResult:
        """Two-phase tuned configuration for a workload (cached)."""
        key = (
            spec.model_name,
            spec.total_batch,
            spec.num_workers,
            spec.resolved_cluster_spec(),
        )
        if key not in self._tunings:
            tuner = ConfigurationTuner(
                self.partition(spec.model_name),
                spec.total_batch,
                spec.num_workers,
                cluster_spec=spec.resolved_cluster_spec(),
                profile_iterations=TUNING_PROFILE_ITERATIONS,
            )
            self._tunings[key] = tuner.tune()
        return self._tunings[key]

    # -- running ------------------------------------------------------------------

    def fela_config(self, spec: ExperimentSpec) -> FelaConfig:
        tuning = self.tuning(spec)
        return FelaConfig(
            partition=self.partition(spec.model_name),
            total_batch=spec.total_batch,
            num_workers=spec.num_workers,
            weights=tuning.best_weights,
            conditional_subset_size=tuning.best_subset_size,
            iterations=spec.iterations,
        )

    def run(
        self,
        kind: str,
        spec: ExperimentSpec,
        straggler: StragglerInjector | None = None,
        tracer: _t.Any | None = None,
        metrics: _t.Any | None = None,
        faults: _t.Any | None = None,
        invariants: _t.Any | None = None,
        **overrides: _t.Any,
    ) -> RunResult:
        """Run one runtime kind against a spec and return its result.

        ``tracer`` / ``metrics`` (a :class:`~repro.obs.tracer.Tracer` and
        a :class:`~repro.obs.metrics.MetricsRegistry`) attach observability
        to the run; ``faults`` (a
        :class:`~repro.faults.controller.FaultController`) injects
        failures and elastic membership, and ``invariants`` (an
        :class:`~repro.analysis.invariants.InvariantChecker`) validates
        token conservation.  Only the Fela runtime supports any of them,
        so passing one with a baseline kind is a configuration error.
        """
        straggler = straggler or NoStraggler()
        cluster_spec = spec.resolved_cluster_spec()
        if kind == "fela" and faults is not None:
            # Planned joins need spare machines to land on.
            joins = faults.injector.planned_joins
            if joins > 0:
                factors = cluster_spec.gpu_speed_factors
                if factors is not None:
                    factors = factors + (1.0,) * joins
                cluster_spec = dataclasses.replace(
                    cluster_spec,
                    num_nodes=cluster_spec.num_nodes + joins,
                    gpu_speed_factors=factors,
                )
        cluster = Cluster(cluster_spec)
        model = self.model(spec.model_name)
        if kind == "fela":
            config = self.fela_config(spec)
            if overrides:
                # Apply atomically: interdependent fields (e.g. sync_mode
                # + staleness) must be validated together.
                config = config.replace(**overrides)
            return FelaRuntime(
                config,
                cluster,
                straggler=straggler,
                tracer=tracer,
                metrics=metrics,
                faults=faults,
                invariants=invariants,
            ).run()
        if (
            tracer is not None
            or metrics is not None
            or faults is not None
            or invariants is not None
        ):
            raise ConfigurationError(
                f"tracing/metrics/faults/invariants are only supported "
                f"for the 'fela' runtime, not {kind!r}"
            )
        baseline_cls = {
            "dp": DataParallel,
            "mp": ModelParallel,
            "hp": HybridParallel,
            "proactive": ProactiveElastic,
        }.get(kind)
        if baseline_cls is None:
            raise ConfigurationError(
                f"unknown runtime kind {kind!r}; expected one of "
                f"{RUNTIME_KINDS}"
            )
        return baseline_cls(
            model,
            spec.total_batch,
            spec.num_workers,
            iterations=spec.iterations,
            cluster=cluster,
            straggler=straggler,
            **overrides,
        ).run()

    def run_all(
        self,
        spec: ExperimentSpec,
        straggler: StragglerInjector | None = None,
        kinds: _t.Sequence[str] = RUNTIME_KINDS,
    ) -> dict[str, RunResult]:
        """Run every runtime kind against the same workload."""
        return {kind: self.run(kind, spec, straggler) for kind in kinds}
