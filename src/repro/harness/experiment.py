"""Unified experiment running: one entry point per runtime kind.

The harness's job is to make every figure's comparison apples-to-apples:

* all runtimes see the same model, batch, worker count and straggler
  pattern (straggler injectors are deterministic per seed+iteration);
* Fela always runs its two-phase tuned configuration, found once per
  (model, batch, workers, cluster) and cached — exactly the paper's
  warm-up protocol;
* every run starts on a fresh simulated cluster.

All simulation results flow through one :class:`~repro.exec.ResultCache`
(memory-only by default; persistent when constructed with a directory)
and one :class:`~repro.exec.SweepExecutor`, so tunings and runs are
cached content-addressed and independent runs can fan out over a
process pool (``jobs > 1``) while staying byte-identical to serial
execution.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core import FelaConfig
from repro.errors import ConfigurationError
from repro.exec import (
    ResultCache,
    RunJob,
    SweepExecutor,
    canonical_key,
    decode_tuning_result,
    describe_cluster,
    describe_partition,
    encode_tuning_result,
)
from repro.hardware import ClusterSpec
from repro.metrics import RunResult
from repro.models import ModelGraph, get_model
from repro.partition import Partition, bin_partition, paper_partition
from repro.stragglers import NoStraggler, StragglerInjector
from repro.tuning import PHASE1_EXHAUSTIVE, ConfigurationTuner, TuningResult

RUNTIME_KINDS: tuple[str, ...] = ("fela", "dp", "mp", "hp")

#: Iterations used when profiling tuning cases inside the harness.
TUNING_PROFILE_ITERATIONS: int = 3


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One workload: model + batch + cluster size + duration."""

    model_name: str
    total_batch: int
    num_workers: int = 8
    iterations: int = 100
    cluster_spec: ClusterSpec | None = None

    def resolved_cluster_spec(self) -> ClusterSpec:
        return self.cluster_spec or ClusterSpec(num_nodes=self.num_workers)


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """One run of :meth:`ExperimentRunner.run_many`'s fan-out."""

    kind: str
    spec: ExperimentSpec
    straggler: StragglerInjector | None = None
    overrides: tuple[tuple[str, _t.Any], ...] = ()


class ExperimentRunner:
    """Runs runtimes against specs, caching models/partitions/results.

    ``cache`` is the shared result cache (a fresh memory-only
    :class:`~repro.exec.ResultCache` when omitted); ``jobs`` fans
    independent simulations out over a process pool.  Passing a
    pre-built ``executor`` overrides both.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        jobs: int = 1,
        executor: SweepExecutor | None = None,
    ) -> None:
        self._models: dict[str, ModelGraph] = {}
        self._partitions: dict[str, Partition] = {}
        if executor is not None:
            self._executor = executor
            self._cache = executor.cache or ResultCache()
            if executor.cache is None:
                executor.cache = self._cache
        else:
            self._cache = cache if cache is not None else ResultCache()
            self._executor = SweepExecutor(jobs=jobs, cache=self._cache)

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def executor(self) -> SweepExecutor:
        return self._executor

    # -- cached building blocks ---------------------------------------------

    def model(self, name: str) -> ModelGraph:
        if name not in self._models:
            self._models[name] = get_model(name)
        return self._models[name]

    def partition(self, model_name: str) -> Partition:
        """The paper's partition when published, else the bin partition."""
        if model_name not in self._partitions:
            model = self.model(model_name)
            try:
                self._partitions[model_name] = paper_partition(model)
            except Exception:
                self._partitions[model_name] = bin_partition(model)
        return self._partitions[model_name]

    def tuning(self, spec: ExperimentSpec) -> TuningResult:
        """Two-phase tuned configuration for a workload (cached).

        The whole :class:`TuningResult` is cached content-addressed
        (partition + batch + workers + cluster + profile depth), so a
        persistent cache skips not just the case simulations but the
        search itself on reruns.
        """
        partition = self.partition(spec.model_name)
        cluster_spec = spec.resolved_cluster_spec()
        key = canonical_key(
            "tuning-result",
            {
                "partition": describe_partition(partition),
                "total_batch": spec.total_batch,
                "num_workers": spec.num_workers,
                "cluster": describe_cluster(cluster_spec),
                "profile_iterations": TUNING_PROFILE_ITERATIONS,
                "phase1": PHASE1_EXHAUSTIVE,
            },
        )
        cached = self._cache.get(key, decode=decode_tuning_result)
        if cached is not None:
            return cached
        tuner = ConfigurationTuner(
            partition,
            spec.total_batch,
            spec.num_workers,
            cluster_spec=cluster_spec,
            profile_iterations=TUNING_PROFILE_ITERATIONS,
            executor=self._executor,
        )
        result = tuner.tune()
        self._cache.put(key, result, encode=encode_tuning_result)
        return result

    # -- running ------------------------------------------------------------------

    def fela_config(self, spec: ExperimentSpec) -> FelaConfig:
        tuning = self.tuning(spec)
        return FelaConfig(
            partition=self.partition(spec.model_name),
            total_batch=spec.total_batch,
            num_workers=spec.num_workers,
            weights=tuning.best_weights,
            conditional_subset_size=tuning.best_subset_size,
            iterations=spec.iterations,
        )

    def _run_job(self, request: RunRequest) -> RunJob:
        """Resolve a request into a self-contained, picklable job.

        Tuning (for ``fela``) and kind validation happen here, in the
        parent process, so pool workers only ever simulate.
        """
        spec = request.spec
        straggler = request.straggler or NoStraggler()
        config: FelaConfig | None = None
        if request.kind == "fela":
            config = self.fela_config(spec)
            if request.overrides:
                # Apply atomically: interdependent fields (e.g. sync_mode
                # + staleness) must be validated together.
                config = config.replace(**dict(request.overrides))
        elif request.kind not in ("dp", "mp", "hp", "proactive"):
            raise ConfigurationError(
                f"unknown runtime kind {request.kind!r}; expected one of "
                f"{RUNTIME_KINDS}"
            )
        return RunJob(
            kind=request.kind,
            model_name=spec.model_name,
            total_batch=spec.total_batch,
            num_workers=spec.num_workers,
            iterations=spec.iterations,
            cluster_spec=spec.resolved_cluster_spec(),
            straggler=straggler,
            config=config,
            overrides=(
                () if request.kind == "fela" else tuple(request.overrides)
            ),
        )

    def run_many(
        self, requests: _t.Sequence[RunRequest]
    ) -> list[RunResult]:
        """Run many independent workloads through the sweep executor.

        Results come back in request order and are byte-identical to
        running each request serially via :meth:`run`.
        """
        return self._executor.map(
            [self._run_job(request) for request in requests]
        )

    def run(
        self,
        kind: str,
        spec: ExperimentSpec,
        straggler: StragglerInjector | None = None,
        tracer: _t.Any | None = None,
        metrics: _t.Any | None = None,
        faults: _t.Any | None = None,
        invariants: _t.Any | None = None,
        sampler: _t.Any | None = None,
        **overrides: _t.Any,
    ) -> RunResult:
        """Run one runtime kind against a spec and return its result.

        ``tracer`` / ``metrics`` (a :class:`~repro.obs.tracer.Tracer` and
        a :class:`~repro.obs.metrics.MetricsRegistry`) attach observability
        to the run; ``faults`` (a
        :class:`~repro.faults.controller.FaultController`) injects
        failures and elastic membership; ``invariants`` (an
        :class:`~repro.analysis.invariants.InvariantChecker`) validates
        token conservation; ``sampler`` (a
        :class:`~repro.obs.timeseries.Sampler`) snapshots gauge
        time-series at a fixed sim-second interval.  Only the Fela
        runtime supports any of them, so passing one with a baseline
        kind is a configuration error.  Attached runs execute
        in-process and bypass the result cache — their side channels
        (trace events, metric streams, fault controllers, sample
        streams) live outside the cached :class:`RunResult`.
        """
        straggler = straggler or NoStraggler()
        if (
            tracer is None
            and metrics is None
            and faults is None
            and invariants is None
            and sampler is None
        ):
            request = RunRequest(
                kind=kind,
                spec=spec,
                straggler=straggler,
                overrides=tuple(sorted(overrides.items())),
            )
            return self.run_many([request])[0]

        from repro.core import FelaRuntime
        from repro.hardware import Cluster

        cluster_spec = spec.resolved_cluster_spec()
        if kind == "fela" and faults is not None:
            # Planned joins need spare machines to land on.
            joins = faults.injector.planned_joins
            if joins > 0:
                factors = cluster_spec.gpu_speed_factors
                if factors is not None:
                    factors = factors + (1.0,) * joins
                cluster_spec = dataclasses.replace(
                    cluster_spec,
                    num_nodes=cluster_spec.num_nodes + joins,
                    gpu_speed_factors=factors,
                )
        if kind != "fela":
            raise ConfigurationError(
                f"tracing/metrics/faults/invariants/sampling are only "
                f"supported for the 'fela' runtime, not {kind!r}"
            )
        cluster = Cluster(cluster_spec)
        config = self.fela_config(spec)
        if overrides:
            # Apply atomically: interdependent fields (e.g. sync_mode
            # + staleness) must be validated together.
            config = config.replace(**overrides)
        return FelaRuntime(
            config,
            cluster,
            straggler=straggler,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            invariants=invariants,
            sampler=sampler,
        ).run()

    def run_all(
        self,
        spec: ExperimentSpec,
        straggler: StragglerInjector | None = None,
        kinds: _t.Sequence[str] = RUNTIME_KINDS,
    ) -> dict[str, RunResult]:
        """Run every runtime kind against the same workload."""
        results = self.run_many(
            [RunRequest(kind=kind, spec=spec, straggler=straggler)
             for kind in kinds]
        )
        return dict(zip(kinds, results))
