"""Plain-text rendering of experiment results (tables and series).

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigurationError


def render_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[_t.Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ConfigurationError("table needs headers")
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match "
                f"{len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def _format_cell(cell: _t.Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    name: str, xs: _t.Sequence[_t.Any], ys: _t.Sequence[float]
) -> str:
    """One figure series as ``name: (x, y) (x, y) ...``."""
    if len(xs) != len(ys):
        raise ConfigurationError(
            f"series {name!r}: {len(xs)} xs vs {len(ys)} ys"
        )
    points = " ".join(
        f"({x}, {_format_cell(float(y))})" for x, y in zip(xs, ys)
    )
    return f"{name}: {points}"


def format_speedup(ratio: float) -> str:
    """The paper's convention: percentages below 2x, multipliers above.

    >>> format_speedup(1.17)
    '17.0%'
    >>> format_speedup(3.23)
    '3.23x'
    """
    if ratio < 1:
        return f"-{(1 - ratio) * 100:.1f}%"
    if ratio < 2:
        return f"{(ratio - 1) * 100:.1f}%"
    return f"{ratio:.2f}x"
