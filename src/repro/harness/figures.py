"""Per-figure/table experiment generators.

One function per table and figure of the paper's evaluation.  Each
returns a small dataclass carrying the raw data plus a ``render()``
producing the rows/series the paper reports.  The ``benchmarks/``
directory wires each one into pytest-benchmark; ``examples/`` and the
EXPERIMENTS.md generator call them directly.

Default batch sweeps follow the paper's axes (64..1024 in powers of two);
the straggler figures use the paper's exact ``d`` and ``p`` grids.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.harness.experiment import (
    RUNTIME_KINDS,
    ExperimentRunner,
    ExperimentSpec,
    RunRequest,
)
from repro.harness.report import format_speedup, render_series, render_table
from repro.metrics import RunResult, per_iteration_delay
from repro.models import (
    TABLE_I,
    ConvSpec,
    LinearSpec,
    ModelGraph,
    get_model,
)
from repro.partition import bin_partition, paper_partition
from repro.profiling import ThroughputProfiler
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
)
from repro.tuning import TuningResult

#: The paper's batch-size axis for the throughput figures.
DEFAULT_BATCHES: tuple[int, ...] = (64, 128, 256, 512, 1024)

#: Straggler grids (paper Section V-C2).
VGG_DELAYS: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0)
GOOGLENET_DELAYS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)
PROBABILITIES: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
VGG_PROB_DELAY: float = 6.0
GOOGLENET_PROB_DELAY: float = 3.0

#: Batch sizes used for the straggler figures.  Chosen so that (a) the
#: iteration time is commensurate with the paper's delay grids and (b)
#: there are at least two T-1 tokens per worker — with exactly one token
#: per STB there is nothing for helpers to steal and token scheduling
#: degenerates to static assignment.
STRAGGLER_BATCH: dict[str, int] = {"vgg19": 512, "googlenet": 1024}


# ---------------------------------------------------------------------------
# Table I


@dataclasses.dataclass(frozen=True)
class TableIResult:
    rows: tuple[tuple[str, int, int, _t.Any], ...]

    def render(self) -> str:
        return render_table(
            ["Model", "Year", "Layer Number", "Zoo trainable layers"],
            list(self.rows),
            title="Table I: Growing Neural Network Layer Numbers",
        )


def table1() -> TableIResult:
    """Table I, cross-checked against the model zoo's builders."""
    rows = []
    for entry in TABLE_I:
        built = entry.builder() if entry.builder else None
        zoo_layers = len(built.trainable_layers) if built else "-"
        rows.append((entry.name, entry.year, entry.layer_number, zoo_layers))
    return TableIResult(rows=tuple(rows))


# ---------------------------------------------------------------------------
# Figure 1


@dataclasses.dataclass(frozen=True)
class Fig1Result:
    """Throughput-vs-batch sweeps for the paper's three probe layers."""

    series: tuple[tuple[str, tuple[int, ...], tuple[float, ...]], ...]
    thresholds: dict[str, int]

    def render(self) -> str:
        lines = ["Figure 1: Training throughput vs batch size (samples/s)"]
        for name, xs, ys in self.series:
            lines.append(render_series(name, xs, ys))
        lines.append(f"threshold batch sizes: {self.thresholds}")
        return "\n".join(lines)

    def render_chart(self) -> str:
        """The same data as an ASCII chart (log-x, like the paper)."""
        from repro.harness.charts import line_chart

        series = {
            name: list(zip(xs, ys)) for name, xs, ys in self.series
        }
        return line_chart(
            series,
            log_x=True,
            title="Figure 1: throughput vs batch size (log x)",
        )


def probe_layer(kind: str) -> ModelGraph:
    """Single-layer models matching the shapes of Fig. 1."""
    if kind == "conv_front":
        return ModelGraph(
            "probe-conv-front",
            (64, 224, 224),
            [ConvSpec(name="conv", out_channels=64)],
        )
    if kind == "conv_back":
        return ModelGraph(
            "probe-conv-back",
            (512, 14, 14),
            [ConvSpec(name="conv", out_channels=512)],
        )
    if kind == "fc":
        return ModelGraph(
            "probe-fc", (4096,), [LinearSpec(name="fc", out_features=4096)]
        )
    raise ValueError(f"unknown probe layer {kind!r}")


def fig1(profiler: ThroughputProfiler | None = None) -> Fig1Result:
    """Figure 1: per-shape throughput sweeps; knees at 16 / 64 / ~2048."""
    profiler = profiler or ThroughputProfiler()
    labels = {
        "conv_front": "CONV (64,64,224,224)",
        "conv_back": "CONV (512,512,14,14)",
        "fc": "FC (4096,4096)",
    }
    series = []
    thresholds = {}
    for kind, label in labels.items():
        layer = probe_layer(kind).layers[0]
        profile = profiler.profile_layer(layer)
        xs = tuple(point.batch for point in profile.sweep)
        ys = tuple(point.throughput for point in profile.sweep)
        series.append((label, xs, ys))
        thresholds[label] = profile.threshold_batch
    return Fig1Result(series=tuple(series), thresholds=thresholds)


# ---------------------------------------------------------------------------
# Figure 5


@dataclasses.dataclass(frozen=True)
class Fig5Result:
    """Per-layer thresholds of VGG19 and the resulting partitions."""

    layer_names: tuple[str, ...]
    thresholds: tuple[int, ...]
    paper_partition_desc: str
    bin_partition_desc: str

    def render(self) -> str:
        lines = ["Figure 5: Threshold batch sizes of VGG19 layers"]
        lines.append(
            render_series(
                "threshold", self.layer_names, [float(t) for t in self.thresholds]
            )
        )
        lines.append("paper partition:")
        lines.append(self.paper_partition_desc)
        lines.append("bin-partitioned method output:")
        lines.append(self.bin_partition_desc)
        return "\n".join(lines)


def fig5(profiler: ThroughputProfiler | None = None) -> Fig5Result:
    profiler = profiler or ThroughputProfiler()
    model = get_model("vgg19")
    pairs = profiler.model_thresholds(model)
    return Fig5Result(
        layer_names=tuple(p.name for p, _ in pairs),
        thresholds=tuple(t for _, t in pairs),
        paper_partition_desc=paper_partition(model, profiler).describe(),
        bin_partition_desc=bin_partition(model, profiler).describe(),
    )


# ---------------------------------------------------------------------------
# Figure 6


@dataclasses.dataclass(frozen=True)
class Fig6Result:
    """Configuration tuning diagnostics per batch size."""

    model_name: str
    tunings: dict[int, TuningResult]

    def render(self) -> str:
        lines = [f"Figure 6: Configuration tuning ({self.model_name})"]
        for batch, tuning in sorted(self.tunings.items()):
            normalized = tuning.normalized_times()
            lines.append(
                render_series(
                    f"batch {batch} normalized per-iteration time",
                    list(range(len(normalized))),
                    normalized,
                )
            )
            lines.append(
                f"  best case: weights={tuning.best_weights} "
                f"subset={tuning.best_subset_size}; gaps: "
                f"phase1={tuning.phase1_gap() * 100:.2f}% "
                f"phase2={tuning.phase2_gap() * 100:.2f}% "
                f"overall={tuning.overall_gap() * 100:.2f}%"
            )
        return "\n".join(lines)


def fig6(
    model_name: str = "vgg19",
    batches: _t.Sequence[int] = DEFAULT_BATCHES,
    runner: ExperimentRunner | None = None,
) -> Fig6Result:
    runner = runner or ExperimentRunner()
    tunings = {}
    for batch in batches:
        spec = ExperimentSpec(model_name=model_name, total_batch=batch)
        tunings[batch] = runner.tuning(spec)
    return Fig6Result(model_name=model_name, tunings=tunings)


# ---------------------------------------------------------------------------
# Figure 7 / Table III (ablation)


@dataclasses.dataclass(frozen=True)
class AblationResult:
    """AT with/without each policy, per batch size."""

    model_name: str
    batches: tuple[int, ...]
    #: policy -> batch -> (with, without) throughput.
    data: dict[str, dict[int, tuple[float, float]]]
    #: Tuning gaps standing in for the Parallelism-Degree/CTD rows of
    #: Table III (the paper takes those from Fig. 6's phases).
    tuning_gaps: dict[int, tuple[float, float]]

    def improvement(self, policy: str, batch: int) -> float:
        with_at, without_at = self.data[policy][batch]
        return with_at / without_at - 1.0

    def improvement_range(self, policy: str) -> tuple[float, float]:
        values = [self.improvement(policy, b) for b in self.batches]
        return (min(values), max(values))

    def render(self) -> str:
        lines = [
            f"Figure 7 / Table III: ablation study ({self.model_name})"
        ]
        headers = ["Policy"] + [f"b={b}" for b in self.batches] + ["Range"]
        rows = []
        for policy in sorted(self.data):
            cells: list[_t.Any] = [policy.upper()]
            for batch in self.batches:
                cells.append(f"{self.improvement(policy, batch) * 100:.2f}%")
            lo, hi = self.improvement_range(policy)
            cells.append(f"{lo * 100:.2f}%~{hi * 100:.2f}%")
            rows.append(cells)
        p1 = [self.tuning_gaps[b][0] for b in self.batches]
        p2 = [self.tuning_gaps[b][1] for b in self.batches]
        rows.append(
            ["PD-TUNING"]
            + [f"{v * 100:.2f}%" for v in p1]
            + [f"{min(p1) * 100:.2f}%~{max(p1) * 100:.2f}%"]
        )
        rows.append(
            ["CTD-TUNING"]
            + [f"{v * 100:.2f}%" for v in p2]
            + [f"{min(p2) * 100:.2f}%~{max(p2) * 100:.2f}%"]
        )
        lines.append(render_table(headers, rows))
        return "\n".join(lines)


def fig7_ablation(
    model_name: str = "vgg19",
    batches: _t.Sequence[int] = DEFAULT_BATCHES,
    iterations: int = 10,
    runner: ExperimentRunner | None = None,
) -> AblationResult:
    """Figure 7 + Table III rows for ADS and HF (and tuning gaps)."""
    runner = runner or ExperimentRunner()
    data: dict[str, dict[int, tuple[float, float]]] = {
        "ads": {},
        "hf": {},
    }
    tuning_gaps: dict[int, tuple[float, float]] = {}
    specs = [
        ExperimentSpec(
            model_name=model_name, total_batch=batch, iterations=iterations
        )
        for batch in batches
    ]
    requests = []
    for spec in specs:
        requests.append(RunRequest(kind="fela", spec=spec))
        requests.append(
            RunRequest(
                kind="fela", spec=spec,
                overrides=(("ads_enabled", False),),
            )
        )
        requests.append(
            RunRequest(
                kind="fela", spec=spec,
                overrides=(("hf_enabled", False),),
            )
        )
    outputs = runner.run_many(requests)
    for offset, (batch, spec) in enumerate(zip(batches, specs)):
        tuned, no_ads, no_hf = (
            result.average_throughput
            for result in outputs[offset * 3:offset * 3 + 3]
        )
        data["ads"][batch] = (tuned, no_ads)
        data["hf"][batch] = (tuned, no_hf)
        tuning = runner.tuning(spec)
        tuning_gaps[batch] = (tuning.phase1_gap(), tuning.phase2_gap())
    return AblationResult(
        model_name=model_name,
        batches=tuple(batches),
        data=data,
        tuning_gaps=tuning_gaps,
    )


# ---------------------------------------------------------------------------
# Figure 8 (non-straggler comparison)


@dataclasses.dataclass(frozen=True)
class ComparisonResult:
    """AT per runtime per batch (one panel of Fig. 8)."""

    model_name: str
    batches: tuple[int, ...]
    #: kind -> batch -> result.
    results: dict[str, dict[int, RunResult]]

    def throughput(self, kind: str, batch: int) -> float:
        return self.results[kind][batch].average_throughput

    def speedup(self, kind: str, batch: int) -> float:
        return self.throughput("fela", batch) / self.throughput(kind, batch)

    def speedup_range(self, kind: str) -> tuple[float, float]:
        values = [self.speedup(kind, b) for b in self.batches]
        return (min(values), max(values))

    def render(self) -> str:
        lines = [
            f"Figure 8: AT comparison, non-straggler ({self.model_name})"
        ]
        headers = ["Batch"] + [k.upper() for k in self.results]
        rows = []
        for batch in self.batches:
            rows.append(
                [batch]
                + [self.throughput(kind, batch) for kind in self.results]
            )
        lines.append(render_table(headers, rows))
        for kind in self.results:
            if kind == "fela":
                continue
            lo, hi = self.speedup_range(kind)
            lines.append(
                f"Fela vs {kind.upper()}: "
                f"{format_speedup(lo)} ~ {format_speedup(hi)}"
            )
        return "\n".join(lines)

    def render_chart(self) -> str:
        """AT-vs-batch curves as an ASCII chart (log-x)."""
        from repro.harness.charts import line_chart

        series = {
            kind.upper(): [
                (batch, self.throughput(kind, batch))
                for batch in self.batches
            ]
            for kind in self.results
        }
        return line_chart(
            series,
            log_x=True,
            title=f"Figure 8 ({self.model_name}): AT vs total batch",
        )


def fig8(
    model_name: str,
    batches: _t.Sequence[int] = DEFAULT_BATCHES,
    iterations: int = 10,
    runner: ExperimentRunner | None = None,
    kinds: _t.Sequence[str] = RUNTIME_KINDS,
) -> ComparisonResult:
    runner = runner or ExperimentRunner()
    results: dict[str, dict[int, RunResult]] = {k: {} for k in kinds}
    grid = [
        (batch, kind)
        for batch in batches
        for kind in kinds
    ]
    outputs = runner.run_many(
        [
            RunRequest(
                kind=kind,
                spec=ExperimentSpec(
                    model_name=model_name,
                    total_batch=batch,
                    iterations=iterations,
                ),
            )
            for batch, kind in grid
        ]
    )
    for (batch, kind), result in zip(grid, outputs):
        results[kind][batch] = result
    return ComparisonResult(
        model_name=model_name, batches=tuple(batches), results=results
    )


# ---------------------------------------------------------------------------
# Figures 9 and 10 (straggler scenarios)


@dataclasses.dataclass(frozen=True)
class StragglerResult:
    """AT and PID per runtime along a straggler severity axis."""

    model_name: str
    scenario: str  # "round-robin" or "probability"
    axis_name: str  # "d" or "p"
    axis: tuple[float, ...]
    #: kind -> axis value -> straggler-run result.
    results: dict[str, dict[float, RunResult]]
    #: kind -> non-straggler baseline result (for PID).
    baselines: dict[str, RunResult]

    def throughput(self, kind: str, value: float) -> float:
        return self.results[kind][value].average_throughput

    def pid(self, kind: str, value: float) -> float:
        return per_iteration_delay(
            self.results[kind][value], self.baselines[kind]
        )

    def speedup_range(self, kind: str) -> tuple[float, float]:
        values = [
            self.throughput("fela", v) / self.throughput(kind, v)
            for v in self.axis
        ]
        return (min(values), max(values))

    def pid_reduction_range(self, kind: str) -> tuple[float, float]:
        """Fela's PID saving vs a baseline, as fractions."""
        values = []
        for v in self.axis:
            base = self.pid(kind, v)
            if base > 0:
                values.append(1.0 - self.pid("fela", v) / base)
        if not values:
            return (0.0, 0.0)
        return (min(values), max(values))

    def render(self) -> str:
        lines = [
            f"{self.scenario} straggler scenario ({self.model_name}): "
            "AT (samples/s) and PID (s)"
        ]
        headers = [self.axis_name] + [
            f"{k.upper()} {metric}"
            for k in self.results
            for metric in ("AT", "PID")
        ]
        rows = []
        for value in self.axis:
            row: list[_t.Any] = [value]
            for kind in self.results:
                row.append(self.throughput(kind, value))
                row.append(self.pid(kind, value))
            rows.append(row)
        lines.append(render_table(headers, rows))
        for kind in self.results:
            if kind == "fela":
                continue
            lo, hi = self.speedup_range(kind)
            lines.append(
                f"Fela AT vs {kind.upper()}: "
                f"{format_speedup(lo)} ~ {format_speedup(hi)}"
            )
        return "\n".join(lines)


def _straggler_figure(
    model_name: str,
    scenario: str,
    axis_name: str,
    axis: _t.Sequence[float],
    make_injector: _t.Callable[[float], _t.Any],
    iterations: int,
    runner: ExperimentRunner | None,
    kinds: _t.Sequence[str],
    total_batch: int | None,
) -> StragglerResult:
    runner = runner or ExperimentRunner()
    batch = total_batch or STRAGGLER_BATCH.get(model_name, 256)
    spec = ExperimentSpec(
        model_name=model_name, total_batch=batch, iterations=iterations
    )
    requests = [
        RunRequest(kind=kind, spec=spec, straggler=NoStraggler())
        for kind in kinds
    ]
    grid = [(value, kind) for value in axis for kind in kinds]
    requests += [
        RunRequest(kind=kind, spec=spec, straggler=make_injector(value))
        for value, kind in grid
    ]
    outputs = runner.run_many(requests)
    baselines = dict(zip(kinds, outputs[: len(kinds)]))
    results: dict[str, dict[float, RunResult]] = {k: {} for k in kinds}
    for (value, kind), result in zip(grid, outputs[len(kinds):]):
        results[kind][value] = result
    return StragglerResult(
        model_name=model_name,
        scenario=scenario,
        axis_name=axis_name,
        axis=tuple(axis),
        results=results,
        baselines=baselines,
    )


def fig9(
    model_name: str,
    delays: _t.Sequence[float] | None = None,
    iterations: int = 10,
    runner: ExperimentRunner | None = None,
    kinds: _t.Sequence[str] = RUNTIME_KINDS,
    total_batch: int | None = None,
) -> StragglerResult:
    """Figure 9: round-robin straggler scenario (AT and PID)."""
    if delays is None:
        delays = (
            VGG_DELAYS if model_name == "vgg19" else GOOGLENET_DELAYS
        )
    return _straggler_figure(
        model_name,
        "round-robin",
        "d",
        delays,
        lambda d: RoundRobinStraggler(d),
        iterations,
        runner,
        kinds,
        total_batch,
    )


def fig10(
    model_name: str,
    probabilities: _t.Sequence[float] = PROBABILITIES,
    delay: float | None = None,
    iterations: int = 10,
    runner: ExperimentRunner | None = None,
    kinds: _t.Sequence[str] = RUNTIME_KINDS,
    total_batch: int | None = None,
) -> StragglerResult:
    """Figure 10: probability-based straggler scenario (AT and PID)."""
    if delay is None:
        delay = (
            VGG_PROB_DELAY if model_name == "vgg19" else GOOGLENET_PROB_DELAY
        )
    return _straggler_figure(
        model_name,
        "probability",
        "p",
        probabilities,
        lambda p: ProbabilityStraggler(p, delay),
        iterations,
        runner,
        kinds,
        total_batch,
    )
