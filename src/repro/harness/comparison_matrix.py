"""Paper Table II: qualitative comparison of representative DML solutions.

The rows are the paper's claims; the Fela row is additionally
cross-checkable against this reproduction's actual capabilities (see
``tests/harness/test_comparison_matrix.py``).
"""

from __future__ import annotations

import dataclasses

from repro.harness.report import render_table


@dataclasses.dataclass(frozen=True)
class SolutionRow:
    """One row of Table II."""

    solution: str
    parallel_mode: str
    flexible_parallelism: bool
    straggler_mitigation: bool
    communication_efficiency: bool
    work_conservation: bool
    algorithm_reproducibility: bool
    note: str = ""


TABLE_II: tuple[SolutionRow, ...] = (
    SolutionRow(
        "LazyTable", "Model-Parallel", False, True, True, True, False,
        note="SSP staleness sacrifices reproducibility",
    ),
    SolutionRow(
        "FlexRR", "Data-Parallel", False, True, False, True, False,
        note="expensive sample migration for straggler mitigation",
    ),
    SolutionRow(
        "FlexPS", "Data-Parallel", True, False, False, True, True,
        note="flexible parallelism across stages only; PS bottleneck",
    ),
    SolutionRow(
        "PipeDream", "Model-Parallel", False, False, True, False, False,
        note="pipeline bubbles; SSP variant spoils reproducibility",
    ),
    SolutionRow(
        "ElasticPipe", "Model-Parallel", False, True, True, False, True,
        note="periodic proactive re-partitioning lags transients",
    ),
    SolutionRow(
        "Stanza", "Hybrid-Parallel", False, False, True, False, True,
        note="FC worker idles at FP start / BP end",
    ),
    SolutionRow(
        "Fela", "Hybrid-Parallel", True, True, True, True, True,
        note="this reproduction",
    ),
)


def _mark(flag: bool) -> str:
    return "yes" if flag else "no"


def render_table_ii() -> str:
    """Table II as printable text."""
    headers = [
        "Solution",
        "Parallel Mode",
        "Flexible Parallelism",
        "Straggler Mitigation",
        "Comm. Efficiency",
        "Work Conservation",
        "Reproducibility",
    ]
    rows = [
        [
            row.solution,
            row.parallel_mode,
            _mark(row.flexible_parallelism),
            _mark(row.straggler_mitigation),
            _mark(row.communication_efficiency),
            _mark(row.work_conservation),
            _mark(row.algorithm_reproducibility),
        ]
        for row in TABLE_II
    ]
    return render_table(
        headers, rows, title="Table II: Comparison of DML Solutions"
    )
