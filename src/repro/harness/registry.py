"""Registry of reproducible artifacts: every table/figure, addressable.

Maps each experiment id (the paper's table/figure numbers plus this
repo's extensions) to a generator callable and the benchmark that gates
it.  ``python -m repro figures`` walks this registry to regenerate the
whole evaluation; the test suite walks it to guarantee the index stays
complete and truthful.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import repro.harness.figures as _figures
from repro.harness.comparison_matrix import render_table_ii
from repro.harness.experiment import ExperimentRunner


@dataclasses.dataclass(frozen=True)
class Artifact:
    """One regenerable artifact of the evaluation."""

    artifact_id: str
    title: str
    #: (runner, iterations) -> object with ``render() -> str`` (or str).
    generate: _t.Callable[[ExperimentRunner, int], _t.Any]
    benchmark: str
    #: Whether the artifact comes straight from the paper (vs extension).
    from_paper: bool = True


def _static(value: _t.Callable[[], _t.Any]):
    def generate(_runner: ExperimentRunner, _iterations: int):
        return value()

    return generate


REGISTRY: tuple[Artifact, ...] = (
    Artifact(
        "table1",
        "Growing neural network layer numbers",
        _static(_figures.table1),
        "bench_table1_model_zoo.py",
    ),
    Artifact(
        "fig1",
        "Training throughput vs batch size (three layer shapes)",
        _static(_figures.fig1),
        "bench_fig1_layer_throughput.py",
    ),
    Artifact(
        "table2",
        "Comparison of representative DML solutions",
        _static(render_table_ii),
        "bench_table2_comparison.py",
    ),
    Artifact(
        "fig5",
        "Threshold batch sizes of VGG19 layers + partition",
        _static(_figures.fig5),
        "bench_fig5_partition.py",
    ),
    Artifact(
        "fig6",
        "Two-phase configuration tuning",
        lambda runner, _i: _figures.fig6(runner=runner),
        "bench_fig6_tuning.py",
    ),
    Artifact(
        "fig7",
        "Ablation study (ADS / HF / tuning phases)",
        lambda runner, iterations: _figures.fig7_ablation(
            batches=(128, 512, 1024), iterations=iterations, runner=runner
        ),
        "bench_fig7_ablation.py",
    ),
    Artifact(
        "fig8-vgg19",
        "AT comparison, non-straggler (VGG19)",
        lambda runner, iterations: _figures.fig8(
            "vgg19", iterations=iterations, runner=runner
        ),
        "bench_fig8_non_straggler.py",
    ),
    Artifact(
        "fig8-googlenet",
        "AT comparison, non-straggler (GoogLeNet)",
        lambda runner, iterations: _figures.fig8(
            "googlenet", batches=(64, 256, 1024), iterations=iterations,
            runner=runner,
        ),
        "bench_fig8_non_straggler.py",
    ),
    Artifact(
        "fig9-vgg19",
        "Round-robin straggler scenario (VGG19)",
        lambda runner, iterations: _figures.fig9(
            "vgg19", iterations=iterations, runner=runner
        ),
        "bench_fig9_round_robin.py",
    ),
    Artifact(
        "fig9-googlenet",
        "Round-robin straggler scenario (GoogLeNet)",
        lambda runner, iterations: _figures.fig9(
            "googlenet", iterations=iterations, runner=runner
        ),
        "bench_fig9_round_robin.py",
    ),
    Artifact(
        "fig10-vgg19",
        "Probability-based straggler scenario (VGG19)",
        lambda runner, iterations: _figures.fig10(
            "vgg19", iterations=iterations, runner=runner
        ),
        "bench_fig10_probability.py",
    ),
    Artifact(
        "fig10-googlenet",
        "Probability-based straggler scenario (GoogLeNet)",
        lambda runner, iterations: _figures.fig10(
            "googlenet", iterations=iterations, runner=runner
        ),
        "bench_fig10_probability.py",
    ),
    Artifact(
        "ext-ssp",
        "SSP/ASP extension (Section VI sketch)",
        None,  # type: ignore[arg-type]  # bench-only artifact
        "bench_ext_ssp.py",
        from_paper=False,
    ),
    Artifact(
        "ext-transient",
        "Reactive vs proactive under transient stragglers (III-C)",
        None,  # type: ignore[arg-type]
        "bench_ext_transient.py",
        from_paper=False,
    ),
    Artifact(
        "ext-pipelined",
        "Token-level iteration pipelining (full Section-VI extension)",
        None,  # type: ignore[arg-type]
        "bench_ext_ssp.py",
        from_paper=False,
    ),
    Artifact(
        "ext-convergence",
        "Speed-quality product for BSP/SSP/ASP",
        None,  # type: ignore[arg-type]
        "bench_ext_convergence.py",
        from_paper=False,
    ),
    Artifact(
        "ext-collectives",
        "Gradient-synchronization collectives ablation",
        None,  # type: ignore[arg-type]
        "bench_ablation_collectives.py",
        from_paper=False,
    ),
    Artifact(
        "ext-network-trend",
        "Compute/network trend of Section II-A",
        None,  # type: ignore[arg-type]
        "bench_ext_network_trend.py",
        from_paper=False,
    ),
    Artifact(
        "ext-scalability",
        "Strong scaling over cluster size",
        None,  # type: ignore[arg-type]
        "bench_ext_scalability.py",
        from_paper=False,
    ),
    Artifact(
        "ext-bandwidth",
        "Sensitivity to network bandwidth",
        None,  # type: ignore[arg-type]
        "bench_ext_bandwidth.py",
        from_paper=False,
    ),
)


def paper_artifacts() -> list[Artifact]:
    """Artifacts that correspond to published tables/figures."""
    return [a for a in REGISTRY if a.from_paper]


def get_artifact(artifact_id: str) -> Artifact:
    for artifact in REGISTRY:
        if artifact.artifact_id == artifact_id:
            return artifact
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"unknown artifact {artifact_id!r}; known: "
        f"{[a.artifact_id for a in REGISTRY]}"
    )


def generate_artifact(
    artifact_id: str,
    runner: ExperimentRunner | None = None,
    iterations: int = 8,
) -> str:
    """Regenerate one artifact and return its rendered text."""
    artifact = get_artifact(artifact_id)
    if artifact.generate is None:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"artifact {artifact_id!r} is benchmark-only; run "
            f"pytest benchmarks/{artifact.benchmark}"
        )
    runner = runner or ExperimentRunner()
    result = artifact.generate(runner, iterations)
    if isinstance(result, str):
        return result
    return result.render()


def generate_artifacts(
    artifact_ids: _t.Sequence[str],
    runner: ExperimentRunner | None = None,
    iterations: int = 8,
) -> list[str]:
    """Regenerate several artifacts, fanning out when the runner can.

    With ``jobs > 1`` each artifact regenerates in its own pool worker
    (an :class:`~repro.exec.ArtifactJob`); workers share the runner's
    *persistent* cache directory, so the underlying simulations are
    still computed only once across the fleet.  Serial runners keep the
    in-process path (and its memo).  Output order always matches
    ``artifact_ids``.
    """
    for artifact_id in artifact_ids:
        artifact = get_artifact(artifact_id)  # fail fast on typos
        if artifact.generate is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"artifact {artifact_id!r} is benchmark-only; run "
                f"pytest benchmarks/{artifact.benchmark}"
            )
    runner = runner or ExperimentRunner()
    if runner.executor.jobs > 1 and len(artifact_ids) > 1:
        from repro.exec import ArtifactJob

        cache_dir = (
            str(runner.cache.directory)
            if runner.cache.directory is not None
            else None
        )
        return runner.executor.map(
            [
                ArtifactJob(
                    artifact_id=artifact_id,
                    iterations=iterations,
                    cache_dir=cache_dir,
                )
                for artifact_id in artifact_ids
            ]
        )
    return [
        generate_artifact(
            artifact_id, runner=runner, iterations=iterations
        )
        for artifact_id in artifact_ids
    ]
