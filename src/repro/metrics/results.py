"""Run results and the paper's evaluation metrics.

* **Average throughput** (Equation 3)::

      AT = total_batch_size * iter_n / total_time

* **Per-iteration delay** (Equation 4)::

      PID = (total_time_straggler - total_time_non_straggler) / iter_n
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class IterationRecord:
    """Timing of one training iteration."""

    iteration: int
    start: float
    end: float
    #: Tokens (or micro-batches) computed per worker this iteration; the
    #: load-balance signal the elastic tuning argument is about.
    work_by_worker: tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one complete training run."""

    runtime_name: str
    model_name: str
    total_batch: int
    iterations: int
    total_time: float
    records: tuple[IterationRecord, ...]
    #: Free-form runtime statistics (conflicts, bytes moved, ...).
    stats: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_time <= 0:
            raise ConfigurationError(
                f"run produced non-positive total time: {self.total_time}"
            )
        if len(self.records) != self.iterations:
            raise ConfigurationError(
                f"{self.iterations} iterations but "
                f"{len(self.records)} records"
            )

    @property
    def average_throughput(self) -> float:
        """Equation 3, in samples per second."""
        return average_throughput(
            self.total_batch, self.iterations, self.total_time
        )

    @property
    def mean_iteration_time(self) -> float:
        return self.total_time / self.iterations

    def iteration_times(self) -> list[float]:
        return [record.duration for record in self.records]

    def describe(self) -> str:
        """Multi-line human-readable summary of the run."""
        lines = [
            f"{self.runtime_name} on {self.model_name}: "
            f"batch {self.total_batch} x {self.iterations} iterations",
            f"  total time        {self.total_time:.3f} s",
            f"  avg throughput    {self.average_throughput:.1f} samples/s"
            " (Eq. 3)",
            f"  s/iteration       {self.mean_iteration_time:.3f}"
            f" (min {min(self.iteration_times()):.3f},"
            f" max {max(self.iteration_times()):.3f})",
        ]
        compute = self.stats.get("compute_seconds_by_worker")
        if compute:
            busiest = max(compute)
            lines.append(
                f"  GPU busy          max {busiest:.1f} s"
                f" ({busiest / self.total_time:.0%} of wall)"
            )
        network = self.stats.get("network_bytes")
        if network is not None:
            lines.append(
                f"  network           {network / 1e9:.2f} GB moved"
            )
        conflicts = self.stats.get("ts_conflicts")
        if conflicts is not None:
            lines.append(
                f"  TS                {self.stats.get('ts_requests', 0)}"
                f" requests, {conflicts} fetching conflicts"
            )
        work = self.records[-1].work_by_worker if self.records else ()
        if work:
            lines.append(f"  work (last iter)  {list(work)}")
        return "\n".join(lines)


def average_throughput(
    total_batch: int, iterations: int, total_time: float
) -> float:
    """Equation 3: ``AT = total_batch * iter_n / total_time``."""
    if total_time <= 0:
        raise ConfigurationError(f"total_time must be > 0: {total_time}")
    if total_batch < 1 or iterations < 1:
        raise ConfigurationError(
            f"batch ({total_batch}) and iterations ({iterations}) "
            "must be >= 1"
        )
    return total_batch * iterations / total_time


def per_iteration_delay(
    straggler_result: "RunResult", baseline_result: "RunResult"
) -> float:
    """Equation 4: mean extra time per iteration caused by stragglers.

    ``baseline_result`` must be the same runtime and workload run without
    straggler injection.
    """
    if straggler_result.iterations != baseline_result.iterations:
        raise ConfigurationError(
            "PID requires equal iteration counts: "
            f"{straggler_result.iterations} vs {baseline_result.iterations}"
        )
    return (
        straggler_result.total_time - baseline_result.total_time
    ) / straggler_result.iterations
