"""Metrics: the paper's evaluation quantities (Equations 3 and 4)."""

from repro.metrics.results import (
    IterationRecord,
    RunResult,
    average_throughput,
    per_iteration_delay,
)
from repro.metrics.timeline import (
    KIND_COMPUTE,
    KIND_FETCH,
    Span,
    TimelineRecorder,
)

__all__ = [
    "IterationRecord",
    "KIND_COMPUTE",
    "KIND_FETCH",
    "RunResult",
    "Span",
    "TimelineRecorder",
    "average_throughput",
    "per_iteration_delay",
]
