"""Execution timelines: per-worker activity traces and a text Gantt view.

The paper's load-balance story ("faster workers ... earn more workload to
compute") is best seen on a timeline.  A :class:`TimelineRecorder` can be
attached to a :class:`~repro.core.runtime.FelaRuntime`; workers then log
every input fetch and every token computation, and the recorder can
answer utilization questions and render a Gantt chart in plain text.
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t

from repro.errors import ConfigurationError

#: Activity categories recorded by the runtime.
KIND_COMPUTE = "compute"
KIND_FETCH = "fetch"
KIND_IDLE = "idle"

_GANTT_GLYPHS = {KIND_COMPUTE: "#", KIND_FETCH: "~"}


@dataclasses.dataclass(frozen=True)
class Span:
    """One contiguous activity interval on one worker."""

    worker: int
    kind: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"span ends before it starts: [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class TimelineRecorder:
    """Collects :class:`Span` records and summarizes them."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(
        self,
        worker: int,
        kind: str,
        start: float,
        end: float,
        label: str = "",
    ) -> None:
        self._spans.append(Span(worker, kind, start, end, label))

    def ingest(self, events: _t.Iterable[_t.Any]) -> None:
        """Replay compute/fetch spans from a trace-event stream.

        ``events`` is a sequence of :class:`~repro.obs.events.TraceEvent`
        (a :class:`~repro.obs.tracer.Tracer`'s ``events``); the runtime
        calls this after a run so the timeline is a view of the same
        trace stream the exporters consume.
        """
        # Imported lazily: repro.metrics must stay importable without
        # dragging in the obs exporters (which import it back for types).
        from repro.obs.exporters import timeline_spans

        for worker, kind, start, end, label in timeline_spans(events):
            self.record(worker, kind, start, end, label)

    @classmethod
    def from_trace(cls, events: _t.Iterable[_t.Any]) -> "TimelineRecorder":
        """Build a recorder directly from a trace-event stream."""
        recorder = cls()
        recorder.ingest(events)
        return recorder

    # -- queries -----------------------------------------------------------------

    def spans(
        self, worker: int | None = None, kind: str | None = None
    ) -> list[Span]:
        """Recorded spans, optionally filtered."""
        return [
            span
            for span in self._spans
            if (worker is None or span.worker == worker)
            and (kind is None or span.kind == kind)
        ]

    def workers(self) -> list[int]:
        return sorted({span.worker for span in self._spans})

    def end_time(self) -> float:
        return max((span.end for span in self._spans), default=0.0)

    def busy_time(self, worker: int, kind: str = KIND_COMPUTE) -> float:
        return sum(span.duration for span in self.spans(worker, kind))

    def busy_fraction(self, worker: int, kind: str = KIND_COMPUTE) -> float:
        """Fraction of the trace duration the worker spent on ``kind``."""
        horizon = self.end_time()
        if horizon <= 0:
            return 0.0
        return self.busy_time(worker, kind) / horizon

    def load_imbalance(self) -> float:
        """Coefficient of variation of per-worker compute time.

        0 = perfectly balanced.  The paper's elastic-tuning claim is that
        Fela keeps this low even under stragglers.
        """
        workers = self.workers()
        if len(workers) < 2:
            return 0.0
        times = [self.busy_time(worker) for worker in workers]
        mean = statistics.mean(times)
        if mean == 0:
            return 0.0
        return statistics.pstdev(times) / mean

    # -- rendering ---------------------------------------------------------------

    def render_gantt(self, width: int = 78) -> str:
        """ASCII Gantt chart: one row per worker.

        ``#`` marks computation, ``~`` input fetches, ``.`` idle time.
        """
        if width < 10:
            raise ConfigurationError(f"gantt width too small: {width}")
        horizon = self.end_time()
        if horizon <= 0:
            return "(empty timeline)"
        scale = width / horizon
        lines = [
            f"t = 0 .. {horizon:.3f}s  ('#' compute, '~' fetch, '.' idle)"
        ]
        for worker in self.workers():
            row = ["."] * width
            for span in self.spans(worker):
                glyph = _GANTT_GLYPHS.get(span.kind)
                if glyph is None:
                    continue
                first = min(width - 1, int(span.start * scale))
                last = min(width - 1, int(span.end * scale) - 1)
                if last < first:
                    # A span shorter than one cell still paints one cell:
                    # dropping it entirely would hide short fetches (and
                    # whole fast tokens) from the chart.
                    last = first
                for cell in range(first, last + 1):
                    # Compute wins over fetch when spans round onto the
                    # same cell.
                    if row[cell] == "." or glyph == "#":
                        row[cell] = glyph
            lines.append(f"W{worker}: {''.join(row)}")
        return "\n".join(lines)
