"""Deterministic parallel sweep engine (executor + persistent cache).

The one sanctioned fan-out point of the package: independent,
fully-seeded simulation jobs (:mod:`repro.exec.jobs`) run through a
:class:`SweepExecutor` (:mod:`repro.exec.executor`) over an optional
content-addressed :class:`ResultCache` (:mod:`repro.exec.cache`), with
exact-round-trip JSON codecs (:mod:`repro.exec.codec`) keeping cached
reruns byte-identical to fresh simulations.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA,
    ResultCache,
    canonical_key,
    default_cache_dir,
)
from repro.exec.codec import (
    decode_run_result,
    decode_tuning_result,
    decode_value,
    encode_run_result,
    encode_tuning_result,
    encode_value,
)
from repro.exec.executor import SweepExecutor, resolve_jobs
from repro.exec.jobs import (
    ArtifactJob,
    BenchJob,
    JobSpec,
    RunJob,
    TuningCaseJob,
    describe_cluster,
    describe_config,
    describe_partition,
    describe_straggler,
    execute_job,
)

__all__ = [
    "ArtifactJob",
    "BenchJob",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "JobSpec",
    "ResultCache",
    "RunJob",
    "SweepExecutor",
    "TuningCaseJob",
    "canonical_key",
    "decode_run_result",
    "decode_tuning_result",
    "decode_value",
    "default_cache_dir",
    "describe_cluster",
    "describe_config",
    "describe_partition",
    "describe_straggler",
    "encode_run_result",
    "encode_tuning_result",
    "encode_value",
    "execute_job",
    "resolve_jobs",
]
