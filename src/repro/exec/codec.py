"""Exact-round-trip JSON codecs for cached simulation results.

The persistent result cache stores simulation outputs as JSON.  Byte
identity between a cached rerun and a fresh simulation hinges on two
properties of the encoding:

* **Floats survive exactly.**  ``json`` serializes floats via
  ``repr`` (the shortest round-tripping form) and parses them back with
  ``float()``, so every finite value — and ``inf``, which marks
  infeasible tuning cases — round-trips bit-for-bit.
* **Container shapes survive exactly.**  Plain JSON forgets the
  difference between tuples and lists and coerces non-string dict keys,
  so both are wrapped in tagged objects (``{"__tuple__": [...]}`` and
  ``{"__items__": [[k, v], ...]}``) and unwrapped on decode.

Anything outside ``None``/bool/int/float/str and the containers above
raises :class:`~repro.errors.CacheError` — the caller then simply skips
caching that value rather than storing a lossy approximation.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CacheError

#: Wrapper key marking an encoded tuple.
TUPLE_TAG = "__tuple__"
#: Wrapper key marking a dict whose keys are not plain strings (or
#: whose string keys collide with one of these tags).
ITEMS_TAG = "__items__"

_TAGS = (TUPLE_TAG, ITEMS_TAG)


def encode_value(value: _t.Any) -> _t.Any:
    """Encode a value into JSON-safe form; exact round trip guaranteed."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        plain_keys = all(
            isinstance(key, str) for key in value
        ) and not any(tag in value for tag in _TAGS)
        if plain_keys:
            return {key: encode_value(item) for key, item in value.items()}
        return {
            ITEMS_TAG: [
                [encode_value(key), encode_value(item)]
                for key, item in value.items()
            ]
        }
    raise CacheError(
        f"cannot encode {type(value).__name__} for the result cache"
    )


def decode_value(payload: _t.Any) -> _t.Any:
    """Invert :func:`encode_value`."""
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return payload
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if isinstance(payload, dict):
        if set(payload) == {TUPLE_TAG}:
            return tuple(
                decode_value(item) for item in payload[TUPLE_TAG]
            )
        if set(payload) == {ITEMS_TAG}:
            return {
                decode_value(key): decode_value(item)
                for key, item in payload[ITEMS_TAG]
            }
        return {key: decode_value(item) for key, item in payload.items()}
    raise CacheError(
        f"cannot decode {type(payload).__name__} from the result cache"
    )


# -- result-object codecs -----------------------------------------------------
#
# The decode halves import their result classes lazily: repro.tuning and
# repro.harness build on repro.exec, so importing them at module scope
# would be circular.


def encode_tuning_result(result: _t.Any) -> dict[str, _t.Any]:
    """A :class:`~repro.tuning.TuningResult` as a JSON-safe payload."""
    return {
        "cases": [
            {
                "index": case.index,
                "phase": case.phase,
                "weights": list(case.weights),
                "subset_size": case.subset_size,
                "per_iteration_time": case.per_iteration_time,
            }
            for case in result.cases
        ],
        "best_weights": list(result.best_weights),
        "best_subset_size": result.best_subset_size,
        "warmup_iterations": result.warmup_iterations,
        "cases_profiled": result.cases_profiled,
        "cases_pruned": result.cases_pruned,
        "cache_hits": result.cache_hits,
        "wall_seconds": result.wall_seconds,
    }


def decode_tuning_result(payload: _t.Any) -> _t.Any:
    """Rebuild a :class:`~repro.tuning.TuningResult`; strict."""
    from repro.tuning import TuningCase, TuningResult

    try:
        return TuningResult(
            cases=tuple(
                TuningCase(
                    index=int(case["index"]),
                    phase=int(case["phase"]),
                    weights=tuple(int(w) for w in case["weights"]),
                    subset_size=int(case["subset_size"]),
                    per_iteration_time=float(case["per_iteration_time"]),
                )
                for case in payload["cases"]
            ),
            best_weights=tuple(int(w) for w in payload["best_weights"]),
            best_subset_size=int(payload["best_subset_size"]),
            warmup_iterations=int(payload["warmup_iterations"]),
            cases_profiled=int(payload["cases_profiled"]),
            cases_pruned=int(payload["cases_pruned"]),
            cache_hits=int(payload["cache_hits"]),
            wall_seconds=float(payload["wall_seconds"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(
            f"malformed cached tuning result: {exc!r}"
        ) from None


def encode_run_result(result: _t.Any) -> dict[str, _t.Any]:
    """A :class:`~repro.metrics.RunResult` as a JSON-safe payload."""
    return {
        "runtime_name": result.runtime_name,
        "model_name": result.model_name,
        "total_batch": result.total_batch,
        "iterations": result.iterations,
        "total_time": result.total_time,
        "records": [
            {
                "iteration": record.iteration,
                "start": record.start,
                "end": record.end,
                "work_by_worker": list(record.work_by_worker),
            }
            for record in result.records
        ],
        "stats": encode_value(result.stats),
    }


def decode_run_result(payload: _t.Any) -> _t.Any:
    """Rebuild a :class:`~repro.metrics.RunResult`; strict."""
    from repro.metrics import IterationRecord, RunResult

    try:
        return RunResult(
            runtime_name=str(payload["runtime_name"]),
            model_name=str(payload["model_name"]),
            total_batch=int(payload["total_batch"]),
            iterations=int(payload["iterations"]),
            total_time=float(payload["total_time"]),
            records=tuple(
                IterationRecord(
                    iteration=int(record["iteration"]),
                    start=float(record["start"]),
                    end=float(record["end"]),
                    work_by_worker=tuple(
                        int(work) for work in record["work_by_worker"]
                    ),
                )
                for record in payload["records"]
            ),
            stats=decode_value(payload["stats"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(
            f"malformed cached run result: {exc!r}"
        ) from None
