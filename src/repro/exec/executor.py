"""The deterministic parallel sweep executor.

``SweepExecutor.map`` takes an ordered list of :class:`JobSpec`s and
returns their results *in job order*, regardless of which worker
finished first — so a parallel sweep is byte-identical to the serial
one.  Per job it consults the (optional) content-addressed
:class:`~repro.exec.cache.ResultCache` first; only misses execute, and
fresh results are stored back for the next invocation.

With ``jobs=1`` (the default) everything runs in-process — no pool, no
pickling, no spawn cost.  With ``jobs>1`` a spawn-context
``ProcessPoolExecutor`` is created lazily on the first parallel ``map``
and reused for the executor's lifetime.  Spawn (not fork) keeps workers
importable and state-free on every platform; if the pool breaks (e.g. a
sandbox forbids subprocesses) the executor falls back to in-process
execution with a warning rather than failing the sweep.

This module is the only place in the package allowed to touch
``concurrent.futures``/``multiprocessing`` — lint rule FELA006 enforces
that every fan-out goes through here.
"""

from __future__ import annotations

import os
import sys
import time
import typing as _t
import warnings

from repro.errors import CacheError, ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.jobs import JobSpec, execute_job

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.store.ledger import RunLedger


def _timed_execute(job: JobSpec) -> tuple[_t.Any, float]:
    """Run one job and measure its wall time (picklable for the pool)."""
    started = time.perf_counter()
    value = execute_job(job)
    return value, time.perf_counter() - started


def resolve_jobs(requested: int) -> tuple[int, str | None]:
    """Clamp a ``--jobs`` request to the host's CPU count.

    Returns ``(effective_jobs, warning_or_None)``; the CLI prints the
    warning so oversubscription is visible instead of silent.
    """
    if requested < 1:
        raise ConfigurationError(f"--jobs must be >= 1: {requested}")
    available = os.cpu_count() or 1
    if requested > available:
        return available, (
            f"--jobs {requested} exceeds the {available} available "
            f"CPU(s); capping at {available}"
        )
    return requested, None


class SweepExecutor:
    """Cache-aware fan-out of independent simulation jobs."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        ledger: "RunLedger | None" = None,
        sweep_label: str = "sweep",
        progress: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Optional :class:`~repro.store.ledger.RunLedger` receiving
        #: per-job heartbeat rows (started / done / cached), so long
        #: sweeps are observable from the ledger while still running.
        self.ledger = ledger
        self.sweep_label = sweep_label
        #: Opt-in per-job progress lines on *stderr* — stdout stays
        #: byte-identical to a silent serial sweep.
        self.progress = progress
        self.cache_hits = 0
        self.jobs_executed = 0
        self._pool: _t.Any = None

    # -- the one public operation ---------------------------------------------

    def map(self, jobs: _t.Sequence[JobSpec]) -> list[_t.Any]:
        """Run ``jobs``; results come back in job order.

        Heartbeats (when a ledger is attached) and ``progress`` lines
        (stderr) land in job-index order in both serial and parallel
        mode, so the observable side channel is deterministic too.
        """
        results: dict[int, _t.Any] = {}
        pending: list[tuple[int, JobSpec, str | None]] = []
        total = len(jobs)
        sweep_id: int | None = None
        if self.ledger is not None and total:
            sweep_id = self.ledger.start_sweep(
                label=self.sweep_label, total_jobs=total
            )
        completed = 0
        for index, job in enumerate(jobs):
            key = job.cache_key() if self.cache is not None else None
            if key is not None:
                assert self.cache is not None
                value = self.cache.get(key, decode=job.decode_result)
                if value is not None:
                    results[index] = value
                    self.cache_hits += 1
                    completed += 1
                    if sweep_id is not None:
                        assert self.ledger is not None
                        self.ledger.record_sweep_job(
                            sweep_id,
                            index=index,
                            kind=type(job).__name__,
                            status="cached",
                            cache_hit=True,
                        )
                    if self.progress:
                        self._progress_line(
                            completed, total, index, job, cached=True
                        )
                    continue
            pending.append((index, job, key))
        if pending:
            if sweep_id is not None:
                assert self.ledger is not None
                for index, job, _ in pending:
                    self.ledger.record_sweep_job(
                        sweep_id,
                        index=index,
                        kind=type(job).__name__,
                        status="started",
                    )
            values = self._execute([job for _, job, _ in pending])
            for (index, job, key), (value, elapsed) in zip(
                pending, values
            ):
                results[index] = value
                self.jobs_executed += 1
                completed += 1
                if key is not None:
                    assert self.cache is not None
                    try:
                        self.cache.put(
                            key, value, encode=job.encode_result
                        )
                    except CacheError:
                        # A result the codec cannot represent simply
                        # stays uncached; the sweep's output is the
                        # same either way.
                        pass
                if sweep_id is not None:
                    assert self.ledger is not None
                    self.ledger.record_sweep_job(
                        sweep_id,
                        index=index,
                        kind=type(job).__name__,
                        status="done",
                        elapsed_wall=elapsed,
                    )
                if self.progress:
                    self._progress_line(
                        completed, total, index, job, elapsed=elapsed
                    )
        return [results[index] for index in range(len(jobs))]

    def _progress_line(
        self,
        completed: int,
        total: int,
        index: int,
        job: JobSpec,
        cached: bool = False,
        elapsed: float = 0.0,
    ) -> None:
        detail = (
            "cache hit" if cached else f"done in {elapsed:.2f}s"
        )
        print(
            f"[{completed}/{total}] {type(job).__name__} #{index} "
            f"{detail} ({self.cache_hits} cache hits)",
            file=sys.stderr,
        )

    # -- execution backends ---------------------------------------------------

    def _execute(
        self, jobs: _t.Sequence[JobSpec]
    ) -> list[tuple[_t.Any, float]]:
        """Run jobs, returning ``(result, wall_seconds)`` per job."""
        if self.jobs == 1 or len(jobs) == 1:
            return [_timed_execute(job) for job in jobs]
        from concurrent.futures.process import BrokenProcessPool

        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_timed_execute, job) for job in jobs]
            return [future.result() for future in futures]
        except BrokenProcessPool:
            self.close()
            warnings.warn(
                "process pool broke; re-running this sweep in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            return [_timed_execute(job) for job in jobs]

    def _ensure_pool(self) -> _t.Any:
        if self._pool is None:
            import concurrent.futures
            import multiprocessing

            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._pool

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *_exc: object) -> bool:
        self.close()
        return False
