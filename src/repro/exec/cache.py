"""The content-addressed persistent result cache.

Simulation results are pure functions of their inputs, so they are
cached under a :func:`canonical_key`: the SHA-256 of a canonical JSON
document covering *everything* the result depends on (model layers,
partition, full ``FelaConfig``, cluster spec, straggler seed/params)
plus a schema-version salt.  Changing any input — or bumping
:data:`CACHE_SCHEMA` after a semantics change — changes the key, so a
stale entry can never be returned for a new computation.

Robustness contract:

* **Writes are atomic.**  Entries are written to a temp file in the
  cache directory and ``os.replace``-d into place, so concurrent
  writers (two pool workers computing the same key) cannot tear an
  entry — the last full write wins and both are identical anyway.
* **Reads are strict but never fatal.**  Corrupted JSON, truncated
  files, a stale schema version, or a stored key that does not match
  the requested hash (a collision or a renamed file) all *evict* the
  entry and report a miss; the caller recomputes.  A damaged cache
  costs time, never correctness.

``ResultCache(None)`` is a memory-only cache (the in-process memo
without the disk tier): the default for library use, so tests and
one-shot scripts do not touch the filesystem.  The memo also guarantees
that two lookups of the same key in one process return the *same
object*, preserving identity-based caching semantics for callers.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import typing as _t

from repro.errors import CacheError
from repro.exec.codec import encode_value

#: Salt baked into every key and entry envelope.  Bump on any change to
#: the simulation semantics or the cached payload layout: old entries
#: then mismatch and are evicted instead of silently resurfacing.
CACHE_SCHEMA = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/fela-repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override).expanduser()
    return pathlib.Path.home() / ".cache" / "fela-repro"


def canonical_key(kind: str, payload: _t.Any) -> str:
    """Content hash of a result's full input description.

    ``kind`` namespaces result families (``"tuning-case"``, ``"run"``,
    ``"tuning-result"``) so structurally similar payloads of different
    meanings can never alias.
    """
    document = json.dumps(
        {
            "kind": kind,
            "schema": CACHE_SCHEMA,
            "payload": encode_value(payload),
        },
        sort_keys=True,
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


class ResultCache:
    """Two-tier (memo + optional disk) cache of simulation results.

    Values must never be ``None`` — ``None`` is the miss marker.
    ``decode``/``encode`` hooks translate between result objects and
    JSON-safe payloads (see :mod:`repro.exec.codec`); without them the
    payload itself is stored/returned.
    """

    def __init__(
        self, directory: str | os.PathLike[str] | None = None
    ) -> None:
        self.directory = (
            pathlib.Path(directory).expanduser()
            if directory is not None
            else None
        )
        self._memo: dict[str, _t.Any] = {}
        self._tmp_serial = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # -- lookup ---------------------------------------------------------------

    def get(
        self,
        key: str,
        decode: _t.Callable[[_t.Any], _t.Any] | None = None,
    ) -> _t.Any | None:
        """The cached value for ``key``, or ``None`` on a miss.

        Any malformed on-disk entry is deleted (counted as an eviction)
        and reported as a miss.
        """
        if key in self._memo:
            self.hits += 1
            return self._memo[key]
        if self.directory is None:
            self.misses += 1
            return None
        path = self._entry_path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        value = self._decode_entry(key, text, decode)
        if value is None:
            self._evict(path)
            self.misses += 1
            return None
        self._memo[key] = value
        self.hits += 1
        return value

    def _decode_entry(
        self,
        key: str,
        text: str,
        decode: _t.Callable[[_t.Any], _t.Any] | None,
    ) -> _t.Any | None:
        try:
            envelope = json.loads(text)
        except ValueError:
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("schema") != CACHE_SCHEMA:
            return None
        if envelope.get("key") != key:
            return None
        payload = envelope.get("payload")
        if payload is None:
            return None
        if decode is None:
            return payload
        try:
            return decode(payload)
        except (CacheError, KeyError, TypeError, ValueError):
            return None

    def _evict(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions += 1

    # -- storage --------------------------------------------------------------

    def put(
        self,
        key: str,
        value: _t.Any,
        encode: _t.Callable[[_t.Any], _t.Any] | None = None,
    ) -> None:
        """Store ``value`` under ``key`` (memo always, disk if enabled)."""
        if value is None:
            raise CacheError(
                "cannot cache None results (None marks a cache miss)"
            )
        payload = encode(value) if encode is not None else encode_value(value)
        self._memo[key] = value
        self.stores += 1
        if self.directory is None:
            return
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "payload": payload,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        self._tmp_serial += 1
        tmp = self.directory / (
            f".tmp-{os.getpid()}-{self._tmp_serial}-{key[:16]}"
        )
        # No sort_keys here (unlike canonical_key): JSON objects keep
        # member order, so decoded dicts preserve insertion order and a
        # cached result reprs identically to a fresh one.
        tmp.write_text(json.dumps(envelope))
        os.replace(tmp, self._entry_path(key))

    def _entry_path(self, key: str) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    # -- maintenance ----------------------------------------------------------

    def entries(self) -> list[tuple[str, int]]:
        """All persisted ``(key, size_bytes)`` pairs, key-sorted."""
        if self.directory is None or not self.directory.is_dir():
            return []
        found = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                found.append((path.stem, path.stat().st_size))
            except OSError:
                continue
        return found

    def clear(self) -> int:
        """Drop the memo and every persisted entry; returns the count."""
        self._memo.clear()
        removed = 0
        if self.directory is None or not self.directory.is_dir():
            return removed
        for pattern in ("*.json", ".tmp-*"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
        return removed

    def stats(self) -> dict[str, _t.Any]:
        """Counters plus the persisted footprint, for ``repro cache``."""
        entries = self.entries()
        return {
            "directory": (
                str(self.directory) if self.directory is not None else None
            ),
            "entries": len(entries),
            "bytes": sum(size for _, size in entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }
