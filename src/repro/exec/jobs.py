"""Picklable job specifications for the sweep executor.

A :class:`JobSpec` is a frozen, spawn-safe description of one
independent simulation: everything the job needs travels inside the
spec (config, cluster spec, seeded straggler), and :meth:`JobSpec.execute`
performs the heavy imports lazily so unpickling in a fresh worker
process stays cheap.  ``execute_job`` is the module-level entry point a
``ProcessPoolExecutor`` can pickle by reference.

Cacheable jobs also describe themselves for the content-addressed
cache: :meth:`JobSpec.cache_key` hashes the full input closure via the
``describe_*`` helpers below, and the ``encode_result`` /
``decode_result`` hooks translate results to and from JSON-safe
payloads.  A job returning ``None`` from ``cache_key`` is simply never
cached.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as _t

from repro.errors import CacheError
from repro.exec.cache import canonical_key
from repro.exec.codec import (
    decode_run_result,
    encode_run_result,
)

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import FelaConfig
    from repro.hardware import ClusterSpec
    from repro.metrics import RunResult
    from repro.perf.runner import ScenarioMeasurement
    from repro.stragglers import StragglerInjector


# -- input describers (the hashed closure of a simulation) --------------------


def describe_straggler(straggler: _t.Any) -> dict[str, _t.Any]:
    """A straggler injector's identity + public parameters (incl. seed)."""
    if straggler is None:
        return {"type": "NoStraggler", "params": {}}
    params = {
        name: value
        for name, value in sorted(vars(straggler).items())
        if not name.startswith("_")
    }
    return {"type": type(straggler).__name__, "params": params}


def describe_cluster(spec: "ClusterSpec") -> dict[str, _t.Any]:
    """A cluster spec as nested plain data (includes the GPU spec)."""
    return dataclasses.asdict(spec)


def describe_partition(partition: _t.Any) -> dict[str, _t.Any]:
    """A partition plus the full shape/flop profile of its model."""
    model = partition.model
    return {
        "model": {
            "name": model.name,
            "input_shape": tuple(model.input_shape),
            "layers": [
                {
                    "index": profile.index,
                    "layer": type(profile.layer).__name__,
                    "shape_signature": profile.shape_signature,
                    "in_shape": tuple(profile.in_shape),
                    "out_shape": tuple(profile.out_shape),
                    "forward_flops": profile.forward_flops,
                    "train_flops": profile.train_flops,
                    "param_count": profile.param_count,
                    "activation_floats": profile.activation_floats,
                }
                for profile in model
            ],
        },
        "submodels": [
            {
                "index": submodel.index,
                "first_layer": submodel.first_layer_index,
                "last_layer": submodel.last_layer_index,
                "threshold_batch": submodel.threshold_batch,
            }
            for submodel in partition.submodels
        ],
    }


def describe_config(config: "FelaConfig") -> dict[str, _t.Any]:
    """Every ``FelaConfig`` field, with the partition fully expanded.

    Iterates ``dataclasses.fields`` so a future config field cannot be
    forgotten here — new knobs automatically change cache keys.
    """
    described: dict[str, _t.Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name == "partition":
            value = describe_partition(value)
        described[field.name] = value
    return described


# -- job specs ----------------------------------------------------------------


class JobSpec(abc.ABC):
    """One independent, fully self-contained unit of sweep work."""

    def cache_key(self) -> str | None:
        """Content hash of the job's inputs; ``None`` = never cached."""
        return None

    def encode_result(self, value: _t.Any) -> _t.Any:
        return value

    def decode_result(self, payload: _t.Any) -> _t.Any:
        return payload

    @abc.abstractmethod
    def execute(self) -> _t.Any:
        """Run the job; must be deterministic and import lazily."""


def execute_job(job: JobSpec) -> _t.Any:
    """Module-level trampoline so pool workers can pickle the callable."""
    return job.execute()


@dataclasses.dataclass(frozen=True)
class TuningCaseJob(JobSpec):
    """Profile one configuration case: mean per-iteration time.

    Mirrors :meth:`repro.tuning.ConfigurationTuner.measure` exactly —
    infeasible (out-of-GPU-memory) cases profile as ``inf`` instead of
    raising, because the paper's testbed would simply OOM on them.
    """

    config: "FelaConfig"
    cluster_spec: "ClusterSpec"
    straggler: "StragglerInjector | None" = None

    def cache_key(self) -> str | None:
        try:
            return canonical_key(
                "tuning-case",
                {
                    "config": describe_config(self.config),
                    "cluster": describe_cluster(self.cluster_spec),
                    "straggler": describe_straggler(self.straggler),
                },
            )
        except CacheError:
            return None

    def decode_result(self, payload: _t.Any) -> float:
        if not isinstance(payload, float):
            raise CacheError(
                f"cached tuning case must be a float: {payload!r}"
            )
        return payload

    def execute(self) -> float:
        from repro.core import FelaRuntime
        from repro.errors import CapacityError
        from repro.hardware import Cluster

        cluster = Cluster(self.cluster_spec)
        try:
            runtime = FelaRuntime(
                self.config, cluster, straggler=self.straggler
            )
        except CapacityError:
            return float("inf")
        return runtime.run().mean_iteration_time


@dataclasses.dataclass(frozen=True)
class RunJob(JobSpec):
    """One full training run of any runtime kind.

    For ``fela`` the parent resolves the tuned :class:`FelaConfig`
    *before* building the job, so workers never re-tune; baselines
    carry their constructor ``overrides`` as a sorted item tuple.
    """

    kind: str
    model_name: str
    total_batch: int
    num_workers: int
    iterations: int
    cluster_spec: "ClusterSpec"
    straggler: "StragglerInjector"
    config: "FelaConfig | None" = None
    overrides: tuple[tuple[str, _t.Any], ...] = ()

    def cache_key(self) -> str | None:
        try:
            return canonical_key(
                "run",
                {
                    "kind": self.kind,
                    "model": self.model_name,
                    "total_batch": self.total_batch,
                    "num_workers": self.num_workers,
                    "iterations": self.iterations,
                    "cluster": describe_cluster(self.cluster_spec),
                    "straggler": describe_straggler(self.straggler),
                    "config": (
                        describe_config(self.config)
                        if self.config is not None
                        else None
                    ),
                    "overrides": [
                        [name, value] for name, value in self.overrides
                    ],
                },
            )
        except CacheError:
            return None

    def encode_result(self, value: "RunResult") -> _t.Any:
        return encode_run_result(value)

    def decode_result(self, payload: _t.Any) -> "RunResult":
        return decode_run_result(payload)

    def execute(self) -> "RunResult":
        from repro.baselines import (
            DataParallel,
            HybridParallel,
            ModelParallel,
            ProactiveElastic,
        )
        from repro.core import FelaRuntime
        from repro.errors import ConfigurationError
        from repro.hardware import Cluster
        from repro.models import get_model

        cluster = Cluster(self.cluster_spec)
        if self.kind == "fela":
            if self.config is None:
                raise ConfigurationError(
                    "fela RunJob needs a resolved FelaConfig"
                )
            return FelaRuntime(
                self.config, cluster, straggler=self.straggler
            ).run()
        baseline_cls = {
            "dp": DataParallel,
            "mp": ModelParallel,
            "hp": HybridParallel,
            "proactive": ProactiveElastic,
        }.get(self.kind)
        if baseline_cls is None:
            raise ConfigurationError(
                f"unknown runtime kind {self.kind!r}"
            )
        return baseline_cls(
            get_model(self.model_name),
            self.total_batch,
            self.num_workers,
            iterations=self.iterations,
            cluster=cluster,
            straggler=self.straggler,
            **dict(self.overrides),
        ).run()


@dataclasses.dataclass(frozen=True)
class ArtifactJob(JobSpec):
    """Regenerate one registry artifact in a worker process.

    Not cached itself — the underlying runs and tunings are, through
    the worker-local runner pointed at the shared ``cache_dir``.
    """

    artifact_id: str
    iterations: int
    cache_dir: str | None = None

    def execute(self) -> str:
        from repro.exec.cache import ResultCache
        from repro.harness.experiment import ExperimentRunner
        from repro.harness.registry import generate_artifact

        runner = ExperimentRunner(cache=ResultCache(self.cache_dir))
        return generate_artifact(
            self.artifact_id, runner=runner, iterations=self.iterations
        )


@dataclasses.dataclass(frozen=True)
class BenchJob(JobSpec):
    """Measure one benchmark scenario in a worker process.

    Within-scenario repetitions stay serial inside the worker so the
    per-repetition determinism tripwire keeps its meaning; only the
    across-scenario axis fans out.  Never cached: wall-clock timings
    are the one output that must be re-measured every run.
    """

    scenario: str
    repeats: int
    warmup: int

    def execute(self) -> "ScenarioMeasurement":
        from repro.perf.runner import measure_scenario

        return measure_scenario(
            self.scenario, repeats=self.repeats, warmup=self.warmup
        )
