"""The run ledger: one append-only store for every experiment artifact.

Every ``repro run/tune/compare/bench`` invocation can land its config,
result stats, fault accounting, sampled time-series, and trace events in
one schema-versioned :class:`RunLedger` (SQLite via the stdlib
``sqlite3``; a ``.jsonl`` path selects the dependency-free JSONL
backend).  ``SweepExecutor`` streams per-job heartbeat rows into the
same ledger, so long sweeps are observable while still running, and
``repro dashboard`` renders the whole thing — utilization heatmaps,
throughput/buffer curves with fault markers, sweep progress, bench
trends — from the ledger alone.

CLI entry points: ``--ledger`` on ``run``/``trace``/``bench`` and the
sweep commands, ``repro dashboard``, and ``python -m
repro.store.validate`` for schema validation.
"""

from repro.store.dashboard import (
    load_dashboard,
    render_html_dashboard,
    render_text_dashboard,
)
from repro.store.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    run_row_from_result,
)

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "load_dashboard",
    "render_html_dashboard",
    "render_text_dashboard",
    "run_row_from_result",
]
