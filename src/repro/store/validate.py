"""Ledger validation CLI: ``python -m repro.store.validate LEDGER...``.

Opens each ledger (SQLite or ``.jsonl``), checks its schema version,
and runs :meth:`repro.store.ledger.RunLedger.validate` — dense
sequential ids, referential integrity of samples/events/sweep-jobs/
bench-records/cluster-jobs, known sample series and worker phase codes,
known sweep statuses and cluster schedulers.  CI runs this on the ledger a dashboard artifact was rendered
from.  Exit code 0 means every file passed.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.errors import ReproError
from repro.store.ledger import RunLedger


def validate_file(path: str) -> list[str]:
    """Validate one ledger file; returns the list of problems found."""
    try:
        with RunLedger(path) as ledger:
            return ledger.validate()
    except (OSError, ValueError, ReproError) as exc:
        return [f"cannot load {path}: {exc}"]


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.validate",
        description="validate run-ledger files (SQLite or JSONL)",
    )
    parser.add_argument("paths", nargs="+", help="ledger files")
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        problems = validate_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            with RunLedger(path) as ledger:
                counts = (
                    f"{len(ledger.runs())} runs, "
                    f"{len(ledger.sweeps())} sweeps, "
                    f"{len(ledger.bench_runs())} bench runs, "
                    f"{len(ledger.cluster_runs())} cluster runs"
                )
            print(f"{path}: OK ({counts})")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
