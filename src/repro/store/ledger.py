"""Append-only, schema-versioned run ledger (SQLite or JSONL).

One ledger file accumulates every experiment artifact the repro
produces:

========== ==================================================== ========
table      one row per                                          written by
========== ==================================================== ========
runs       completed training run (config + ``RunResult.stats``) ``repro run/trace``
samples    sampler tick × gauge (see :mod:`repro.obs.timeseries`) ``--sample``
events     trace event of a recorded run                         ``--trace-out``
sweeps     ``SweepExecutor.map`` invocation                      sweep commands
sweep_jobs per-job heartbeat (started / finished / cache-hit)    ``SweepExecutor``
bench_runs ``repro bench`` invocation                            ``bench --ledger``
bench_records per-scenario bench measurement                     ``bench --ledger``
cluster_runs ``repro cluster`` scheduler run over one trace      ``cluster --ledger``
cluster_jobs per-job completion record of a cluster run          ``cluster --ledger``
========== ==================================================== ========

Design rules:

* **Append-only.**  The API exposes no update or delete; history is the
  point.  Identifiers (``run_id``, ``sweep_id``, ``bench_id``) are
  assigned sequentially per table, so two identically-scripted sessions
  produce identical rows — the *only* nondeterministic columns are the
  wall-clock timestamps, and every one of those is named ``*_wall`` so
  consumers (and the determinism test) can mask them mechanically.
* **Schema-versioned.**  The ``meta`` table pins
  :data:`LEDGER_SCHEMA_VERSION`; opening a ledger written by a
  different schema raises :class:`~repro.errors.LedgerError` instead of
  misreading it.
* **Two backends, one shape.**  SQLite is the default; a path ending in
  ``.jsonl`` selects a line-per-row JSON backend (same tables, same
  rows) for environments where a binary file is inconvenient to diff or
  ship.  Readers always return plain dicts, so the dashboard and the
  validator are backend-agnostic.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time
import typing as _t

from repro.errors import LedgerError
from repro.obs.timeseries import PHASE_CODES, SERIES

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.simulator import ClusterResult
    from repro.metrics import RunResult
    from repro.obs.events import TraceEvent
    from repro.obs.timeseries import Sample
    from repro.perf.store import BenchRun

#: Bump on any backwards-incompatible change to the ledger layout.
LEDGER_SCHEMA_VERSION = 1

#: table -> ordered column tuple.  The first column of ``runs``,
#: ``sweeps``, and ``bench_runs`` is that table's sequential id.
TABLES: dict[str, tuple[str, ...]] = {
    "runs": (
        "run_id", "created_wall", "command", "kind", "label", "model",
        "runtime", "total_batch", "num_workers", "iterations",
        "total_time", "seed", "config", "stats",
    ),
    "samples": ("run_id", "time", "series", "key", "value"),
    "events": (
        "run_id", "seq", "name", "category", "start", "duration",
        "track", "args",
    ),
    "sweeps": ("sweep_id", "created_wall", "label", "total_jobs"),
    "sweep_jobs": (
        "sweep_id", "job_index", "job_kind", "status", "cache_hit",
        "elapsed_wall", "created_wall",
    ),
    "bench_runs": ("bench_id", "created_wall", "label"),
    "bench_records": (
        "bench_id", "scenario", "kind", "wall_seconds_median",
        "wall_seconds_iqr", "events_per_second",
        "sim_seconds_per_wall_second", "peak_rss_kb",
    ),
    "cluster_runs": (
        "cluster_run_id", "created_wall", "label", "scheduler",
        "trace", "pool_gpus", "num_jobs", "makespan", "mean_jct",
        "p50_jct", "p99_jct", "mean_queue_delay", "mean_utilization",
        "total_resizes", "lost_compute_seconds", "pool_timeline",
    ),
    "cluster_jobs": (
        "cluster_run_id", "job_id", "model", "total_batch",
        "iterations", "min_workers", "max_workers", "submit_time",
        "start_time", "finish_time", "jct", "queue_delay",
        "initial_workers", "final_workers", "resize_count", "resizes",
        "faults",
    ),
}

#: Columns holding host wall-clock timestamps — the only columns two
#: identically-scripted sessions may disagree on.
WALL_COLUMNS: frozenset[str] = frozenset(
    {"created_wall", "elapsed_wall"}
)

_SWEEP_JOB_STATUSES = ("started", "done", "cached")

#: Tables whose ids are assigned sequentially from their row count.
_ID_TABLES = {"runs": "run_id", "sweeps": "sweep_id",
              "bench_runs": "bench_id",
              "cluster_runs": "cluster_run_id"}


def _canonical_json(payload: _t.Any) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


# -- backends ------------------------------------------------------------------


class _SqliteBackend:
    """SQLite storage; the default for any non-``.jsonl`` path."""

    def __init__(self, path: pathlib.Path) -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, "
            "value TEXT)"
        )
        for table in sorted(TABLES):
            columns = ", ".join(f'"{col}"' for col in TABLES[table])
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} ({columns})"
            )
        self._conn.commit()

    def get_meta(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )
        self._conn.commit()

    def insert(self, table: str, rows: _t.Sequence[dict]) -> None:
        columns = TABLES[table]
        placeholders = ", ".join("?" for _ in columns)
        self._conn.executemany(
            f"INSERT INTO {table} VALUES ({placeholders})",
            [tuple(row[col] for col in columns) for row in rows],
        )
        self._conn.commit()

    def rows(self, table: str) -> list[dict]:
        columns = TABLES[table]
        names = ", ".join(f'"{col}"' for col in columns)
        fetched = self._conn.execute(
            f"SELECT {names} FROM {table} ORDER BY rowid"
        ).fetchall()
        return [dict(zip(columns, row)) for row in fetched]

    def count(self, table: str) -> int:
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()


class _JsonlBackend:
    """Line-per-row JSON storage: ``{"table": ..., <columns>}``.

    The whole file is parsed at open (ledgers are append logs, not big
    data); writes append lines.  Meta rows use the pseudo-table
    ``meta``.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self._path = path
        self._tables: dict[str, list[dict]] = {
            table: [] for table in TABLES
        }
        self._meta: dict[str, str] = {}
        if path.exists():
            self._load()
        else:
            path.touch()

    def _load(self) -> None:
        for number, line in enumerate(
            self._path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"malformed ledger line {number} in {self._path}: "
                    f"{exc}"
                ) from None
            table = payload.pop("table", None)
            if table == "meta":
                self._meta[str(payload["key"])] = str(payload["value"])
            elif table in self._tables:
                self._tables[table].append(payload)
            else:
                raise LedgerError(
                    f"ledger line {number} in {self._path} names "
                    f"unknown table {table!r}"
                )

    def _append_line(self, payload: dict) -> None:
        with self._path.open("a") as handle:
            handle.write(_canonical_json(payload) + "\n")

    def get_meta(self, key: str) -> str | None:
        return self._meta.get(key)

    def set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value
        self._append_line({"table": "meta", "key": key, "value": value})

    def insert(self, table: str, rows: _t.Sequence[dict]) -> None:
        columns = TABLES[table]
        for row in rows:
            ordered = {col: row[col] for col in columns}
            self._tables[table].append(ordered)
            self._append_line({"table": table, **ordered})

    def rows(self, table: str) -> list[dict]:
        return [dict(row) for row in self._tables[table]]

    def count(self, table: str) -> int:
        return len(self._tables[table])

    def close(self) -> None:
        pass


# -- the ledger ----------------------------------------------------------------


class RunLedger:
    """One append-only experiment store; see the module docstring."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        if self.path.suffix == ".jsonl":
            self._backend: _t.Any = _JsonlBackend(self.path)
        else:
            self._backend = _SqliteBackend(self.path)
        stored = self._backend.get_meta("schema")
        if stored is None:
            self._backend.set_meta("schema", str(LEDGER_SCHEMA_VERSION))
        elif stored != str(LEDGER_SCHEMA_VERSION):
            raise LedgerError(
                f"ledger {self.path} has schema {stored}; this tool "
                f"reads schema {LEDGER_SCHEMA_VERSION}"
            )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *_exc: object) -> bool:
        self.close()
        return False

    # -- writers -------------------------------------------------------------

    def record_run(
        self,
        *,
        command: str,
        kind: str,
        result: "RunResult",
        label: str = "",
        seed: int | None = None,
        config: dict[str, _t.Any] | None = None,
        samples: _t.Sequence["Sample"] = (),
        events: _t.Sequence["TraceEvent"] = (),
    ) -> int:
        """Land one completed run (+ its series and events); returns its id."""
        run_id = self._backend.count("runs")
        self._backend.insert("runs", [{
            "run_id": run_id,
            "created_wall": time.time(),
            "command": command,
            "kind": kind,
            "label": label,
            "model": result.model_name,
            "runtime": result.runtime_name,
            "total_batch": result.total_batch,
            "num_workers": len(
                result.stats.get("compute_seconds_by_worker", ())
            ),
            "iterations": result.iterations,
            "total_time": result.total_time,
            "seed": seed,
            "config": _canonical_json(config or {}),
            "stats": _canonical_json(result.stats),
        }])
        if samples:
            self._backend.insert("samples", [{
                "run_id": run_id,
                "time": sample.time,
                "series": sample.series,
                "key": sample.key,
                "value": sample.value,
            } for sample in samples])
        if events:
            self._backend.insert("events", [{
                "run_id": run_id,
                "seq": event.seq,
                "name": event.name,
                "category": event.category,
                "start": event.start,
                "duration": event.duration,
                "track": event.track,
                "args": _canonical_json(event.args),
            } for event in events])
        return run_id

    def start_sweep(self, *, label: str, total_jobs: int) -> int:
        """Open a sweep heartbeat group; returns its id."""
        sweep_id = self._backend.count("sweeps")
        self._backend.insert("sweeps", [{
            "sweep_id": sweep_id,
            "created_wall": time.time(),
            "label": label,
            "total_jobs": total_jobs,
        }])
        return sweep_id

    def record_sweep_job(
        self,
        sweep_id: int,
        *,
        index: int,
        kind: str,
        status: str,
        cache_hit: bool = False,
        elapsed_wall: float = 0.0,
    ) -> None:
        """One heartbeat row: a job started, finished, or hit the cache."""
        if status not in _SWEEP_JOB_STATUSES:
            raise LedgerError(
                f"unknown sweep-job status {status!r}; expected one of "
                f"{_SWEEP_JOB_STATUSES}"
            )
        self._backend.insert("sweep_jobs", [{
            "sweep_id": sweep_id,
            "job_index": index,
            "job_kind": kind,
            "status": status,
            "cache_hit": int(cache_hit),
            "elapsed_wall": elapsed_wall,
            "created_wall": time.time(),
        }])

    def record_bench_run(self, run: "BenchRun") -> int:
        """Land one ``repro bench`` invocation's records; returns its id."""
        bench_id = self._backend.count("bench_runs")
        self._backend.insert("bench_runs", [{
            "bench_id": bench_id,
            "created_wall": time.time(),
            "label": run.label,
        }])
        self._backend.insert("bench_records", [{
            "bench_id": bench_id,
            "scenario": record.name,
            "kind": record.kind,
            "wall_seconds_median": record.wall_seconds_median,
            "wall_seconds_iqr": record.wall_seconds_iqr,
            "events_per_second": record.events_per_second,
            "sim_seconds_per_wall_second":
                record.sim_seconds_per_wall_second,
            "peak_rss_kb": record.peak_rss_kb,
        } for record in run.records])
        return bench_id

    def record_cluster_run(
        self,
        result: "ClusterResult",
        *,
        label: str = "",
        trace: str = "",
    ) -> int:
        """Land one cluster scheduler run (+ per-job rows); returns its id.

        ``trace`` is a free-form description of the arrival trace (kind,
        size, seed) so two runs over the same stream are groupable.
        """
        cluster_run_id = self._backend.count("cluster_runs")
        row: dict[str, _t.Any] = {
            "cluster_run_id": cluster_run_id,
            "created_wall": time.time(),
            "label": label,
            "trace": trace,
        }
        row.update(result.summary_row())
        self._backend.insert("cluster_runs", [row])
        self._backend.insert("cluster_jobs", [
            {"cluster_run_id": cluster_run_id, **job}
            for job in result.jobs
        ])
        return cluster_run_id

    # -- readers -------------------------------------------------------------

    def runs(self) -> list[dict]:
        rows = self._backend.rows("runs")
        for row in rows:
            row["config"] = json.loads(row["config"])
            row["stats"] = json.loads(row["stats"])
        return rows

    def samples(self, run_id: int | None = None) -> list[dict]:
        rows = self._backend.rows("samples")
        if run_id is None:
            return rows
        return [row for row in rows if row["run_id"] == run_id]

    def events(self, run_id: int | None = None) -> list[dict]:
        rows = self._backend.rows("events")
        for row in rows:
            row["args"] = json.loads(row["args"])
        if run_id is None:
            return rows
        return [row for row in rows if row["run_id"] == run_id]

    def sweeps(self) -> list[dict]:
        return self._backend.rows("sweeps")

    def sweep_jobs(self, sweep_id: int | None = None) -> list[dict]:
        rows = self._backend.rows("sweep_jobs")
        if sweep_id is None:
            return rows
        return [row for row in rows if row["sweep_id"] == sweep_id]

    def bench_runs(self) -> list[dict]:
        return self._backend.rows("bench_runs")

    def bench_records(self, bench_id: int | None = None) -> list[dict]:
        rows = self._backend.rows("bench_records")
        if bench_id is None:
            return rows
        return [row for row in rows if row["bench_id"] == bench_id]

    def cluster_runs(self) -> list[dict]:
        rows = self._backend.rows("cluster_runs")
        for row in rows:
            row["pool_timeline"] = json.loads(row["pool_timeline"])
        return rows

    def cluster_jobs(
        self, cluster_run_id: int | None = None
    ) -> list[dict]:
        rows = self._backend.rows("cluster_jobs")
        for row in rows:
            row["resizes"] = json.loads(row["resizes"])
            row["faults"] = (
                json.loads(row["faults"])
                if row["faults"] is not None
                else None
            )
        if cluster_run_id is None:
            return rows
        return [
            row
            for row in rows
            if row["cluster_run_id"] == cluster_run_id
        ]

    # -- validation ----------------------------------------------------------

    def validate(self) -> list[str]:
        """Structural + referential checks; returns human-readable problems.

        An empty list means the ledger conforms to the schema: ids are
        dense and sequential, every child row references a recorded
        parent, sample rows use known series (worker phases restricted
        to the :data:`~repro.obs.timeseries.PHASE_CODES` codes), and
        sweep heartbeats use known statuses with in-range indices.
        """
        problems: list[str] = []
        runs = self.runs()
        for position, row in enumerate(runs):
            if row["run_id"] != position:
                problems.append(
                    f"runs: row {position} has run_id {row['run_id']} "
                    f"(ids must be dense and sequential)"
                )
            if not isinstance(row["stats"], dict):
                problems.append(
                    f"runs: run {row['run_id']} stats is not an object"
                )
            if row["total_time"] is None or row["total_time"] < 0:
                problems.append(
                    f"runs: run {row['run_id']} has invalid total_time "
                    f"{row['total_time']!r}"
                )
        run_ids = {row["run_id"] for row in runs}
        phase_codes = {float(code) for code in PHASE_CODES.values()}
        for row in self._backend.rows("samples"):
            if row["run_id"] not in run_ids:
                problems.append(
                    f"samples: row references unknown run "
                    f"{row['run_id']}"
                )
                continue
            if row["series"] not in SERIES:
                problems.append(
                    f"samples: unknown series {row['series']!r} in run "
                    f"{row['run_id']}"
                )
            elif (
                row["series"] == "worker.phase"
                and row["value"] not in phase_codes
            ):
                problems.append(
                    f"samples: run {row['run_id']} worker {row['key']} "
                    f"has invalid phase code {row['value']!r}"
                )
            if row["time"] < 0:
                problems.append(
                    f"samples: negative time {row['time']} in run "
                    f"{row['run_id']}"
                )
        for row in self._backend.rows("events"):
            if row["run_id"] not in run_ids:
                problems.append(
                    f"events: row references unknown run {row['run_id']}"
                )
            if row["duration"] is not None and row["duration"] < 0:
                problems.append(
                    f"events: negative duration on seq {row['seq']} in "
                    f"run {row['run_id']}"
                )
        sweeps = self.sweeps()
        for position, row in enumerate(sweeps):
            if row["sweep_id"] != position:
                problems.append(
                    f"sweeps: row {position} has sweep_id "
                    f"{row['sweep_id']} (ids must be dense and "
                    f"sequential)"
                )
        totals = {row["sweep_id"]: row["total_jobs"] for row in sweeps}
        for row in self._backend.rows("sweep_jobs"):
            total = totals.get(row["sweep_id"])
            if total is None:
                problems.append(
                    f"sweep_jobs: row references unknown sweep "
                    f"{row['sweep_id']}"
                )
                continue
            if row["status"] not in _SWEEP_JOB_STATUSES:
                problems.append(
                    f"sweep_jobs: unknown status {row['status']!r} in "
                    f"sweep {row['sweep_id']}"
                )
            if not 0 <= row["job_index"] < total:
                problems.append(
                    f"sweep_jobs: job index {row['job_index']} out of "
                    f"range for sweep {row['sweep_id']} "
                    f"({total} jobs)"
                )
        bench_ids = set()
        for position, row in enumerate(self.bench_runs()):
            bench_ids.add(row["bench_id"])
            if row["bench_id"] != position:
                problems.append(
                    f"bench_runs: row {position} has bench_id "
                    f"{row['bench_id']} (ids must be dense and "
                    f"sequential)"
                )
        for row in self._backend.rows("bench_records"):
            if row["bench_id"] not in bench_ids:
                problems.append(
                    f"bench_records: row references unknown bench run "
                    f"{row['bench_id']}"
                )
            if row["wall_seconds_median"] < 0:
                problems.append(
                    f"bench_records: negative median wall for "
                    f"{row['scenario']!r}"
                )
        from repro.cluster.schedulers import SCHEDULER_NAMES

        cluster_runs = self.cluster_runs()
        job_counts: dict[int, int] = {}
        for position, row in enumerate(cluster_runs):
            if row["cluster_run_id"] != position:
                problems.append(
                    f"cluster_runs: row {position} has cluster_run_id "
                    f"{row['cluster_run_id']} (ids must be dense and "
                    f"sequential)"
                )
            if row["scheduler"] not in SCHEDULER_NAMES:
                problems.append(
                    f"cluster_runs: run {row['cluster_run_id']} has "
                    f"unknown scheduler {row['scheduler']!r}"
                )
            if row["makespan"] is None or row["makespan"] <= 0:
                problems.append(
                    f"cluster_runs: run {row['cluster_run_id']} has "
                    f"invalid makespan {row['makespan']!r}"
                )
            if not 0 <= row["mean_utilization"] <= 1:
                problems.append(
                    f"cluster_runs: run {row['cluster_run_id']} has "
                    f"utilization {row['mean_utilization']!r} outside "
                    f"[0, 1]"
                )
            job_counts[row["cluster_run_id"]] = 0
        for row in self.cluster_jobs():
            run_id = row["cluster_run_id"]
            if run_id not in job_counts:
                problems.append(
                    f"cluster_jobs: row references unknown cluster run "
                    f"{run_id}"
                )
                continue
            job_counts[run_id] += 1
            if row["queue_delay"] < 0:
                problems.append(
                    f"cluster_jobs: job {row['job_id']} of run {run_id} "
                    f"has negative queue delay {row['queue_delay']!r}"
                )
            if not (
                row["submit_time"]
                <= row["start_time"]
                <= row["finish_time"]
            ):
                problems.append(
                    f"cluster_jobs: job {row['job_id']} of run {run_id} "
                    f"violates submit <= start <= finish"
                )
        for row in cluster_runs:
            run_id = row["cluster_run_id"]
            if (
                run_id in job_counts
                and job_counts[run_id] != row["num_jobs"]
            ):
                problems.append(
                    f"cluster_runs: run {run_id} claims "
                    f"{row['num_jobs']} jobs but has "
                    f"{job_counts[run_id]} cluster_jobs rows"
                )
        return problems


# -- helpers -------------------------------------------------------------------


def run_row_from_result(result: "RunResult") -> dict[str, _t.Any]:
    """The config-description dict ``record_run`` stores for a result.

    Kept deliberately derivable from the result alone, so every caller
    (CLI run/trace, scenario jobs, tests) lands the same shape.
    """
    return {
        "model": result.model_name,
        "runtime": result.runtime_name,
        "total_batch": result.total_batch,
        "iterations": result.iterations,
        "weights": list(result.stats.get("weights", ())),
        "subset_size": result.stats.get("subset_size"),
    }
