"""Dashboards rendered from the run ledger alone.

``load_dashboard`` pulls everything out of a :class:`RunLedger` into a
plain-dict model; ``render_text_dashboard`` and
``render_html_dashboard`` turn that model into, respectively, an ASCII
report and a single self-contained HTML file (inline CSS + inline SVG —
no scripts, no external assets, safe to attach as a CI artifact).

Per recorded run (when sampled): a worker × sim-time utilization
heatmap from the ``worker.phase`` series, a throughput curve (tokens
completed per tick), and per-level buffer-depth curves — all annotated
with fault/join markers taken from the run's ``fault``-category trace
events.  Plus: sweep progress and cache-hit tables from the heartbeat
rows, per-scenario bench trend sparklines over every recorded bench
run, and — per recorded cluster run — a job Gantt
(queued/running/resizing), the pool-utilization curve, and a JCT CDF
table from the ``cluster_runs``/``cluster_jobs`` tables.
"""

from __future__ import annotations

import html as _html
import typing as _t

from repro.harness.report import render_table
from repro.obs.timeseries import (
    PHASE_CODES,
    PHASE_NAMES,
    SER_BUFFER_DEPTH,
    SER_TOKENS_DONE,
    SER_WORKER_PHASE,
)

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.store.ledger import RunLedger

#: Heatmap/legend colors per phase name (idle grey, compute green,
#: fetch blue, delay orange, dead red).
PHASE_COLORS: dict[str, str] = {
    "idle": "#e8e8e8",
    "compute": "#4caf50",
    "fetch": "#2196f3",
    "delay": "#ff9800",
    "dead": "#e53935",
}

#: One-character heatmap glyphs per phase for the text dashboard.
PHASE_GLYPHS: dict[str, str] = {
    "idle": ".",
    "compute": "#",
    "fetch": "f",
    "delay": "d",
    "dead": "X",
}

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Event names drawn as markers on the curves (all CAT_FAULT).
_MARKER_GLYPHS = {
    "worker.failed": "x",
    "worker.joined": "+",
    "worker.left": "-",
}


def sparkline(values: _t.Sequence[float]) -> str:
    """Unicode block sparkline; flat series render as a mid-level bar."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return _SPARK_BLOCKS[3] * len(values)
    scale = (len(_SPARK_BLOCKS) - 1) / (high - low)
    return "".join(
        _SPARK_BLOCKS[int((value - low) * scale)] for value in values
    )


# -- the data model ------------------------------------------------------------


def load_dashboard(ledger: "RunLedger") -> dict[str, _t.Any]:
    """Everything the renderers need, as one plain-dict model."""
    runs = []
    for row in ledger.runs():
        run_id = row["run_id"]
        samples = ledger.samples(run_id)
        events = ledger.events(run_id)
        runs.append({
            "run": row,
            "samples": samples,
            "markers": [
                event for event in events
                if event["category"] == "fault"
                and event["name"] in _MARKER_GLYPHS
            ],
        })
    sweeps = []
    for sweep in ledger.sweeps():
        jobs = ledger.sweep_jobs(sweep["sweep_id"])
        finished = [
            job for job in jobs if job["status"] in ("done", "cached")
        ]
        sweeps.append({
            "sweep": sweep,
            "jobs": jobs,
            "completed": len(finished),
            "cache_hits": sum(
                1 for job in finished if job["cache_hit"]
            ),
            "elapsed_wall": sum(
                job["elapsed_wall"] for job in finished
            ),
        })
    bench_runs = ledger.bench_runs()
    history: dict[str, list[float]] = {}
    for bench in bench_runs:
        for record in ledger.bench_records(bench["bench_id"]):
            history.setdefault(record["scenario"], []).append(
                record["wall_seconds_median"]
            )
    cluster = [
        {
            "run": row,
            "jobs": ledger.cluster_jobs(row["cluster_run_id"]),
        }
        for row in ledger.cluster_runs()
    ]
    return {
        "runs": runs,
        "sweeps": sweeps,
        "bench": history,
        "cluster": cluster,
    }


def _phase_grid(
    samples: _t.Sequence[dict],
) -> tuple[list[str], list[float], dict[tuple[str, float], int]]:
    """(worker keys, tick times, (worker, tick) -> phase code)."""
    workers: list[str] = []
    ticks: list[float] = []
    grid: dict[tuple[str, float], int] = {}
    for sample in samples:
        if sample["series"] != SER_WORKER_PHASE:
            continue
        if sample["key"] not in workers:
            workers.append(sample["key"])
        if sample["time"] not in ticks:
            ticks.append(sample["time"])
        grid[(sample["key"], sample["time"])] = int(sample["value"])
    return workers, sorted(ticks), grid


def _series(
    samples: _t.Sequence[dict], series: str, key: str = ""
) -> list[tuple[float, float]]:
    return [
        (sample["time"], sample["value"])
        for sample in samples
        if sample["series"] == series and sample["key"] == key
    ]


def _throughput(samples: _t.Sequence[dict]) -> list[tuple[float, float]]:
    """Tokens completed per tick (differenced cumulative counter)."""
    points = _series(samples, SER_TOKENS_DONE)
    return [
        (now, value - previous)
        for (_, previous), (now, value) in zip(points, points[1:])
    ]


def _levels(samples: _t.Sequence[dict]) -> list[str]:
    seen: dict[str, None] = {}
    for sample in samples:
        if sample["series"] == SER_BUFFER_DEPTH:
            seen.setdefault(sample["key"])
    return list(seen)


# -- text renderer -------------------------------------------------------------

#: Heatmap width budget: downsample ticks beyond this many columns.
_TEXT_COLUMNS = 72


def render_text_dashboard(data: dict[str, _t.Any]) -> str:
    sections = []
    for entry in data["runs"]:
        sections.append(_text_run_section(entry))
    if data["sweeps"]:
        sections.append(_text_sweep_section(data["sweeps"]))
    if data["bench"]:
        sections.append(_text_bench_section(data["bench"]))
    for entry in data.get("cluster", []):
        sections.append(_text_cluster_section(entry))
    if not sections:
        return ("(ledger holds no runs, sweeps, bench, or cluster "
                "records)")
    return "\n\n".join(sections)


def _text_run_section(entry: dict[str, _t.Any]) -> str:
    run = entry["run"]
    lines = [
        f"== run {run['run_id']}: {run['runtime']} {run['model']} "
        f"batch {run['total_batch']} x{run['iterations']} "
        f"(total_time {run['total_time']:.3f}s)"
    ]
    faults = run["stats"].get("faults")
    if faults:
        lines.append(
            f"   faults: {len(faults['failures'])} failed, "
            f"{len(faults['joined'])} joined, "
            f"{len(faults['left'])} left; lost compute "
            f"{faults['lost_compute_seconds']:.3f}s"
        )
    samples = entry["samples"]
    if not samples:
        lines.append("   (run was not sampled)")
        return "\n".join(lines)
    workers, ticks, grid = _phase_grid(samples)
    shown = ticks
    if len(ticks) > _TEXT_COLUMNS:
        step = -(-len(ticks) // _TEXT_COLUMNS)  # ceil division
        shown = ticks[::step]
    idle = PHASE_CODES["idle"]
    lines.append("   utilization (worker x sim-time):")
    for worker in workers:
        cells = "".join(
            PHASE_GLYPHS[PHASE_NAMES[grid.get((worker, tick), idle)]]
            for tick in shown
        )
        lines.append(f"     w{worker:>3} {cells}")
    legend = "  ".join(
        f"{PHASE_GLYPHS[name]}={name}" for name in sorted(PHASE_GLYPHS)
    )
    lines.append(f"     t={shown[0]:g}..{shown[-1]:g}s  {legend}")
    throughput = _throughput(samples)
    if throughput:
        lines.append(
            "   throughput (tokens/tick): "
            + sparkline([value for _, value in throughput])
        )
    for level in _levels(samples):
        depth = _series(samples, SER_BUFFER_DEPTH, key=level)
        lines.append(
            f"   buffer depth L{level}:       "
            + sparkline([value for _, value in depth])
        )
    for marker in entry["markers"]:
        glyph = _MARKER_GLYPHS[marker["name"]]
        lines.append(
            f"   [{glyph}] {marker['name']} at t={marker['start']:.3f}s "
            f"{marker['args']}"
        )
    return "\n".join(lines)


def _text_sweep_section(sweeps: _t.Sequence[dict]) -> str:
    rows = []
    for entry in sweeps:
        sweep = entry["sweep"]
        total = sweep["total_jobs"]
        rows.append([
            sweep["sweep_id"],
            sweep["label"],
            f"{entry['completed']}/{total}",
            entry["cache_hits"],
            f"{entry['elapsed_wall']:.2f}",
        ])
    return render_table(
        ["Sweep", "Label", "Progress", "Cache hits", "Busy wall (s)"],
        rows,
        title="== sweeps",
    )


def _text_bench_section(history: dict[str, list[float]]) -> str:
    rows = []
    for scenario in sorted(history):
        walls = history[scenario]
        ordered = sorted(walls)
        median = ordered[len(ordered) // 2]
        rows.append([
            scenario,
            len(walls),
            f"{walls[0]:.4f}",
            f"{min(walls):.4f}",
            f"{median:.4f}",
            f"{walls[-1]:.4f}",
            sparkline(walls),
        ])
    return render_table(
        ["Scenario", "Runs", "First", "Min", "Median", "Last", "Trend"],
        rows,
        title="== bench trends (median wall seconds)",
    )


# -- cluster helpers -----------------------------------------------------------

#: Gantt glyphs for allocations 0..35; counts beyond 35 clamp to "z".
_WORKER_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"

#: JCT CDF percentiles shown in both backends.
_CDF_POINTS = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99)


def _worker_glyph(count: int) -> str:
    return _WORKER_GLYPHS[min(max(count, 0), len(_WORKER_GLYPHS) - 1)]


def _job_segments(job: dict) -> list[tuple[float, float, int]]:
    """``(start, end, workers)`` allocation spans of one cluster job.

    Reconstructed from ``initial_workers`` plus the recorded
    ``(time, delta, held_after)`` resize triples.
    """
    segments: list[tuple[float, float, int]] = []
    at = job["start_time"]
    workers = job["initial_workers"]
    for when, _delta, held_after in job["resizes"]:
        if when > at:
            segments.append((at, when, workers))
            at = when
        workers = held_after
    if job["finish_time"] > at:
        segments.append((at, job["finish_time"], workers))
    return segments


def _workers_at(segments: _t.Sequence[tuple[float, float, int]],
                time: float) -> int:
    for start, end, workers in segments:
        if start <= time < end:
            return workers
    return segments[-1][2] if segments else 0


def _nearest_rank(sorted_values: _t.Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    return sorted_values[min(len(sorted_values) - 1, rank - 1)]


def _jct_cdf_rows(jobs: _t.Sequence[dict]) -> list[list[str]]:
    jcts = sorted(job["jct"] for job in jobs)
    rows = [
        [f"p{int(q * 100)}", f"{_nearest_rank(jcts, q):.3f}"]
        for q in _CDF_POINTS
    ]
    if jcts:
        rows.append(["max", f"{jcts[-1]:.3f}"])
    return rows


def _pool_step_points(
    timeline: _t.Sequence[_t.Sequence[float]], makespan: float
) -> list[tuple[float, float]]:
    """Breakpoints -> step-function polyline points for plotting."""
    points: list[tuple[float, float]] = []
    for time, used in timeline:
        if points:
            points.append((time, points[-1][1]))
        points.append((time, used))
    if points and makespan > points[-1][0]:
        points.append((makespan, points[-1][1]))
    return points


def _text_cluster_section(entry: dict[str, _t.Any]) -> str:
    run = entry["run"]
    jobs = entry["jobs"]
    label = f" [{run['label']}]" if run["label"] else ""
    trace = f" on {run['trace']}" if run["trace"] else ""
    lines = [
        f"== cluster run {run['cluster_run_id']}{label}: "
        f"{run['scheduler']}{trace}, pool {run['pool_gpus']} GPUs, "
        f"{run['num_jobs']} jobs",
        f"   makespan {run['makespan']:.3f}s  "
        f"mean JCT {run['mean_jct']:.3f}s  "
        f"mean queue {run['mean_queue_delay']:.3f}s  "
        f"util {run['mean_utilization']:.2f}  "
        f"resizes {run['total_resizes']}  "
        f"lost {run['lost_compute_seconds']:.3f}s",
    ]
    makespan = run["makespan"]
    if jobs and makespan > 0:
        width = min(_TEXT_COLUMNS - 8, max(8, len(jobs) * 4))
        bucket = makespan / width
        lines.append(
            "   job schedule (q=queued, digit=granted workers):"
        )
        for job in jobs:
            segments = _job_segments(job)
            cells = []
            for column in range(width):
                time = (column + 0.5) * bucket
                if time < job["submit_time"]:
                    cells.append(" ")
                elif time < job["start_time"]:
                    cells.append("q")
                elif time < job["finish_time"]:
                    cells.append(_worker_glyph(
                        _workers_at(segments, time)
                    ))
                else:
                    cells.append(".")
            lines.append(
                f"     j{job['job_id']:>3} {''.join(cells)} "
                f"{job['model']}"
            )
        lines.append(f"     t=0..{makespan:g}s")
    timeline = run["pool_timeline"]
    if timeline:
        lines.append(
            "   pool GPUs in use: "
            + sparkline([used for _, used in timeline])
        )
    cdf = _jct_cdf_rows(jobs)
    if cdf:
        lines.append(
            "   JCT CDF (s): "
            + "  ".join(f"{name}={value}" for name, value in cdf)
        )
    return "\n".join(lines)


# -- HTML renderer -------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; font-size: 0.85em;
         text-align: left; }
th { background: #f4f4f4; }
table.heatmap td { border: none; width: 9px; height: 14px; padding: 0; }
table.heatmap th { border: none; background: none; font-weight: normal;
                   padding: 0 6px 0 0; font-size: 0.75em; }
.legend span { display: inline-block; margin-right: 1em;
               font-size: 0.8em; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; }
.spark { font-family: monospace; font-size: 1.0em; }
svg { background: #fafafa; border: 1px solid #ddd; margin: 0.4em 0; }
.note { color: #777; font-size: 0.8em; }
"""


def _svg_curve(
    points: _t.Sequence[tuple[float, float]],
    markers: _t.Sequence[dict],
    *,
    title: str,
    color: str = "#2196f3",
    width: int = 640,
    height: int = 120,
) -> str:
    """One polyline chart with vertical fault/join marker lines."""
    if not points:
        return ""
    pad = 6
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    def sx(x: float) -> float:
        return pad + (x - x_low) / x_span * (width - 2 * pad)

    def sy(y: float) -> float:
        return height - pad - (y - y_low) / y_span * (height - 2 * pad)

    path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{_html.escape(title)}">',
        f'<title>{_html.escape(title)}</title>',
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{path}"/>',
    ]
    for marker in markers:
        at = marker["start"]
        if not x_low <= at <= x_high:
            continue
        stroke = (
            "#e53935" if marker["name"] == "worker.failed" else "#4caf50"
        )
        parts.append(
            f'<line x1="{sx(at):.1f}" y1="{pad}" x2="{sx(at):.1f}" '
            f'y2="{height - pad}" stroke="{stroke}" '
            f'stroke-dasharray="3,2">'
            f'<title>{_html.escape(marker["name"])} @ {at:.3f}s</title>'
            f'</line>'
        )
    parts.append(
        f'<text x="{pad + 2}" y="{pad + 9}" font-size="9" fill="#777">'
        f'{_html.escape(title)} (max {y_high:g})</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _html_table(
    headers: _t.Sequence[str], rows: _t.Sequence[_t.Sequence[_t.Any]]
) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{_html.escape(str(cell))}</td>" for cell in row
        ) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _html_run_section(entry: dict[str, _t.Any]) -> str:
    run = entry["run"]
    parts = [
        f"<h2>Run {run['run_id']}: {_html.escape(str(run['runtime']))} "
        f"{_html.escape(str(run['model']))} batch {run['total_batch']} "
        f"&times; {run['iterations']} iters "
        f"(total_time {run['total_time']:.3f}s)</h2>"
    ]
    faults = run["stats"].get("faults")
    if faults:
        parts.append(_html_table(
            ["Failed", "Joined", "Left", "Detection (s)",
             "Lost compute (s)", "Reclaimed", "Re-minted"],
            [[
                len(faults["failures"]),
                len(faults["joined"]),
                len(faults["left"]),
                f"{sum(faults['recovery_detection_seconds']):.3f}",
                f"{faults['lost_compute_seconds']:.3f}",
                faults["tokens_reclaimed"],
                faults["tokens_reminted"],
            ]],
        ))
    samples = entry["samples"]
    if not samples:
        parts.append('<p class="note">Run was not sampled — rerun with '
                     "<code>--sample</code> for heatmap and curves.</p>")
        return "".join(parts)
    workers, ticks, grid = _phase_grid(samples)
    idle = PHASE_CODES["idle"]
    rows = []
    for worker in workers:
        cells = "".join(
            f'<td style="background:'
            f'{PHASE_COLORS[PHASE_NAMES[grid.get((worker, tick), idle)]]}"'
            f' title="w{worker} t={tick:g}"></td>'
            for tick in ticks
        )
        rows.append(f"<tr><th>w{worker}</th>{cells}</tr>")
    legend = "".join(
        f'<span><i style="background:{PHASE_COLORS[name]}"></i>'
        f"{name}</span>"
        for name in sorted(PHASE_COLORS)
    )
    parts.append(
        "<h3>Utilization (worker &times; sim-time, "
        f"t={ticks[0]:g}&ndash;{ticks[-1]:g}s)</h3>"
        f'<table class="heatmap">{"".join(rows)}</table>'
        f'<div class="legend">{legend}</div>'
    )
    markers = entry["markers"]
    throughput = _throughput(samples)
    parts.append(_svg_curve(
        throughput, markers, title="throughput (tokens/tick)",
        color="#4caf50",
    ))
    for level in _levels(samples):
        depth = _series(samples, SER_BUFFER_DEPTH, key=level)
        parts.append(_svg_curve(
            depth, markers, title=f"buffer depth, level {level}",
        ))
    if markers:
        parts.append(_html_table(
            ["Event", "Sim-time (s)", "Args"],
            [[m["name"], f"{m['start']:.3f}", m["args"]]
             for m in markers],
        ))
    return "".join(parts)


def _svg_cluster_gantt(
    jobs: _t.Sequence[dict],
    makespan: float,
    *,
    width: int = 640,
    row_height: int = 14,
) -> str:
    """Per-job timeline bars: queued (orange) then running (green,
    darker while more workers are granted; one rect per allocation
    span, so every resize shows as a shade change)."""
    if not jobs or makespan <= 0:
        return ""
    pad = 6
    label_w = 46
    span = width - label_w - pad

    def sx(time: float) -> float:
        return label_w + time / makespan * span

    height = pad * 2 + row_height * len(jobs)
    max_workers = max(job["max_workers"] for job in jobs)
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="job schedule">',
        "<title>job schedule (queued, then running; darker = more "
        "workers)</title>",
    ]
    for position, job in enumerate(jobs):
        y = pad + position * row_height
        bar_h = row_height - 3
        parts.append(
            f'<text x="2" y="{y + bar_h - 1}" font-size="9" '
            f'fill="#555">j{job["job_id"]}</text>'
        )
        queued = sx(job["start_time"]) - sx(job["submit_time"])
        if queued > 0.1:
            parts.append(
                f'<rect x="{sx(job["submit_time"]):.1f}" y="{y}" '
                f'width="{queued:.1f}" height="{bar_h}" '
                f'fill="#ff9800" opacity="0.55">'
                f'<title>j{job["job_id"]} queued '
                f'{job["queue_delay"]:.3f}s</title></rect>'
            )
        for start, end, workers in _job_segments(job):
            opacity = 0.35 + 0.65 * min(workers / max_workers, 1.0)
            parts.append(
                f'<rect x="{sx(start):.1f}" y="{y}" '
                f'width="{max(sx(end) - sx(start), 0.5):.1f}" '
                f'height="{bar_h}" fill="#4caf50" '
                f'opacity="{opacity:.2f}">'
                f'<title>j{job["job_id"]} ({_html.escape(job["model"])})'
                f' {workers} workers, t={start:.1f}-{end:.1f}s</title>'
                f'</rect>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _html_cluster_section(entry: dict[str, _t.Any]) -> str:
    run = entry["run"]
    jobs = entry["jobs"]
    label = f" [{_html.escape(str(run['label']))}]" if run["label"] else ""
    trace = (
        f" on {_html.escape(str(run['trace']))}" if run["trace"] else ""
    )
    parts = [
        f"<h2>Cluster run {run['cluster_run_id']}{label}: "
        f"{_html.escape(str(run['scheduler']))}{trace}, "
        f"pool {run['pool_gpus']} GPUs</h2>",
        _html_table(
            ["Jobs", "Makespan (s)", "Mean JCT (s)", "p50 JCT (s)",
             "p99 JCT (s)", "Mean queue (s)", "Mean util", "Resizes",
             "Lost compute (s)"],
            [[
                run["num_jobs"],
                f"{run['makespan']:.3f}",
                f"{run['mean_jct']:.3f}",
                f"{run['p50_jct']:.3f}",
                f"{run['p99_jct']:.3f}",
                f"{run['mean_queue_delay']:.3f}",
                f"{run['mean_utilization']:.2f}",
                run["total_resizes"],
                f"{run['lost_compute_seconds']:.3f}",
            ]],
        ),
    ]
    gantt = _svg_cluster_gantt(jobs, run["makespan"])
    if gantt:
        parts.append("<h3>Job schedule</h3>")
        parts.append(gantt)
    points = _pool_step_points(run["pool_timeline"], run["makespan"])
    if points:
        parts.append(_svg_curve(
            points, [],
            title=f"pool GPUs in use (of {run['pool_gpus']})",
        ))
    cdf = _jct_cdf_rows(jobs)
    if cdf:
        parts.append("<h3>JCT CDF</h3>")
        parts.append(_html_table(
            ["Percentile", "JCT (s)"], cdf,
        ))
    return "".join(parts)


def render_html_dashboard(data: dict[str, _t.Any]) -> str:
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>fela-repro dashboard</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>fela-repro run ledger dashboard</h1>",
    ]
    if not (data["runs"] or data["sweeps"] or data["bench"]
            or data.get("cluster")):
        parts.append('<p class="note">Ledger holds no runs, sweeps, '
                     "bench, or cluster records.</p>")
    for entry in data["runs"]:
        parts.append(_html_run_section(entry))
    if data["sweeps"]:
        parts.append("<h2>Sweeps</h2>")
        parts.append(_html_table(
            ["Sweep", "Label", "Progress", "Cache hits",
             "Busy wall (s)"],
            [[
                entry["sweep"]["sweep_id"],
                entry["sweep"]["label"],
                f"{entry['completed']}/{entry['sweep']['total_jobs']}",
                entry["cache_hits"],
                f"{entry['elapsed_wall']:.2f}",
            ] for entry in data["sweeps"]],
        ))
    if data["bench"]:
        parts.append("<h2>Bench trends (median wall seconds)</h2>")
        rows = []
        for scenario in sorted(data["bench"]):
            walls = data["bench"][scenario]
            ordered = sorted(walls)
            rows.append([
                scenario, len(walls), f"{walls[0]:.4f}",
                f"{min(walls):.4f}",
                f"{ordered[len(ordered) // 2]:.4f}",
                f"{walls[-1]:.4f}", sparkline(walls),
            ])
        parts.append(_html_table(
            ["Scenario", "Runs", "First", "Min", "Median", "Last",
             "Trend"],
            rows,
        ))
    for entry in data.get("cluster", []):
        parts.append(_html_cluster_section(entry))
    parts.append("</body></html>")
    return "".join(parts)
