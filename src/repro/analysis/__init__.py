"""Static analysis and runtime invariant checking for the reproduction.

The trustworthiness of every figure this package reproduces rests on two
properties nothing else enforces mechanically:

* **determinism** — two runs with the same seed must produce identical
  timelines (the simulator is deterministic by construction, but one
  stray wall-clock read or unseeded RNG call silently breaks it);
* **token conservation** — every token minted by the Token Generator is
  distributed exactly once and completed exactly once; lost or
  duplicated work units would corrupt throughput numbers without
  crashing anything.

Two complementary halves:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — an
  AST-based lint pass (``python -m repro.analysis lint src``) with
  codebase-specific rules (FELA001..FELA005) and ``# repro: noqa-RULE``
  suppression;
* :mod:`repro.analysis.invariants` — an opt-in runtime checker the
  :class:`~repro.core.runtime.FelaRuntime` and
  :class:`~repro.core.server.TokenServer` call into, raising a
  structured :class:`~repro.errors.InvariantViolation` on the first
  conservation or monotonicity breach.
"""

from repro.analysis.invariants import GradientLedger, InvariantChecker
from repro.analysis.linter import (
    Violation,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis.rules import LintRule, all_rules, get_rule

__all__ = [
    "GradientLedger",
    "InvariantChecker",
    "LintRule",
    "Violation",
    "all_rules",
    "format_json",
    "format_text",
    "get_rule",
    "lint_paths",
    "lint_source",
    "main",
]
