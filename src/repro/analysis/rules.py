"""Lint rules and the rule framework.

A rule is a small class declaring which AST node types it wants to see
(:attr:`LintRule.node_types`) and which files it applies to
(:meth:`LintRule.applies_to`).  The linter parses each file once, builds
a :class:`LintContext` (path scope + import resolution table), and
dispatches every node of the tree to the interested rules — one walk per
file regardless of how many rules are registered.

Rule ids are ``FELA###``.  ``FELA000`` is reserved for parse failures
reported by the linter itself.

The initial rule set targets the determinism contract of this codebase:

=========  =============================================================
FELA001    no wall-clock reads inside ``repro.sim`` / ``repro.core``
FELA002    no unseeded RNG (``random.*`` module functions, legacy
           ``numpy.random.*``) anywhere
FELA003    simulation processes must yield events, never bare literals
FELA004    no mutable default arguments
FELA005    no floating-point ``==`` in convergence/metrics/tuning code
FELA006    no direct multiprocessing outside ``repro.exec``
=========  =============================================================
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One lint finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )

    def to_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


class LintContext:
    """Per-file state shared by all rules: scope and import resolution."""

    def __init__(self, path: str, tree: ast.AST) -> None:
        self.path = path
        #: Module path inside the ``repro`` package, e.g.
        #: ``("repro", "sim", "events")``; files outside the package get
        #: their bare stem so path-scoped rules simply never match.
        self.module_parts = self._module_parts(path)
        #: local name -> dotted origin ("np" -> "numpy",
        #: "perf_counter" -> "time.perf_counter").
        self.imports: dict[str, str] = {}
        self._collect_imports(tree)

    @staticmethod
    def _module_parts(path: str) -> tuple[str, ...]:
        parts = path.replace("\\", "/").split("/")
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if "repro" in parts:
            return tuple(parts[parts.index("repro"):])
        return tuple(parts[-1:])

    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports cannot name stdlib clocks
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- queries rules use -------------------------------------------------

    def in_package(self, *packages: str) -> bool:
        """Whether this file lives under any dotted ``repro.x`` package."""
        dotted = ".".join(self.module_parts)
        return any(
            dotted == pkg or dotted.startswith(pkg + ".")
            for pkg in packages
        )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of an attribute/name chain, through imports.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a bare ``perf_counter`` resolves to
        ``time.perf_counter`` under ``from time import perf_counter``.
        Locally defined names resolve to ``None`` (never flagged).
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


class LintRule(abc.ABC):
    """One lint rule: node interest + file scope + the check itself."""

    rule_id: _t.ClassVar[str]
    summary: _t.ClassVar[str]
    node_types: _t.ClassVar[tuple[type[ast.AST], ...]]

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    @abc.abstractmethod
    def check_node(
        self, node: ast.AST, ctx: LintContext
    ) -> _t.Iterator[Violation]:
        """Yield violations for one AST node."""

    def violation(
        self, ctx: LintContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[LintRule, ...]:
    """Every registered rule, in rule-id order."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> LintRule:
    if rule_id not in _REGISTRY:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[rule_id]


# ---------------------------------------------------------------------------
# The FELA rule set.
# ---------------------------------------------------------------------------

#: Callables that read the host's wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(LintRule):
    """FELA001: simulation code must use the event-loop clock.

    ``Environment.now`` is the only clock the simulator may observe;
    reading the host's wall clock makes timelines irreproducible.
    """

    rule_id = "FELA001"
    summary = (
        "no wall-clock reads (time.time/perf_counter/datetime.now) in "
        "repro.sim / repro.core; use the event-loop clock (env.now)"
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro.sim", "repro.core")

    def check_node(self, node, ctx):
        assert isinstance(node, ast.Call)
        origin = ctx.resolve(node.func)
        if origin in _WALL_CLOCK:
            yield self.violation(
                ctx,
                node,
                f"wall-clock call {origin}() in simulation code; "
                "use the event-loop clock (env.now) instead",
            )


#: ``numpy.random`` attributes that are part of the seedable new-style
#: API (everything else on the module is the legacy global-state API).
_NUMPY_RANDOM_ALLOWED = frozenset({"default_rng"})


@register
class UnseededRandomRule(LintRule):
    """FELA002: all randomness must flow from an explicit seed.

    Module-level ``random.*`` functions and the legacy ``numpy.random.*``
    API draw from hidden global state; use ``random.Random(seed)`` or
    ``numpy.random.default_rng(seed)`` threaded from configuration.
    """

    rule_id = "FELA002"
    summary = (
        "no unseeded RNG: random.* module functions and legacy "
        "numpy.random.* are banned; thread a seeded generator instead"
    )
    node_types = (ast.Call,)

    def check_node(self, node, ctx):
        assert isinstance(node, ast.Call)
        origin = ctx.resolve(node.func)
        if origin is None:
            return
        if origin.startswith("random."):
            attr = origin[len("random."):]
            # Seedable generator classes (Random, SystemRandom) are the
            # sanctioned pattern; module-level functions are not.
            if "." not in attr and not attr[:1].isupper():
                yield self.violation(
                    ctx,
                    node,
                    f"{origin}() uses the global RNG; construct "
                    "random.Random(seed) with a seed from configuration",
                )
        elif origin.startswith("numpy.random."):
            attr = origin[len("numpy.random."):]
            if (
                "." not in attr
                and not attr[:1].isupper()
                and attr not in _NUMPY_RANDOM_ALLOWED
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy numpy.random API {origin}(); use "
                    "numpy.random.default_rng(seed) instead",
                )


@register
class SimProtocolRule(LintRule):
    """FELA003: simulation processes yield events, not values.

    A generator registered with the event loop communicates only by
    yielding :class:`~repro.sim.events.Event` objects; yielding a bare
    literal or a container display deadlocks or crashes the process at
    runtime, so catch it at lint time.
    """

    rule_id = "FELA003"
    summary = (
        "generators in simulation packages must yield events; literal "
        "or container yields are protocol violations"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _BAD_YIELD = (
        ast.Constant,
        ast.List,
        ast.Tuple,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
        ast.GeneratorExp,
        ast.JoinedStr,
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.sim",
            "repro.core",
            "repro.net",
            "repro.hardware",
            "repro.baselines",
        )

    def check_node(self, node, ctx):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for yield_node in self._own_yields(node):
            value = yield_node.value
            if value is None:
                yield self.violation(
                    ctx,
                    yield_node,
                    "bare 'yield' in a simulation process; processes "
                    "must yield Event objects",
                )
            elif isinstance(value, self._BAD_YIELD):
                yield self.violation(
                    ctx,
                    yield_node,
                    "simulation process yields a literal/container, not "
                    "an Event; yield env.timeout(...)/env.event()/... "
                    "instead",
                )

    @staticmethod
    def _own_yields(func: ast.AST) -> _t.Iterator[ast.Yield]:
        """Yield nodes belonging to ``func`` itself, not nested defs."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Yield):
                yield node
            stack.extend(ast.iter_child_nodes(node))


@register
class MutableDefaultRule(LintRule):
    """FELA004: no mutable default arguments."""

    rule_id = "FELA004"
    summary = "no mutable default arguments (list/dict/set displays)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_DISPLAYS = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )
    _MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check_node(self, node, ctx):
        assert isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        args = node.args
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                yield self.violation(
                    ctx,
                    default,
                    "mutable default argument; default to None and "
                    "create the container inside the function",
                )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, self._MUTABLE_DISPLAYS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CONSTRUCTORS
            and not node.args
            and not node.keywords
        )


@register
class FloatEqualityRule(LintRule):
    """FELA005: metrics code must not compare floats with ``==``.

    Comparisons against float literals in convergence/metrics/tuning
    code hide accumulated rounding error; use ``math.isclose`` or an
    explicit tolerance.  Comparisons against ``float("inf")`` /
    ``math.inf`` are exact and therefore not flagged.
    """

    rule_id = "FELA005"
    summary = (
        "no floating-point ==/!= against float literals in "
        "convergence/metrics/tuning code; use math.isclose"
    )
    node_types = (ast.Compare,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package(
            "repro.convergence", "repro.metrics", "repro.tuning"
        )

    def check_node(self, node, ctx):
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, (left, right) in zip(
            node.ops, zip(operands, operands[1:])
        ):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"float equality against literal "
                        f"{operand.value!r}; use math.isclose or an "
                        "explicit tolerance",
                    )
                    break


#: Module prefixes that spawn OS processes or threads directly.
_PROCESS_POOL_MODULES = ("multiprocessing", "concurrent.futures")


@register
class ProcessPoolRule(LintRule):
    """FELA006: process fan-out lives in ``repro.exec`` only.

    ``repro.exec.SweepExecutor`` is the one sanctioned multiprocessing
    site: it pins the spawn start method, re-orders results to match
    job order, and routes every computed value through the persistent
    result cache.  A second, private pool elsewhere in the package
    would bypass all three guarantees, so importing or invoking
    ``multiprocessing`` / ``concurrent.futures`` anywhere else in
    ``repro`` is flagged.
    """

    rule_id = "FELA006"
    summary = (
        "no direct multiprocessing/concurrent.futures use outside "
        "repro.exec; go through repro.exec.SweepExecutor"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("repro.exec")

    @staticmethod
    def _is_pool_module(dotted: str) -> bool:
        return any(
            dotted == mod or dotted.startswith(mod + ".")
            for mod in _PROCESS_POOL_MODULES
        )

    def check_node(self, node, ctx):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if self._is_pool_module(alias.name):
                    yield self.violation(
                        ctx,
                        node,
                        f"import of {alias.name!r} outside repro.exec; "
                        "fan work out through repro.exec.SweepExecutor",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and self._is_pool_module(
                node.module
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"import from {node.module!r} outside repro.exec; "
                    "fan work out through repro.exec.SweepExecutor",
                )
        else:
            assert isinstance(node, ast.Call)
            origin = ctx.resolve(node.func)
            if origin is not None and self._is_pool_module(origin):
                yield self.violation(
                    ctx,
                    node,
                    f"{origin}() spawns workers outside repro.exec; "
                    "use repro.exec.SweepExecutor instead",
                )
