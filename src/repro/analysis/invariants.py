"""Runtime invariant checking for the token machinery and the simulator.

An :class:`InvariantChecker` is handed to
:class:`~repro.core.runtime.FelaRuntime` (and through it to the
:class:`~repro.core.server.TokenServer`); it is **off by default** and
costs nothing when absent.  With a checker attached, every token
lifecycle transition, every gradient synchronization, and every event-
loop step is validated against the conservation laws the paper's
accounting relies on:

* **token conservation** — at all times
  ``minted == buffered + in-flight + completed`` and the buffered count
  matches the Token Bucket's actual size, across the ADS/HF/CTD
  distribution paths; a token is distributed exactly once and completed
  exactly once;
* **iteration hygiene** — an iteration may only close once every one of
  its tokens completed, with per-level counts matching the configured
  ``token_counts()``;
* **clock monotonicity** — the event loop's timestamps never move
  backwards (:meth:`InvariantChecker.attach_env` installs a step
  monitor on the :class:`~repro.sim.core.Environment`);
* **gradient-bucket accounting** — each (iteration, level) is ring-
  synchronized exactly once, only after the level completed, and the
  bytes the collective put on the wire match the
  ``2 * (k-1)/k * size`` ledger expectation (see
  :class:`GradientLedger`, fed by
  :func:`repro.core.collectives.ring_allreduce`).

The first breach raises :class:`~repro.errors.InvariantViolation`
carrying a serializable snapshot of the checker's counters.
"""

from __future__ import annotations

import typing as _t

from repro.errors import InvariantViolation

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.config import FelaConfig
    from repro.core.server import TokenServer
    from repro.core.tokens import Token
    from repro.sim.core import Environment
    from repro.sim.events import Event

#: Token lifecycle states tracked per token id.
_BUFFERED = "buffered"
_ASSIGNED = "assigned"
_COMPLETED = "completed"

#: Relative tolerance for wire-byte accounting (floating chunk sizes).
_BYTES_RTOL = 1e-9


class GradientLedger:
    """Open/close accounting for gradient collectives.

    :func:`~repro.core.collectives.ring_allreduce` opens an entry before
    its first round and closes it with the bytes actually put on the
    wire; the ledger checks the total against the analytic
    ``2 * (k-1)/k * size`` per participant and remembers unclosed
    entries so a sync that silently died mid-run is caught at run end.
    """

    def __init__(self) -> None:
        self._next_handle = 0
        #: handle -> (context, expected wire bytes).
        self.open_entries: dict[int, tuple[_t.Any, float]] = {}
        self.closed = 0
        self.bytes_expected = 0.0
        self.bytes_observed = 0.0

    def open(
        self,
        workers: _t.Sequence[int],
        size_bytes: float,
        context: _t.Any = None,
    ) -> int:
        k = len(workers)
        expected = (
            2 * (k - 1) * size_bytes if k > 1 and size_bytes > 0 else 0.0
        )
        handle = self._next_handle
        self._next_handle += 1
        self.open_entries[handle] = (context, expected)
        return handle

    def close(self, handle: int, wire_bytes: float) -> None:
        if handle not in self.open_entries:
            raise InvariantViolation(
                "gradient collective closed twice or never opened",
                snapshot={"handle": handle, "closed": self.closed},
            )
        context, expected = self.open_entries.pop(handle)
        tolerance = _BYTES_RTOL * max(expected, 1.0)
        if abs(wire_bytes - expected) > tolerance:
            raise InvariantViolation(
                "gradient collective moved unexpected byte volume",
                snapshot={
                    "context": repr(context),
                    "expected_bytes": expected,
                    "observed_bytes": wire_bytes,
                },
            )
        self.closed += 1
        self.bytes_expected += expected
        self.bytes_observed += wire_bytes

    def assert_drained(self) -> None:
        if self.open_entries:
            raise InvariantViolation(
                "gradient collectives still open at run end",
                snapshot={
                    "open": [
                        repr(context)
                        for context, _ in self.open_entries.values()
                    ]
                },
            )


class InvariantChecker:
    """Validates token conservation and scheduling invariants at run time.

    Construct one per run and pass it to ``FelaRuntime(...,
    invariants=checker)``.  All hook methods are cheap (O(1) except at
    iteration/run boundaries) so tests can leave the checker on for
    full experiments.
    """

    def __init__(self) -> None:
        self.config: "FelaConfig | None" = None
        self.ledger = GradientLedger()
        #: tid -> lifecycle state.
        self._state: dict[int, str] = {}
        #: tid -> (iteration, level).
        self._token_info: dict[int, tuple[int, int]] = {}
        #: (iteration, level) -> counters.  ``minted``/``assigned``/
        #: ``completed`` are *gross* event counts; the fault-recovery
        #: counters below reconcile them to net populations (a re-minted
        #: token is assigned and completed twice, an invalidated token
        #: was minted but never finishes).
        self._minted: dict[tuple[int, int], int] = {}
        self._assigned: dict[tuple[int, int], int] = {}
        self._completed: dict[tuple[int, int], int] = {}
        self._reclaimed: dict[tuple[int, int], int] = {}
        self._reminted: dict[tuple[int, int], int] = {}
        self._invalidated: dict[tuple[int, int], int] = {}
        self._revoked: dict[tuple[int, int], int] = {}
        self._buffered_count = 0
        self._inflight_count = 0
        self._num_workers = 0
        self._closed_iterations: set[int] = set()
        self._synced_levels: set[tuple[int, int]] = set()
        self._last_clock = float("-inf")
        #: Total hook invocations (for tests / reporting).
        self.checks = 0

    # -- wiring --------------------------------------------------------------

    def bind(self, config: "FelaConfig") -> None:
        """Attach the run configuration (done by the TokenServer)."""
        self.config = config
        self._num_workers = max(self._num_workers, config.num_workers)

    def attach_env(self, env: "Environment") -> None:
        """Install the clock-monotonicity monitor on the event loop."""
        env.attach_monitor(self._on_step)

    def _on_step(self, now: float, event: "Event") -> None:
        self.checks += 1
        if now < self._last_clock:
            self._fail(
                "event loop time moved backwards",
                now=now,
                previous=self._last_clock,
                event=repr(event),
            )
        self._last_clock = now

    # -- token lifecycle hooks ----------------------------------------------

    def on_minted(self, token: "Token") -> None:
        self.checks += 1
        if token.iteration in self._closed_iterations:
            self._fail(
                "token minted into an already-ended iteration",
                token=repr(token),
            )
        if token.tid in self._state:
            self._fail(
                "token minted twice",
                token=repr(token),
                state=self._state[token.tid],
            )
        self._state[token.tid] = _BUFFERED
        self._token_info[token.tid] = (token.iteration, token.level)
        key = (token.iteration, token.level)
        self._minted[key] = self._minted.get(key, 0) + 1
        self._buffered_count += 1

    def on_assigned(self, token: "Token", wid: int) -> None:
        self.checks += 1
        state = self._state.get(token.tid)
        if state is None:
            self._fail(
                "token distributed before it was minted",
                token=repr(token),
                worker=wid,
            )
        if state != _BUFFERED:
            self._fail(
                "token distributed twice (duplicated work unit)",
                token=repr(token),
                worker=wid,
                state=state,
            )
        self._state[token.tid] = _ASSIGNED
        key = (token.iteration, token.level)
        self._assigned[key] = self._assigned.get(key, 0) + 1
        self._buffered_count -= 1
        self._inflight_count += 1

    def on_completed(self, token: "Token", wid: int) -> None:
        self.checks += 1
        state = self._state.get(token.tid)
        if state != _ASSIGNED:
            self._fail(
                "token completed without being assigned "
                "(lost or duplicated work unit)",
                token=repr(token),
                worker=wid,
                state=state,
            )
        self._state[token.tid] = _COMPLETED
        key = (token.iteration, token.level)
        self._completed[key] = self._completed.get(key, 0) + 1
        self._inflight_count -= 1

    # -- fault-recovery hooks -------------------------------------------------

    def on_reclaimed(self, token: "Token") -> None:
        """An in-flight token taken back from a dead worker's hands."""
        self.checks += 1
        state = self._state.get(token.tid)
        if state != _ASSIGNED:
            self._fail(
                "token reclaimed without being assigned",
                token=repr(token),
                state=state,
            )
        self._state[token.tid] = _BUFFERED
        key = (token.iteration, token.level)
        self._reclaimed[key] = self._reclaimed.get(key, 0) + 1
        self._inflight_count -= 1
        self._buffered_count += 1

    def on_reminted(self, token: "Token") -> None:
        """A completed token whose only activation copy died: back to
        the bucket for retraining."""
        self.checks += 1
        state = self._state.get(token.tid)
        if state != _COMPLETED:
            self._fail(
                "token re-minted without being completed",
                token=repr(token),
                state=state,
            )
        self._state[token.tid] = _BUFFERED
        key = (token.iteration, token.level)
        self._reminted[key] = self._reminted.get(key, 0) + 1
        self._buffered_count += 1

    def on_invalidated(self, token: "Token", was_assigned: bool) -> None:
        """A downstream consumer withdrawn because a dependency died.

        The generator will mint a *fresh* replacement once the missing
        dependencies are re-trained, so the invalidated token leaves the
        ledger entirely.
        """
        self.checks += 1
        state = self._state.get(token.tid)
        expected = _ASSIGNED if was_assigned else _BUFFERED
        if state != expected:
            self._fail(
                "token invalidated from an unexpected state",
                token=repr(token),
                state=state,
                expected=expected,
            )
        del self._state[token.tid]
        del self._token_info[token.tid]
        key = (token.iteration, token.level)
        self._invalidated[key] = self._invalidated.get(key, 0) + 1
        if was_assigned:
            self._revoked[key] = self._revoked.get(key, 0) + 1
            self._inflight_count -= 1
        else:
            self._buffered_count -= 1

    def on_worker_joined(self, wid: int) -> None:
        """An elastic worker joined mid-run; widen the participant set."""
        self.checks += 1
        self._num_workers = max(self._num_workers, wid + 1)

    def verify_conservation(self, server: "TokenServer") -> None:
        """The core conservation law, cross-checked against the bucket.

        ``minted == buffered + in-flight + completed`` holds by counter
        construction; the load-bearing check is that the checker's
        buffered count matches the Token Bucket's real size — a token
        the bucket lost (or holds twice) breaks the equality.
        """
        self.checks += 1
        bucket_size = len(server.bucket)
        if bucket_size != self._buffered_count:
            self._fail(
                "token bucket size disagrees with conservation ledger",
                bucket_size=bucket_size,
                buffered=self._buffered_count,
            )
        if self._inflight_count < 0 or self._buffered_count < 0:
            self._fail("negative token population")

    # -- iteration / run boundaries ------------------------------------------

    def on_iteration_end(
        self, iteration: int, server: "TokenServer"
    ) -> None:
        self.checks += 1
        if iteration in self._closed_iterations:
            self._fail("iteration ended twice", iteration=iteration)
        expected = (
            self.config.token_counts() if self.config is not None else None
        )
        stale = [
            tid
            for tid, (it, _level) in self._token_info.items()
            if it == iteration
        ]
        for tid in stale:
            if self._state[tid] != _COMPLETED:
                self._fail(
                    "iteration ended with an unfinished token",
                    iteration=iteration,
                    tid=tid,
                    state=self._state[tid],
                )
        if expected is not None:
            for level, count in enumerate(expected):
                key = (iteration, level)
                # Net populations: recovery sweeps assign and complete
                # re-minted tokens again, and invalidated consumers are
                # replaced by fresh mints.
                nets = (
                    (
                        "minted",
                        self._minted.get(key, 0)
                        - self._invalidated.get(key, 0),
                    ),
                    (
                        "distributed",
                        self._assigned.get(key, 0)
                        - self._reclaimed.get(key, 0)
                        - self._revoked.get(key, 0)
                        - self._reminted.get(key, 0),
                    ),
                    (
                        "completed",
                        self._completed.get(key, 0)
                        - self._reminted.get(key, 0),
                    ),
                )
                for name, net in nets:
                    if net != count:
                        self._fail(
                            f"iteration closed with wrong {name} count",
                            iteration=iteration,
                            level=level,
                            expected=count,
                            actual=net,
                        )
        for token in server.bucket.all_tokens():
            if token.iteration == iteration:
                self._fail(
                    "ended iteration left a token in the bucket",
                    iteration=iteration,
                    token=repr(token),
                )
        self._closed_iterations.add(iteration)
        for tid in stale:
            del self._state[tid]
            del self._token_info[tid]

    def on_sync_start(
        self,
        iteration: int,
        level: int,
        participants: _t.Sequence[int],
    ) -> None:
        self.checks += 1
        key = (iteration, level)
        if key in self._synced_levels:
            self._fail(
                "level synchronized twice",
                iteration=iteration,
                level=level,
            )
        if len(set(participants)) != len(participants):
            self._fail(
                "duplicate workers in synchronization",
                iteration=iteration,
                level=level,
                participants=list(participants),
            )
        net_completed = self._completed.get(key, 0) - self._reminted.get(
            key, 0
        )
        net_minted = self._minted.get(key, 0) - self._invalidated.get(
            key, 0
        )
        if net_completed != net_minted:
            self._fail(
                "synchronization started before the level completed",
                iteration=iteration,
                level=level,
                completed=net_completed,
                minted=net_minted,
            )
        if self.config is not None:
            workers = range(self._num_workers)
            if not set(participants).issubset(workers):
                self._fail(
                    "synchronization includes unknown workers",
                    iteration=iteration,
                    level=level,
                    participants=list(participants),
                )
        self._synced_levels.add(key)

    def on_run_end(self, server: "TokenServer") -> None:
        self.checks += 1
        self.verify_conservation(server)
        if self._inflight_count:
            self._fail(
                "run ended with tokens still in flight",
                in_flight=self._inflight_count,
            )
        if self._buffered_count:
            self._fail(
                "run ended with tokens still buffered",
                buffered=self._buffered_count,
            )
        levels = self.config.levels if self.config is not None else 0
        for iteration in self._closed_iterations:
            for level in range(levels):
                if (iteration, level) not in self._synced_levels:
                    self._fail(
                        "iteration closed without synchronizing a level",
                        iteration=iteration,
                        level=level,
                    )
        self.ledger.assert_drained()

    # -- internals ------------------------------------------------------------

    def snapshot(self) -> dict[str, _t.Any]:
        """Serializable view of the checker's counters (for debugging)."""
        return {
            "buffered": self._buffered_count,
            "in_flight": self._inflight_count,
            "minted_total": sum(self._minted.values()),
            "completed_total": sum(self._completed.values()),
            "reclaimed_total": sum(self._reclaimed.values()),
            "reminted_total": sum(self._reminted.values()),
            "invalidated_total": sum(self._invalidated.values()),
            "revoked_total": sum(self._revoked.values()),
            "closed_iterations": sorted(self._closed_iterations),
            "synced_levels": sorted(self._synced_levels),
            "collectives_closed": self.ledger.closed,
            "checks": self.checks,
        }

    def _fail(self, message: str, **details: _t.Any) -> _t.NoReturn:
        snapshot = self.snapshot()
        snapshot.update(details)
        raise InvariantViolation(message, snapshot=snapshot)
