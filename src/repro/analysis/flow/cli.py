"""Command-line driver for the flow analyzer.

Shared by ``repro analyze --flow`` and ``python -m repro.analysis flow``
so both entry points have identical flags, formats, and exit codes:

* ``0`` — clean (reporting mode), or no *new* findings under
  ``--fail-on-new``;
* ``1`` — ``--fail-on-new`` and at least one non-baselined finding;
* ``2`` — usage error (still rendered in the requested format, so JSON
  consumers never receive bare text).
"""

from __future__ import annotations

import argparse
import json
import typing as _t

from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.engine import FlowReport, analyze_paths
from repro.analysis.flow.rules import FLOW_RULES, FlowFinding
from repro.analysis.flow.sarif import render_sarif
from repro.analysis.linter import PARSE_ERROR_RULE, format_error
from repro.exec.cache import ResultCache, default_cache_dir


def add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the flow-analysis flags on a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"accepted-findings file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into --baseline and exit 0",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help="exit 1 when any finding is missing from the baseline",
    )
    parser.add_argument(
        "--sarif-out",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental per-file facts cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="facts cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )


def _format_text(
    report: FlowReport,
    new: _t.Sequence[FlowFinding],
    baselined: _t.Sequence[FlowFinding],
) -> str:
    accepted = {id(f) for f in baselined}
    lines = []
    for finding in report.findings:
        suffix = " [baselined]" if id(finding) in accepted else ""
        lines.append(finding.render() + suffix)
    lines.append(
        f"{len(report.findings)} finding"
        f"{'s' if len(report.findings) != 1 else ''} "
        f"({len(new)} new, {len(baselined)} baselined) across "
        f"{report.files} files / {report.functions} functions "
        f"[cache: {report.cache_hits} hits, "
        f"{report.cache_misses} misses]"
    )
    return "\n".join(lines)


def _format_json(
    report: FlowReport,
    new: _t.Sequence[FlowFinding],
    baselined: _t.Sequence[FlowFinding],
) -> str:
    accepted = {id(f) for f in baselined}
    findings = []
    for finding in report.findings:
        entry = finding.to_dict()
        entry["baselined"] = id(finding) in accepted
        findings.append(entry)
    return json.dumps(
        {
            "findings": findings,
            "count": len(report.findings),
            "new": len(new),
            "baselined": len(baselined),
            "files": report.files,
            "functions": report.functions,
            "cache": {
                "hits": report.cache_hits,
                "misses": report.cache_misses,
            },
        },
        indent=2,
        sort_keys=True,
    )


def _all_rules() -> dict[str, str]:
    from repro.analysis.rules import all_rules

    catalog = dict(FLOW_RULES)
    catalog[PARSE_ERROR_RULE] = "file could not be parsed"
    for rule in all_rules():
        catalog.setdefault(rule.rule_id, rule.summary)
    return catalog


def run_flow(
    paths: _t.Sequence[str],
    output_format: str = "text",
    baseline_path: str = DEFAULT_BASELINE,
    write_baseline_file: bool = False,
    fail_on_new: bool = False,
    sarif_out: str | None = None,
    cache: ResultCache | None = None,
) -> tuple[str, int]:
    """Run the flow analysis; return (report text, exit code)."""
    try:
        report = analyze_paths(paths, cache=cache)
        if write_baseline_file:
            count = write_baseline(
                baseline_path, report.findings, report.sources
            )
            return (
                f"wrote {count} finding"
                f"{'s' if count != 1 else ''} to {baseline_path}",
                0,
            )
        accepted = load_baseline(baseline_path)
    except (FileNotFoundError, ValueError, OSError) as exc:
        return format_error(str(exc), output_format), 2
    new, baselined = partition(report.findings, report.sources, accepted)
    if sarif_out is not None:
        with open(sarif_out, "w", encoding="utf-8") as handle:
            handle.write(
                render_sarif(report.findings, _all_rules(), baselined)
            )
            handle.write("\n")
    if output_format == "json":
        text = _format_json(report, new, baselined)
    elif output_format == "sarif":
        text = render_sarif(report.findings, _all_rules(), baselined)
    else:
        text = _format_text(report, new, baselined)
    return text, 1 if (fail_on_new and new) else 0


def run_flow_args(args: argparse.Namespace) -> tuple[str, int]:
    """Adapter from parsed argparse flags to :func:`run_flow`."""
    cache: ResultCache | None = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return run_flow(
        args.paths,
        output_format=args.format,
        baseline_path=args.baseline,
        write_baseline_file=args.write_baseline,
        fail_on_new=args.fail_on_new,
        sarif_out=args.sarif_out,
        cache=cache,
    )
