"""The FELA1xx flow-rule series, evaluated over a whole program.

Unlike the syntactic FELA001-006 rules (one file, one AST walk), these
rules consume the global model built by
:mod:`repro.analysis.flow.callgraph`: interprocedural taint, the call
graph, class hierarchy, and per-function summaries.  Each evaluator is
a pure function from the model to findings, and every finding carries
the call chain (``trace``) that justifies it, so a report reads as an
explanation rather than a pattern match.

=========  =============================================================
FELA101    a nondeterministic value (wall clock, host environment,
           unseeded RNG) reaches simulation time — directly or
           laundered through any number of helper calls
FELA102    iteration over an unordered ``set`` / order-fragile dict
           view feeds scheduling-order-sensitive state
FELA103    a JobSpec construction captures an unpicklable or unseeded
           value, breaking byte-identical parallel sweeps
FELA104    a sim-process ``yield`` resolves to a plain value, not an
           Event (the flow-sensitive upgrade of FELA003)
FELA105    a resource is acquired in a generator and never released or
           cancelled on any path (leak / deadlock candidate)
=========  =============================================================
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.flow.callgraph import (
    EVENT_ROOTS,
    JOBSPEC_ROOTS,
    CallGraph,
    Program,
    event_kinds,
    resolve_atoms,
    return_taint,
    state_closure,
)
from repro.analysis.flow.facts import SIM_PACKAGES, in_packages

#: Rule id -> one-line summary (drives --list-rules and SARIF metadata).
FLOW_RULES: dict[str, str] = {
    "FELA101": (
        "no nondeterministic value (wall clock, host env, unseeded RNG) "
        "may reach simulation time, even through helper calls"
    ),
    "FELA102": (
        "no unordered set/dict-view iteration may feed "
        "scheduling-order-sensitive simulation state"
    ),
    "FELA103": (
        "JobSpec constructions must not capture unpicklable or "
        "unseeded values (breaks byte-identical parallel sweeps)"
    ),
    "FELA104": (
        "every sim-process yield must resolve to an Event/Timeout/"
        "Condition (flow-sensitive FELA003)"
    ),
    "FELA105": (
        "resources acquired in a simulation generator must be "
        "released or cancelled on every path"
    ),
}


@dataclasses.dataclass(frozen=True, order=True)
class FlowFinding:
    """One flow-analysis finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Call chain justifying the finding, outermost first.
    trace: tuple[str, ...] = ()

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )
        if self.trace:
            text += f" [via {' -> '.join(self.trace)}]"
        return text

    def to_dict(self) -> dict[str, _t.Any]:
        data = dataclasses.asdict(self)
        data["trace"] = list(self.trace)
        return data


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain) if chain else "this expression"


def evaluate(program: Program) -> list[FlowFinding]:
    """Run every flow rule; returns deduplicated, sorted findings."""
    graph = CallGraph(program)
    taint = return_taint(program)
    events = event_kinds(program)
    stateful = state_closure(program, graph)
    findings: set[FlowFinding] = set()
    findings.update(_fela101(program, taint))
    findings.update(_fela102(program, stateful))
    findings.update(_fela103(program))
    findings.update(_fela104(program, events))
    findings.update(_fela105(program))
    return sorted(findings)


# -- FELA101 -----------------------------------------------------------------


def _fela101(
    program: Program, taint: _t.Any
) -> _t.Iterator[FlowFinding]:
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        if not in_packages(facts.module, SIM_PACKAGES):
            continue
        for sink in facts.sinks:
            if sink.sink != "sim-time":
                continue
            kinds = resolve_atoms(sink.atoms, program, taint)
            for kind in sorted(kinds):
                chain = kinds[kind]
                yield FlowFinding(
                    path=facts_path(program, facts),
                    line=sink.line,
                    col=sink.col,
                    rule_id="FELA101",
                    message=(
                        f"{kind} value reaches simulation time via "
                        f"{sink.detail}(); derive delays from "
                        "simulated state, not the host"
                    ),
                    trace=chain or (qualname,),
                )


# -- FELA102 -----------------------------------------------------------------


def _fela102(
    program: Program, stateful: set[str]
) -> _t.Iterator[FlowFinding]:
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        if not facts.module.startswith("repro"):
            continue
        for loop in facts.loops:
            noun = (
                "unordered set" if loop.kind == "set"
                else "order-fragile dict view"
            )
            via = next(
                (
                    resolved.qualname
                    for callee in loop.body_calls
                    if (resolved := program.resolve_function(callee))
                    is not None and resolved.qualname in stateful
                ),
                None,
            )
            if loop.body_sink or via is not None:
                message = (
                    f"iteration over {noun} ({loop.desc}) feeds "
                    "scheduling-order-sensitive state; iterate "
                    "sorted(...) or an insertion-ordered structure"
                )
            else:
                message = (
                    f"iteration order over {noun} ({loop.desc}) "
                    "escapes this loop; sort it, or baseline this "
                    "site if the consumer is order-insensitive"
                )
            yield FlowFinding(
                path=facts_path(program, facts),
                line=loop.line,
                col=loop.col,
                rule_id="FELA102",
                message=message,
                trace=(qualname,) + ((via,) if via else ()),
            )


# -- FELA103 -----------------------------------------------------------------


def _fela103(program: Program) -> _t.Iterator[FlowFinding]:
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        for ctor in facts.ctors:
            if not program.derives_from(ctor.callee, JOBSPEC_ROOTS):
                continue
            for bad in ctor.bad:
                yield FlowFinding(
                    path=facts_path(program, facts),
                    line=ctor.line,
                    col=ctor.col,
                    rule_id="FELA103",
                    message=(
                        f"JobSpec {ctor.callee.rsplit('.', 1)[-1]} "
                        f"argument {bad.param!r} captures a "
                        f"{bad.reason}; job specs must be picklable "
                        "and fully seeded to fan out byte-identically"
                    ),
                    trace=(qualname, ctor.callee),
                )


# -- FELA104 -----------------------------------------------------------------


def _fela104(
    program: Program, events: dict[str, str]
) -> _t.Iterator[FlowFinding]:
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        if not facts.is_generator:
            continue
        for yielded in facts.yields_:
            message: str | None = None
            trace: tuple[str, ...] = (qualname,)
            if yielded.kind in ("value", "set", "dict-view"):
                message = (
                    "sim process yields a plain value on this path; "
                    "every yield must produce an Event "
                    "(env.timeout/env.event/...)"
                )
            elif yielded.kind.startswith("call:"):
                callee = program.resolve_function(
                    yielded.kind[len("call:"):]
                )
                if (
                    callee is not None
                    and events.get(callee.qualname) == "value"
                ):
                    message = (
                        f"sim process yields the return of "
                        f"{callee.qualname}(), which returns a plain "
                        "value, never an Event"
                    )
                    trace = (qualname, callee.qualname)
            elif yielded.kind.startswith("class:"):
                target = yielded.kind[len("class:"):]
                if target in program.classes and not program.derives_from(
                    target, EVENT_ROOTS
                ):
                    message = (
                        f"sim process yields a {target} instance, "
                        "which is not an Event subclass"
                    )
                    trace = (qualname, target)
            if message is not None:
                yield FlowFinding(
                    path=facts_path(program, facts),
                    line=yielded.line,
                    col=yielded.col,
                    rule_id="FELA104",
                    message=message,
                    trace=trace,
                )


# -- FELA105 -----------------------------------------------------------------


def _fela105(program: Program) -> _t.Iterator[FlowFinding]:
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        if not facts.is_generator:
            continue
        if not in_packages(facts.module, SIM_PACKAGES):
            continue
        for acquire in facts.acquires:
            if acquire.released:
                continue
            yield FlowFinding(
                path=facts_path(program, facts),
                line=acquire.line,
                col=acquire.col,
                rule_id="FELA105",
                message=(
                    f"{acquire.receiver}.request() result "
                    f"{acquire.var!r} is never released or cancelled "
                    "in this generator; a crash or early return leaks "
                    "the resource (use 'with ...request() as ...:')"
                ),
                trace=(qualname,),
            )


def facts_path(program: Program, facts: _t.Any) -> str:
    """File path owning a function (module facts carry the path)."""
    for module in program.modules:
        if module.module == facts.module:
            return module.path
    return facts.module  # pragma: no cover - defensive
