"""The flow-analysis driver: file walking, caching, noqa, reporting.

``analyze_paths`` is the one entry point: it expands paths into files,
obtains per-file facts (from the incremental cache when the content
hash matches, from a fresh parse otherwise), assembles the
whole-program model, evaluates every FELA1xx rule, and filters
``# repro: noqa-RULE`` suppressions.  The interprocedural phase always
re-runs — it is cheap — so a warm run re-parses *only* changed files,
which is what the reported ``cache_hits`` / ``cache_misses`` verify.

The cache tier is the PR 5 :class:`repro.exec.cache.ResultCache`:
facts are keyed by :func:`repro.exec.cache.canonical_key` over the
file's content hash plus :data:`~repro.analysis.flow.facts.FLOW_SCHEMA`,
so editing a file — or changing the extraction semantics — invalidates
exactly the entries it must.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
import typing as _t

from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.facts import (
    FLOW_SCHEMA,
    ModuleFacts,
    extract_module_facts,
)
from repro.analysis.flow.rules import FlowFinding, evaluate
from repro.analysis.linter import (
    PARSE_ERROR_RULE,
    _noqa_map,
    iter_python_files,
)
from repro.exec.cache import ResultCache, canonical_key


@dataclasses.dataclass
class FlowReport:
    """Everything one flow-analysis run produced."""

    findings: list[FlowFinding]
    files: int
    functions: int
    cache_hits: int
    cache_misses: int
    #: path -> source text (consumed by baseline fingerprinting).
    sources: dict[str, str]

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def facts_cache_key(source: str, path: str) -> str:
    """Content-addressed key for one file's extracted facts."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return canonical_key(
        "flow-facts",
        {"sha256": digest, "path": path, "flow_schema": FLOW_SCHEMA},
    )


def _facts_for(
    source: str, path: str, cache: ResultCache | None
) -> tuple[ModuleFacts, bool]:
    """(facts, was_cache_hit) for one file; raises SyntaxError."""
    if cache is None:
        return extract_module_facts(source, path), False
    key = facts_cache_key(source, path)
    cached = cache.get(key, decode=ModuleFacts.from_dict)
    if cached is not None:
        return cached, True
    facts = extract_module_facts(source, path)
    cache.put(key, facts, encode=ModuleFacts.to_dict)
    return facts, False


def _suppressed(
    finding: FlowFinding, noqa: dict[int, frozenset[str] | None]
) -> bool:
    rules = noqa.get(finding.line, "absent")
    if rules == "absent":
        return False
    return rules is None or finding.rule_id in rules


def analyze_paths(
    paths: _t.Iterable[str | pathlib.Path],
    cache: ResultCache | None = None,
) -> FlowReport:
    """Run the whole-program flow analysis over files/directories."""
    modules: list[ModuleFacts] = []
    sources: dict[str, str] = {}
    parse_errors: list[FlowFinding] = []
    hits = misses = 0
    files = iter_python_files(paths)
    for file_path in files:
        path = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        sources[path] = source
        try:
            facts, hit = _facts_for(source, path, cache)
        except SyntaxError as exc:
            parse_errors.append(
                FlowFinding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            misses += 1
            continue
        if hit:
            hits += 1
        else:
            misses += 1
        modules.append(facts)
    program = Program(modules)
    findings = evaluate(program) + parse_errors
    kept: list[FlowFinding] = []
    for finding in findings:
        noqa = _noqa_map(sources.get(finding.path, ""))
        if not _suppressed(finding, noqa):
            kept.append(finding)
    return FlowReport(
        findings=sorted(set(kept)),
        files=len(files),
        functions=len(program.functions),
        cache_hits=hits,
        cache_misses=misses,
        sources=sources,
    )
