"""The accepted-findings baseline: load, match, write.

A baseline is a checked-in JSON file recording legacy findings the team
has reviewed and accepted; ``repro analyze --flow --fail-on-new`` exits
nonzero only for findings *not* in it.  Baselining is deliberately a
different mechanism from ``# repro: noqa-RULE`` suppression: a
suppressed finding never appears in any output (the author has judged
the line correct at the line itself), while a baselined finding is
still reported — marked ``baselined`` in JSON and carried as an
external suppression in SARIF — it just does not fail the build.

Fingerprints must survive unrelated edits, so they hash the rule id,
the file path, the *stripped text of the flagged line*, and an
occurrence counter (for identical lines flagged twice in one file) —
never the line number.  Inserting code above a finding does not churn
the baseline; editing the flagged line itself retires the entry.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing as _t

from repro.analysis.flow.rules import FlowFinding

BASELINE_SCHEMA = 1

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE = "analysis-baseline.json"

#: Path components marking a repository-relative root.
_ROOT_MARKERS = frozenset({"src", "tests", "benchmarks", "examples"})


def normalize_path(path: str) -> str:
    """Repo-relative form of a finding path, invocation-independent.

    ``/home/me/repo/src/repro/sim/core.py`` and ``src/repro/sim/core.py``
    must fingerprint identically, so the path is trimmed to start at
    the first recognized top-level component.
    """
    parts = pathlib.PurePath(path).parts
    for index, part in enumerate(parts):
        if part in _ROOT_MARKERS:
            return "/".join(parts[index:])
    return "/".join(part for part in parts if part not in ("/", "\\"))


def _line_text(source: str, line: int) -> str:
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def fingerprint(
    rule_id: str, path: str, line_text: str, occurrence: int
) -> str:
    """Stable identity of one accepted finding."""
    document = f"{rule_id}|{path}|{line_text}|{occurrence}"
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def compute_fingerprints(
    findings: _t.Sequence[FlowFinding], sources: dict[str, str]
) -> list[tuple[FlowFinding, str]]:
    """Pair every finding with its fingerprint (occurrence-numbered)."""
    seen: dict[tuple[str, str, str], int] = {}
    pairs: list[tuple[FlowFinding, str]] = []
    for finding in sorted(findings):
        text = _line_text(sources.get(finding.path, ""), finding.line)
        where = normalize_path(finding.path)
        key = (finding.rule_id, where, text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        pairs.append(
            (
                finding,
                fingerprint(
                    finding.rule_id, where, text, occurrence
                ),
            )
        )
    return pairs


def load_baseline(path: str | pathlib.Path) -> dict[str, dict[str, _t.Any]]:
    """Fingerprint -> entry; a missing file is an empty baseline.

    A malformed or wrong-schema file raises ``ValueError`` — silently
    ignoring a corrupt baseline would wave new findings through.
    """
    file_path = pathlib.Path(path)
    if not file_path.exists():
        return {}
    try:
        document = json.loads(file_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"corrupt baseline file {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("schema") != BASELINE_SCHEMA
        or not isinstance(document.get("entries"), dict)
    ):
        raise ValueError(
            f"baseline file {path} is not a schema-{BASELINE_SCHEMA} "
            "flow-analysis baseline"
        )
    return dict(document["entries"])


def write_baseline(
    path: str | pathlib.Path,
    findings: _t.Sequence[FlowFinding],
    sources: dict[str, str],
) -> int:
    """Accept the given findings; returns the number written."""
    entries: dict[str, dict[str, _t.Any]] = {}
    for finding, print_ in compute_fingerprints(findings, sources):
        entries[print_] = {
            "rule": finding.rule_id,
            "path": normalize_path(finding.path),
            "line_text": _line_text(
                sources.get(finding.path, ""), finding.line
            ),
            "message": finding.message,
        }
    document = {"schema": BASELINE_SCHEMA, "entries": entries}
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def partition(
    findings: _t.Sequence[FlowFinding],
    sources: dict[str, str],
    baseline: dict[str, dict[str, _t.Any]],
) -> tuple[list[FlowFinding], list[FlowFinding]]:
    """Split findings into (new, baselined)."""
    new: list[FlowFinding] = []
    accepted: list[FlowFinding] = []
    for finding, print_ in compute_fingerprints(findings, sources):
        (accepted if print_ in baseline else new).append(finding)
    return new, accepted
