"""SARIF 2.1.0 output for both the syntactic and flow rule sets.

Static Analysis Results Interchange Format is what CI systems (GitHub
code scanning among them) ingest, so ``repro analyze`` can publish its
findings next to any other analyzer's.  The document builder accepts
the common shape of :class:`~repro.analysis.rules.Violation` and
:class:`~repro.analysis.flow.rules.FlowFinding` (path/line/col/rule_id/
message); baselined findings are carried as *external suppressions*
with ``baselineState`` set, matching how SARIF consumers distinguish
accepted legacy findings from new ones.

:func:`validate_sarif` is a dependency-free structural validator
covering every constraint this package relies on; the test suite runs
it over all emitted documents, so "schema-valid" is enforced without a
network fetch of the official JSON schema.
"""

from __future__ import annotations

import json
import typing as _t

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "fela-repro-analyzer"
TOOL_URI = "https://github.com/fela-repro/fela-repro"


class _FindingLike(_t.Protocol):  # pragma: no cover - typing only
    path: str
    line: int
    col: int
    rule_id: str
    message: str


def make_sarif(
    findings: _t.Sequence[_FindingLike],
    rules: dict[str, str],
    baselined: _t.Collection[_FindingLike] = (),
) -> dict[str, _t.Any]:
    """Build a SARIF 2.1.0 document for one analysis run."""
    accepted = set(id(f) for f in baselined)
    used_ids = sorted(
        {f.rule_id for f in findings} | set(rules)
    )
    results = []
    for finding in findings:
        result: dict[str, _t.Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        trace = tuple(getattr(finding, "trace", ()))
        if trace:
            result["message"]["text"] += (
                f" [via {' -> '.join(trace)}]"
            )
        if id(finding) in accepted:
            result["baselineState"] = "unchanged"
            result["suppressions"] = [
                {
                    "kind": "external",
                    "justification": (
                        "accepted legacy finding (analysis baseline)"
                    ),
                }
            ]
        else:
            result["baselineState"] = "new"
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": rules.get(
                                        rule_id, rule_id
                                    )
                                },
                            }
                            for rule_id in used_ids
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: _t.Sequence[_FindingLike],
    rules: dict[str, str],
    baselined: _t.Collection[_FindingLike] = (),
) -> str:
    return json.dumps(
        make_sarif(findings, rules, baselined), indent=2, sort_keys=True
    )


def validate_sarif(document: _t.Any) -> list[str]:
    """Structural errors in a SARIF document ([] when valid)."""
    errors: list[str] = []

    def check(condition: bool, message: str) -> bool:
        if not condition:
            errors.append(message)
        return condition

    if not check(isinstance(document, dict), "document must be an object"):
        return errors
    check(document.get("version") == SARIF_VERSION,
          f"version must be {SARIF_VERSION!r}")
    check(isinstance(document.get("$schema"), str), "$schema must be a str")
    runs = document.get("runs")
    if not check(
        isinstance(runs, list) and len(runs) >= 1,
        "runs must be a non-empty array",
    ):
        return errors
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver", {})
        check(
            isinstance(driver.get("name"), str) and driver.get("name"),
            f"{where}.tool.driver.name must be a non-empty str",
        )
        rule_ids = set()
        for rule_index, rule in enumerate(driver.get("rules", [])):
            rwhere = f"{where}.tool.driver.rules[{rule_index}]"
            if check(isinstance(rule, dict), f"{rwhere} must be an object"):
                if check(
                    isinstance(rule.get("id"), str),
                    f"{rwhere}.id must be a str",
                ):
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if not check(
            isinstance(results, list), f"{where}.results must be an array"
        ):
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not check(
                isinstance(result, dict), f"{rwhere} must be an object"
            ):
                continue
            rule_id = result.get("ruleId")
            check(
                isinstance(rule_id, str) and bool(rule_id),
                f"{rwhere}.ruleId must be a non-empty str",
            )
            if rule_ids:
                check(
                    rule_id in rule_ids,
                    f"{rwhere}.ruleId {rule_id!r} missing from "
                    "tool.driver.rules",
                )
            check(
                isinstance(
                    result.get("message", {}).get("text"), str
                ),
                f"{rwhere}.message.text must be a str",
            )
            locations = result.get("locations")
            if not check(
                isinstance(locations, list) and len(locations) >= 1,
                f"{rwhere}.locations must be a non-empty array",
            ):
                continue
            physical = locations[0].get("physicalLocation", {})
            check(
                isinstance(
                    physical.get("artifactLocation", {}).get("uri"),
                    str,
                ),
                f"{rwhere} artifactLocation.uri must be a str",
            )
            region = physical.get("region", {})
            check(
                isinstance(region.get("startLine"), int)
                and region.get("startLine", 0) >= 1,
                f"{rwhere} region.startLine must be an int >= 1",
            )
            for suppression in result.get("suppressions", []):
                check(
                    suppression.get("kind")
                    in ("inSource", "external"),
                    f"{rwhere} suppression.kind must be "
                    "inSource/external",
                )
    return errors
