"""The whole-program model: symbol table, call graph, fixed points.

The engine hands every file's :class:`~repro.analysis.flow.facts.ModuleFacts`
to a :class:`Program`, which builds the project-wide function/class
tables and resolves the symbolic facts the per-file pass left behind:

* :func:`return_taint` — which nondeterminism kinds each function's
  return value can carry, with the call chain that carries them
  (interprocedural taint propagation to a fixed point);
* :func:`event_kinds` — whether each function's return is an Event, a
  plain value, or a mix (drives the flow-sensitive FELA104);
* :func:`state_closure` — which functions transitively mutate
  scheduling-order-sensitive simulation state (drives FELA102).

All fixed points iterate over sorted function names, so results are
deterministic regardless of input file order.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.flow.facts import (
    CONCRETE_KINDS,
    ClassFacts,
    FunctionFacts,
    ModuleFacts,
)

#: Base classes that make a constructor a parallel-sweep job (FELA103).
JOBSPEC_ROOTS = frozenset({"JobSpec"})

#: Base classes that make a value a simulation event (FELA104).
EVENT_ROOTS = frozenset({"Event"})


class Program:
    """Symbol tables over every analyzed module."""

    def __init__(self, modules: _t.Iterable[ModuleFacts]) -> None:
        self.modules: list[ModuleFacts] = sorted(
            modules, key=lambda m: m.path
        )
        self.functions: dict[str, FunctionFacts] = {}
        self.classes: dict[str, ClassFacts] = {}
        #: bare class name -> qualnames (for resolving unqualified bases)
        self._class_names: dict[str, list[str]] = {}
        for module in self.modules:
            for function in module.functions:
                self.functions[function.qualname] = function
            for cls in module.classes:
                self.classes[cls.qualname] = cls
                self._class_names.setdefault(
                    cls.qualname.rsplit(".", 1)[-1], []
                ).append(cls.qualname)

    # -- resolution -----------------------------------------------------------

    def resolve_function(self, name: str) -> FunctionFacts | None:
        """A callee name to its facts, following method inheritance.

        ``mod.Class.meth`` falls back to the first base class (in MRO
        order) that defines ``meth`` when the class itself does not.
        """
        found = self.functions.get(name)
        if found is not None:
            return found
        if "." not in name:
            return None
        owner, method = name.rsplit(".", 1)
        cls = self.classes.get(owner)
        if cls is None:
            return None
        for base in self._iter_bases(owner):
            candidate = self.functions.get(f"{base}.{method}")
            if candidate is not None:
                return candidate
        return None

    def _resolve_class(self, name: str) -> str | None:
        if name in self.classes:
            return name
        candidates = self._class_names.get(name.rsplit(".", 1)[-1])
        if candidates and len(candidates) == 1:
            return candidates[0]
        return None

    def _iter_bases(self, qualname: str) -> _t.Iterator[str]:
        """All transitive base classes of ``qualname`` (DFS, cycle-safe)."""
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            cls = self.classes.get(current)
            if cls is None:
                continue
            for base in cls.bases:
                resolved = self._resolve_class(base) or base
                if resolved not in seen:
                    seen.add(resolved)
                    yield resolved
                    stack.append(resolved)

    def derives_from(self, qualname: str, roots: frozenset[str]) -> bool:
        """Whether a class transitively inherits from any root name."""
        resolved = self._resolve_class(qualname)
        if resolved is None:
            return qualname.rsplit(".", 1)[-1] in roots
        if resolved.rsplit(".", 1)[-1] in roots:
            return True
        return any(
            base.rsplit(".", 1)[-1] in roots
            for base in self._iter_bases(resolved)
        )


class CallGraph:
    """Resolved caller -> callee edges over the program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.successors: dict[str, set[str]] = {}
        self.predecessors: dict[str, set[str]] = {}
        for qualname in sorted(program.functions):
            function = program.functions[qualname]
            edges = set()
            for call in function.calls:
                callee = program.resolve_function(call.callee)
                if callee is not None:
                    edges.add(callee.qualname)
            self.successors[qualname] = edges
            for callee_name in sorted(edges):
                self.predecessors.setdefault(callee_name, set()).add(
                    qualname
                )

    def reachable_from(self, roots: _t.Iterable[str]) -> set[str]:
        """Functions reachable by following call edges from ``roots``."""
        seen = set(roots)
        stack = list(seen)
        while stack:
            for successor in self.successors.get(stack.pop(), ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen


TaintMap = dict[str, dict[str, tuple[str, ...]]]


def return_taint(program: Program) -> TaintMap:
    """Nondeterminism kinds carried by each function's return value.

    Returns ``{qualname: {kind: chain}}`` where ``chain`` is the call
    path from the function down to the source, e.g. ``("a.f", "a.g")``
    meaning ``f`` returns taint because it returns ``g()`` and ``g``
    reads the source directly.
    """
    taint: TaintMap = {}
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        local: dict[str, tuple[str, ...]] = {}
        for atom in facts.return_atoms:
            if atom in CONCRETE_KINDS:
                local[atom] = (qualname,)
        taint[qualname] = local
    changed = True
    while changed:
        changed = False
        for qualname in sorted(program.functions):
            facts = program.functions[qualname]
            for atom in facts.return_atoms:
                if not atom.startswith("call:"):
                    continue
                callee = program.resolve_function(atom[len("call:"):])
                if callee is None:
                    continue
                for kind, chain in sorted(
                    taint.get(callee.qualname, {}).items()
                ):
                    if kind not in taint[qualname] and qualname not in chain:
                        taint[qualname][kind] = (qualname, *chain)
                        changed = True
    return taint


def resolve_atoms(
    atoms: _t.Iterable[str], program: Program, taint: TaintMap
) -> dict[str, tuple[str, ...]]:
    """Concrete kinds (with chains) carried by a set of taint atoms."""
    kinds: dict[str, tuple[str, ...]] = {}
    for atom in atoms:
        if atom in CONCRETE_KINDS:
            kinds.setdefault(atom, ())
        elif atom.startswith("call:"):
            callee = program.resolve_function(atom[len("call:"):])
            if callee is None:
                continue
            for kind, chain in sorted(taint.get(callee.qualname, {}).items()):
                if kind not in kinds or not kinds[kind]:
                    kinds[kind] = chain
    return kinds


def event_kinds(program: Program) -> dict[str, str]:
    """Per-function return classification for FELA104.

    ``"event"``: every return is an Event; ``"value"``: at least one
    return is a definite non-Event and none is unresolvable;
    ``"mixed"``: both; ``"unknown"``: cannot tell (no flag is raised on
    unknowns — the rule only fires on certainty).
    """
    VALUE_KINDS = {"value", "set", "dict-view", "none", "param"}
    state: dict[str, tuple[bool, bool, bool]] = {}
    # (has_event, has_value, has_unknown)
    for qualname in sorted(program.functions):
        facts = program.functions[qualname]
        has_event = has_value = has_unknown = False
        for kind in facts.returns:
            if kind == "event":
                has_event = True
            elif kind in VALUE_KINDS:
                has_value = True
            elif kind.startswith("class:"):
                target = kind[len("class:"):]
                if program.derives_from(target, EVENT_ROOTS):
                    has_event = True
                elif target in program.classes:
                    has_value = True
                else:
                    has_unknown = True
            elif kind.startswith("call:"):
                pass  # resolved below
            else:
                has_unknown = True
        state[qualname] = (has_event, has_value, has_unknown)
    changed = True
    while changed:
        changed = False
        for qualname in sorted(program.functions):
            facts = program.functions[qualname]
            has_event, has_value, has_unknown = state[qualname]
            for kind in facts.returns:
                if not kind.startswith("call:"):
                    continue
                callee = program.resolve_function(kind[len("call:"):])
                if callee is None:
                    if not has_unknown:
                        has_unknown = True
                else:
                    other = state.get(
                        callee.qualname, (False, False, True)
                    )
                    has_event = has_event or other[0]
                    has_value = has_value or other[1]
                    has_unknown = has_unknown or other[2]
            if state[qualname] != (has_event, has_value, has_unknown):
                state[qualname] = (has_event, has_value, has_unknown)
                changed = True
    result = {}
    for qualname, (has_event, has_value, has_unknown) in sorted(state.items()):
        if has_event and has_value:
            result[qualname] = "mixed"
        elif has_event and not has_unknown:
            result[qualname] = "event"
        elif has_value and not has_unknown and not has_event:
            result[qualname] = "value"
        else:
            result[qualname] = "unknown"
    return result


def state_closure(program: Program, graph: CallGraph) -> set[str]:
    """Functions that (transitively) mutate scheduling-order state."""
    closure = {
        qualname
        for qualname, facts in program.functions.items()
        if facts.touches_state
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(program.functions):
            if qualname in closure:
                continue
            if graph.successors.get(qualname, set()) & closure:
                closure.add(qualname)
                changed = True
    return closure
