"""Per-file fact extraction: the cacheable unit of the flow analysis.

One parse of one file produces a :class:`ModuleFacts` — a pure function
of the file's text, which is why the engine can cache it under a
content hash (:mod:`repro.analysis.flow.engine`).  Facts are *local*:
calls are recorded as best-effort dotted names, taint that depends on a
callee's behaviour is recorded symbolically (``call:<name>`` atoms),
and the global phase (:mod:`repro.analysis.flow.callgraph`) resolves
the symbols against the whole-program function table.

The intra-function walk is a light abstract interpreter: statements are
visited in order, every local variable carries a set of *taint atoms*
(where its value may have come from) plus a *value kind* (what shape of
thing it is — an Event, a set, an unpicklable object, a call result).
Branches are merged by union, which over-approximates safely for the
FELA1xx rules built on top.

Taint atoms
    ``wall-clock``      a host clock read (``time.time`` family)
    ``host-env``        process environment (``os.environ``, ``uuid``,
                        ``id()``, pids, hostnames)
    ``unseeded-rng``    global-state or seedless RNG draws
    ``call:<name>``     the return taint of ``<name>`` (resolved later)
    ``param:<name>``    a function parameter (dropped at the top level)

Value kinds
    ``event``                   an Event from the sim kernel
    ``set`` / ``dict-view``     unordered (or order-fragile) iterables
    ``value``                   a plain, order-free scalar/container
    ``call:<n>`` / ``class:<n>``  resolved call/constructor results
    ``unpicklable:<why>``       lambdas, open files, generators, locks
    ``unknown``                 anything the walk cannot classify
"""

from __future__ import annotations

import ast
import dataclasses
import typing as _t

from repro.analysis.rules import _WALL_CLOCK

#: Bump on any change to the fact schema or extraction semantics: cached
#: per-file facts then miss and are recomputed instead of resurfacing.
FLOW_SCHEMA = 1

KIND_WALL = "wall-clock"
KIND_ENV = "host-env"
KIND_RNG = "unseeded-rng"
CONCRETE_KINDS = frozenset({KIND_WALL, KIND_ENV, KIND_RNG})

#: Calls that read the process environment / host identity.
_ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.urandom",
        "os.getpid",
        "os.getppid",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "uuid.uuid5",
        "socket.gethostname",
        "platform.node",
    }
)

#: Environment-method names that construct events.
_EVENT_FACTORIES = frozenset(
    {"timeout", "event", "process", "all_of", "any_of"}
)

#: Attribute calls that mutate scheduling-order-sensitive state.
_STATE_ATTRS = frozenset(
    {
        "schedule",
        "succeed",
        "process",
        "record_assignment",
        "record_completion",
        "transfer_holding",
        "provision_worker",
        "request_token",
        "report_completion",
    }
)

#: Resolved callables that mutate scheduler state directly.
_STATE_CALLS = frozenset({"heapq.heappush", "heapq.heappop"})

#: Set-producing attribute calls.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

#: Consumers whose output does not depend on input iteration order, so
#: an unordered iterable inside them is benign.
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set",
     "frozenset", "Counter"}
)

#: Receiver names treated as the simulation environment.
_ENV_RECEIVERS = frozenset({"env", "environment"})


def module_name(path: str) -> str:
    """Dotted module name derived from a file path.

    The name starts at the *last* ``repro`` path component, so both
    ``src/repro/sim/core.py`` and a test-fixture tree like
    ``tests/.../fixtures/src/repro/sim/core.py`` map to
    ``repro.sim.core``.  Files outside a ``repro`` tree get their bare
    stem, which no package-scoped rule ever matches.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


def _unparse(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 1] + "…"


# ---------------------------------------------------------------------------
# Fact records (all JSON-round-trippable via asdict / from_dict).
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CallFact:
    """One resolved call site inside a function body."""

    callee: str
    line: int
    col: int


@dataclasses.dataclass
class SinkFact:
    """A value flowing into a determinism-sensitive sink argument."""

    sink: str  # "sim-time"
    detail: str  # e.g. "env.timeout"
    line: int
    col: int
    atoms: list[str]


@dataclasses.dataclass
class LoopFact:
    """An iteration over an unordered (or order-fragile) iterable."""

    line: int
    col: int
    kind: str  # "set" | "dict-view"
    desc: str  # source text of the iterable
    body_calls: list[str]
    body_sink: bool


@dataclasses.dataclass
class YieldFact:
    """One classified ``yield`` inside a generator."""

    line: int
    col: int
    kind: str  # value kind of the yielded expression


@dataclasses.dataclass
class AcquireFact:
    """A resource request bound to a name inside a generator."""

    line: int
    col: int
    var: str
    receiver: str
    released: bool


@dataclasses.dataclass
class BadArg:
    """A suspicious constructor argument."""

    param: str
    reason: str  # "lambda", "open-file", "unseeded-rng", ...


@dataclasses.dataclass
class CtorFact:
    """A constructor call carrying at least one suspicious argument."""

    callee: str
    line: int
    col: int
    bad: list[BadArg]


@dataclasses.dataclass
class FunctionFacts:
    """Everything the global phase needs to know about one function."""

    qualname: str
    module: str
    cls: str | None
    line: int
    col: int
    is_generator: bool
    touches_state: bool
    returns: list[str]  # value kinds of return expressions
    return_atoms: list[str]  # taint atoms of return expressions
    calls: list[CallFact]
    sinks: list[SinkFact]
    loops: list[LoopFact]
    yields_: list[YieldFact]
    acquires: list[AcquireFact]
    ctors: list[CtorFact]

    @classmethod
    def from_dict(cls, data: dict[str, _t.Any]) -> "FunctionFacts":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            cls=data["cls"],
            line=data["line"],
            col=data["col"],
            is_generator=data["is_generator"],
            touches_state=data["touches_state"],
            returns=list(data["returns"]),
            return_atoms=list(data["return_atoms"]),
            calls=[CallFact(**c) for c in data["calls"]],
            sinks=[SinkFact(**s) for s in data["sinks"]],
            loops=[LoopFact(**lp) for lp in data["loops"]],
            yields_=[YieldFact(**y) for y in data["yields_"]],
            acquires=[AcquireFact(**a) for a in data["acquires"]],
            ctors=[
                CtorFact(
                    callee=c["callee"],
                    line=c["line"],
                    col=c["col"],
                    bad=[BadArg(**b) for b in c["bad"]],
                )
                for c in data["ctors"]
            ],
        )


@dataclasses.dataclass
class ClassFacts:
    """One class definition: name, resolved bases, method names."""

    qualname: str
    line: int
    bases: list[str]
    methods: list[str]

    @classmethod
    def from_dict(cls, data: dict[str, _t.Any]) -> "ClassFacts":
        return cls(
            qualname=data["qualname"],
            line=data["line"],
            bases=list(data["bases"]),
            methods=list(data["methods"]),
        )


@dataclasses.dataclass
class ModuleFacts:
    """All facts extracted from one file."""

    path: str
    module: str
    functions: list[FunctionFacts]
    classes: list[ClassFacts]

    def to_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, _t.Any]) -> "ModuleFacts":
        return cls(
            path=data["path"],
            module=data["module"],
            functions=[
                FunctionFacts.from_dict(f) for f in data["functions"]
            ],
            classes=[ClassFacts.from_dict(c) for c in data["classes"]],
        )


# ---------------------------------------------------------------------------
# Name resolution.
# ---------------------------------------------------------------------------


class Resolver:
    """Best-effort dotted-name resolution for one module.

    Combines the import table (absolute *and* relative imports), the
    module's own top-level definitions, and ``self.x`` method access
    inside classes.  Anything unresolvable returns ``None``.
    """

    def __init__(self, module: str, tree: ast.Module) -> None:
        self.module = module
        self.imports: dict[str, str] = {}
        self.module_defs: dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Resolve "from .x import y" against this module's
                    # package so project-internal helpers join the table.
                    anchor = module.split(".")
                    anchor = anchor[: len(anchor) - (node.level - 1) - 1]
                    base = ".".join(anchor + ([node.module]
                                              if node.module else []))
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        del package
        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.module_defs[stmt.name] = f"{module}.{stmt.name}"

    def resolve(
        self,
        node: ast.AST,
        cls: str | None = None,
        shadowed: _t.Container[str] = (),
    ) -> str | None:
        """Dotted origin of a name/attribute chain, or ``None``."""
        if isinstance(node, ast.Name):
            if node.id in shadowed:
                return None
            if node.id in self.imports:
                return self.imports[node.id]
            return self.module_defs.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                cls is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return f"{cls}.{node.attr}"
            base = self.resolve(node.value, cls, shadowed)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


# ---------------------------------------------------------------------------
# The intra-function walk.
# ---------------------------------------------------------------------------


def _is_env_receiver(node: ast.AST) -> bool:
    """Whether an attribute call's receiver is the sim environment."""
    if isinstance(node, ast.Name):
        return node.id in _ENV_RECEIVERS
    if isinstance(node, ast.Attribute):
        return node.attr in _ENV_RECEIVERS or node.attr in ("_env",)
    return False


class _FunctionScan:
    """One pass over one function body, accumulating facts."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        resolver: Resolver,
        qualname: str,
        cls: str | None,
        sim_scope: bool,
    ) -> None:
        self.func = func
        self.resolver = resolver
        self.qualname = qualname
        self.cls = cls
        self.sim_scope = sim_scope
        #: var name (or "recv.attr" pseudo-name) -> (atoms, kind)
        self.env: dict[str, tuple[frozenset[str], str]] = {}
        self.params: set[str] = set()
        self.calls: list[CallFact] = []
        self.sinks: list[SinkFact] = []
        self.loops: list[LoopFact] = []
        self.yields_: list[YieldFact] = []
        self.acquires: list[AcquireFact] = []
        self.ctors: list[CtorFact] = []
        self.returns: list[str] = []
        self.return_atoms: set[str] = set()
        self.touches_state = False
        self.is_generator = False

    # -- entry point ---------------------------------------------------------

    def scan(self) -> FunctionFacts:
        args = self.func.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.params.add(arg.arg)
            self.env[arg.arg] = (
                frozenset({f"param:{arg.arg}"}), "param"
            )
        self.visit_stmts(self.func.body)
        returns = sorted(set(self.returns))
        return FunctionFacts(
            qualname=self.qualname,
            module=self.resolver.module,
            cls=self.cls,
            line=self.func.lineno,
            col=self.func.col_offset + 1,
            is_generator=self.is_generator,
            touches_state=self.touches_state,
            returns=returns,
            return_atoms=sorted(self.return_atoms),
            calls=self.calls,
            sinks=self.sinks,
            loops=self.loops,
            yields_=self.yields_,
            acquires=self.acquires,
            ctors=self.ctors,
        )

    # -- statements ----------------------------------------------------------

    def visit_stmts(self, stmts: _t.Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            atoms, kind = self.expr(stmt.value)
            self._record_acquire(stmt)
            for target in stmt.targets:
                self._bind(target, atoms, kind)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                atoms, kind = self.expr(stmt.value)
                self._bind(stmt.target, atoms, kind)
        elif isinstance(stmt, ast.AugAssign):
            atoms, _ = self.expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(
                    stmt.target.id, (frozenset(), "unknown")
                )
                self.env[stmt.target.id] = (old[0] | atoms, old[1])
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.returns.append("none")
            else:
                atoms, kind = self.expr(stmt.value)
                self.returns.append(kind)
                self.return_atoms |= atoms
        elif isinstance(stmt, ast.Expr):
            self.expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.expr(stmt.test)
            self.visit_stmts(stmt.body)
            self.visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.While):
            self.expr(stmt.test)
            self.visit_stmts(stmt.body)
            self.visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Try):
            self.visit_stmts(stmt.body)
            for handler in stmt.handlers:
                self.visit_stmts(handler.body)
            self.visit_stmts(stmt.orelse)
            self.visit_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are not walked as part of this function, but a
            # reference to one is an unpicklable capture.
            self.env[stmt.name] = (
                frozenset(), "unpicklable:nested-function"
            )
        elif isinstance(stmt, ast.ClassDef):
            pass
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.expr(child)
        # pass / break / continue / import / global / nonlocal: no facts.

    def _bind(self, target: ast.expr, atoms: frozenset[str], kind: str) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = (atoms, kind)
        elif isinstance(target, ast.Attribute):
            # Track "self.x"-style pseudo-names within this function so
            # a later read of the same attribute sees the taint.
            self.env[_unparse(target)] = (atoms, kind)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, atoms, "unknown")

    def _visit_for(self, stmt: ast.For) -> None:
        atoms, kind = self.expr(stmt.iter)
        fact: LoopFact | None = None
        if kind in ("set", "dict-view"):
            fact = LoopFact(
                line=stmt.lineno,
                col=stmt.col_offset + 1,
                kind=kind,
                desc=_unparse(stmt.iter),
                body_calls=[],
                body_sink=False,
            )
        self._bind(stmt.target, atoms, "unknown")
        calls_before = len(self.calls)
        sinks_before = len(self.sinks)
        state_before = self.touches_state
        self.visit_stmts(stmt.body)
        self.visit_stmts(stmt.orelse)
        if fact is not None:
            fact.body_calls = sorted(
                {c.callee for c in self.calls[calls_before:]}
            )
            fact.body_sink = (
                len(self.sinks) > sinks_before
                or (self.touches_state and not state_before)
            )
            self.loops.append(fact)

    def _visit_with(self, stmt: ast.With) -> None:
        for item in stmt.items:
            value = item.context_expr
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("request", "acquire")
            ):
                # `with resource.request() as req:` releases on exit.
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, frozenset(), "event")
                self.expr(value)
                continue
            atoms, kind = self.expr(value)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, atoms, kind)
        self.visit_stmts(stmt.body)

    def _record_acquire(self, stmt: ast.Assign) -> None:
        value = stmt.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("request", "acquire")
        ):
            return
        if len(stmt.targets) != 1 or not isinstance(
            stmt.targets[0], ast.Name
        ):
            return
        self.acquires.append(
            AcquireFact(
                line=stmt.lineno,
                col=stmt.col_offset + 1,
                var=stmt.targets[0].id,
                receiver=_unparse(value.func.value),
                released=False,
            )
        )

    def _record_release(self, call: ast.Call) -> None:
        assert isinstance(call.func, ast.Attribute)
        receiver = _unparse(call.func.value)
        released_vars = {
            _unparse(arg) for arg in call.args if isinstance(arg, ast.Name)
        }
        for acquire in self.acquires:
            if call.func.attr == "cancel" and acquire.var == receiver:
                acquire.released = True
            elif call.func.attr in ("release", "put") and (
                acquire.receiver == receiver or acquire.var in released_vars
            ):
                acquire.released = True

    # -- expressions ---------------------------------------------------------

    def expr(
        self, node: ast.expr, order_safe: bool = False
    ) -> tuple[frozenset[str], str]:
        """(taint atoms, value kind) of an expression, recording facts."""
        if isinstance(node, ast.Constant):
            return frozenset(), "value"
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return frozenset(), "unknown"
        if isinstance(node, ast.Lambda):
            return frozenset(), "unpicklable:lambda"
        if isinstance(node, ast.Call):
            return self._call(node, order_safe)
        if isinstance(node, ast.Attribute):
            resolved = self.resolver.resolve(
                node, self.cls, self.env.keys() | self.params
            )
            if resolved == "os.environ":
                return frozenset({KIND_ENV}), "value"
            pseudo = _unparse(node)
            if pseudo in self.env:
                return self.env[pseudo]
            atoms, _ = self.expr(node.value)
            return atoms, "unknown"
        if isinstance(node, ast.Subscript):
            atoms, _ = self.expr(node.value)
            if isinstance(node.slice, ast.expr):
                more, _ = self.expr(node.slice)
                atoms = atoms | more
            resolved = self.resolver.resolve(
                node.value, self.cls, self.env.keys() | self.params
            )
            if resolved == "os.environ":
                atoms = atoms | {KIND_ENV}
            return atoms, "unknown"
        if isinstance(node, ast.BinOp):
            left_atoms, left_kind = self.expr(node.left, order_safe)
            right_atoms, right_kind = self.expr(node.right, order_safe)
            kind = "value"
            if isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
            ) and "set" in (left_kind, right_kind):
                kind = "set"
            return left_atoms | right_atoms, kind
        if isinstance(node, ast.Set):
            atoms = frozenset()
            for element in node.elts:
                more, _ = self.expr(element)
                atoms = atoms | more
            return atoms, "set"
        if isinstance(node, ast.SetComp):
            return self._comprehension(node, order_safe), "set"
        if isinstance(node, ast.GeneratorExp):
            return (
                self._comprehension(node, order_safe),
                "unpicklable:generator-expression",
            )
        if isinstance(node, (ast.ListComp, ast.DictComp)):
            return self._comprehension(node, order_safe), "value"
        if isinstance(node, (ast.List, ast.Tuple, ast.Dict)):
            atoms = frozenset()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    more, _ = self.expr(child, order_safe)
                    atoms = atoms | more
            return atoms, "value"
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.is_generator = True
            if isinstance(node, ast.Yield) and node.value is not None:
                atoms, kind = self.expr(node.value)
                if self.sim_scope:
                    self.yields_.append(
                        YieldFact(
                            line=node.lineno,
                            col=node.col_offset + 1,
                            kind=kind,
                        )
                    )
            elif isinstance(node, ast.YieldFrom):
                self.expr(node.value)
            return frozenset(), "unknown"
        if isinstance(node, ast.Await):
            return self.expr(node.value, order_safe)
        if isinstance(node, ast.Starred):
            return self.expr(node.value, order_safe)
        if isinstance(node, ast.IfExp):
            self.expr(node.test)
            body_atoms, body_kind = self.expr(node.body, order_safe)
            else_atoms, else_kind = self.expr(node.orelse, order_safe)
            kind = body_kind if body_kind == else_kind else "unknown"
            return body_atoms | else_atoms, kind
        # BoolOp, Compare, UnaryOp, JoinedStr, FormattedValue, Slice...
        atoms = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                more, _ = self.expr(child, order_safe)
                atoms = atoms | more
        return atoms, "value"

    def _comprehension(
        self,
        node: ast.SetComp | ast.ListComp | ast.DictComp | ast.GeneratorExp,
        order_safe: bool,
    ) -> frozenset[str]:
        atoms = frozenset()
        for gen in node.generators:
            iter_atoms, iter_kind = self.expr(gen.iter)
            atoms = atoms | iter_atoms
            # A set comprehension's result is itself unordered, so the
            # iteration order of its source can never escape it.
            if (
                iter_kind in ("set", "dict-view")
                and not order_safe
                and not isinstance(node, ast.SetComp)
            ):
                calls_before = len(self.calls)
                sinks_before = len(self.sinks)
                fact = LoopFact(
                    line=gen.iter.lineno,
                    col=gen.iter.col_offset + 1,
                    kind=iter_kind,
                    desc=_unparse(gen.iter),
                    body_calls=[],
                    body_sink=False,
                )
                self._bind(gen.target, iter_atoms, "unknown")
                self._comprehension_body(node, atoms)
                fact.body_calls = sorted(
                    {c.callee for c in self.calls[calls_before:]}
                )
                fact.body_sink = len(self.sinks) > sinks_before
                self.loops.append(fact)
                for condition in gen.ifs:
                    self.expr(condition)
                return atoms
            self._bind(gen.target, iter_atoms, "unknown")
            for condition in gen.ifs:
                self.expr(condition)
        self._comprehension_body(node, atoms)
        return atoms

    def _comprehension_body(
        self, node: ast.expr, atoms: frozenset[str]
    ) -> frozenset[str]:
        if isinstance(node, ast.DictComp):
            key_atoms, _ = self.expr(node.key)
            value_atoms, _ = self.expr(node.value)
            return atoms | key_atoms | value_atoms
        assert isinstance(
            node, (ast.SetComp, ast.ListComp, ast.GeneratorExp)
        )
        element_atoms, _ = self.expr(node.elt)
        return atoms | element_atoms

    # -- calls ----------------------------------------------------------------

    def _call(
        self, node: ast.Call, order_safe: bool
    ) -> tuple[frozenset[str], str]:
        func = node.func
        callee_name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        args_safe = order_safe or (
            callee_name in _ORDER_SAFE_CONSUMERS
        )
        arg_info: list[tuple[str, frozenset[str], str]] = []
        for index, arg in enumerate(node.args):
            atoms, kind = self.expr(arg, args_safe)
            arg_info.append((f"arg{index}", atoms, kind))
        for keyword in node.keywords:
            atoms, kind = self.expr(keyword.value, args_safe)
            arg_info.append((keyword.arg or "**kwargs", atoms, kind))
        all_atoms = frozenset().union(
            *(atoms for _, atoms, _ in arg_info)
        ) if arg_info else frozenset()

        if isinstance(func, ast.Attribute):
            return self._attribute_call(node, func, arg_info, all_atoms)
        if isinstance(func, ast.Name):
            return self._name_call(node, func, arg_info, all_atoms)
        # Calls on arbitrary expressions (e.g. factory()(x)).
        self.expr(func)
        return all_atoms, "unknown"

    def _attribute_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_info: list[tuple[str, frozenset[str], str]],
        all_atoms: frozenset[str],
    ) -> tuple[frozenset[str], str]:
        attr = func.attr
        env_recv = _is_env_receiver(func.value) or (
            self.cls is not None
            and self.cls.rsplit(".", 1)[-1] == "Environment"
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        )
        if env_recv and attr in ("timeout", "schedule"):
            delay = self._delay_argument(node, attr)
            delay_atoms: frozenset[str] = frozenset()
            if delay is not None:
                delay_atoms, _ = self.expr(delay)
            self.sinks.append(
                SinkFact(
                    sink="sim-time",
                    detail=f"{_unparse(func.value)}.{attr}",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    atoms=sorted(delay_atoms),
                )
            )
            self.touches_state = True
            return frozenset(), (
                "event" if attr == "timeout" else "value"
            )
        if env_recv and attr in _EVENT_FACTORIES:
            self.touches_state = self.touches_state or attr == "process"
            return frozenset(), "event"
        if attr in _STATE_ATTRS:
            self.touches_state = True
        if attr in ("release", "cancel", "put"):
            self._record_release(node)
        resolved = self.resolver.resolve(
            func, self.cls, self.env.keys() | self.params
        )
        if resolved is not None:
            if resolved in _WALL_CLOCK:
                return frozenset({KIND_WALL}), "value"
            if resolved in _ENV_CALLS:
                return frozenset({KIND_ENV}), "value"
            if resolved in _STATE_CALLS:
                self.touches_state = True
                return all_atoms, "value"
            rng = self._rng_call(resolved, node)
            if rng is not None:
                return rng
            self.calls.append(
                CallFact(
                    callee=resolved,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )
            self._record_ctor(node, resolved, arg_info)
            return (
                all_atoms | {f"call:{resolved}"}, f"call:{resolved}"
            )
        if attr in ("keys", "values"):
            return all_atoms | self._receiver_atoms(func), "dict-view"
        if attr in _SET_METHODS:
            return all_atoms | self._receiver_atoms(func), "set"
        if attr in ("request", "acquire"):
            return frozenset(), "event"
        if attr in ("copy", "items"):
            recv_atoms, recv_kind = self.expr(func.value)
            if attr == "copy":
                return all_atoms | recv_atoms, recv_kind
            return all_atoms | recv_atoms, "dict-view"
        # Unresolved method call: taint flows from receiver and args.
        return all_atoms | self._receiver_atoms(func), "unknown"

    def _receiver_atoms(self, func: ast.Attribute) -> frozenset[str]:
        atoms, _ = self.expr(func.value)
        return atoms

    @staticmethod
    def _delay_argument(node: ast.Call, attr: str) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "delay":
                return keyword.value
        if attr == "timeout" and node.args:
            return node.args[0]
        if attr == "schedule" and len(node.args) >= 3:
            return node.args[2]
        return None

    def _name_call(
        self,
        node: ast.Call,
        func: ast.Name,
        arg_info: list[tuple[str, frozenset[str], str]],
        all_atoms: frozenset[str],
    ) -> tuple[frozenset[str], str]:
        name = func.id
        if name == "id" and node.args:
            return frozenset({KIND_ENV}), "value"
        if name == "open":
            return frozenset(), "unpicklable:open-file"
        if name in ("set", "frozenset"):
            return all_atoms, "set"
        if name in ("list", "tuple", "iter", "reversed"):
            # Materializers preserve the input's (possibly fragile)
            # iteration order, so the kind passes through.
            if arg_info:
                return all_atoms, arg_info[0][2]
            return all_atoms, "value"
        if name in _ORDER_SAFE_CONSUMERS:
            return all_atoms, "value"
        resolved = self.resolver.resolve(
            func, self.cls, self.env.keys() | self.params
        )
        if resolved is None:
            return all_atoms, "unknown"
        if resolved in _WALL_CLOCK:
            return frozenset({KIND_WALL}), "value"
        if resolved in _ENV_CALLS:
            return frozenset({KIND_ENV}), "value"
        if resolved in _STATE_CALLS:
            self.touches_state = True
            return all_atoms, "value"
        rng = self._rng_call(resolved, node)
        if rng is not None:
            return rng
        self.calls.append(
            CallFact(
                callee=resolved,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )
        self._record_ctor(node, resolved, arg_info)
        tail = resolved.rsplit(".", 1)[-1]
        if tail[:1].isupper():
            return all_atoms, f"class:{resolved}"
        return all_atoms | {f"call:{resolved}"}, f"call:{resolved}"

    @staticmethod
    def _rng_call(
        resolved: str, node: ast.Call
    ) -> tuple[frozenset[str], str] | None:
        """Taint for RNG calls: global-state draws and seedless ctors."""
        seedless = not node.args and not node.keywords
        if resolved in ("random.Random", "numpy.random.default_rng"):
            if seedless:
                return frozenset({KIND_RNG}), "value"
            return frozenset(), "value"
        for prefix in ("random.", "numpy.random."):
            if resolved.startswith(prefix):
                attr = resolved[len(prefix):]
                if "." not in attr and not attr[:1].isupper():
                    return frozenset({KIND_RNG}), "value"
        return None

    def _record_ctor(
        self,
        node: ast.Call,
        resolved: str,
        arg_info: list[tuple[str, frozenset[str], str]],
    ) -> None:
        tail = resolved.rsplit(".", 1)[-1]
        if not tail[:1].isupper():
            return
        bad: list[BadArg] = []
        for param, atoms, kind in arg_info:
            if kind.startswith("unpicklable:"):
                bad.append(
                    BadArg(param=param, reason=kind.split(":", 1)[1])
                )
            elif KIND_RNG in atoms:
                bad.append(BadArg(param=param, reason="unseeded-rng"))
        if bad:
            self.ctors.append(
                CtorFact(
                    callee=resolved,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    bad=bad,
                )
            )


# ---------------------------------------------------------------------------
# File-level extraction.
# ---------------------------------------------------------------------------

#: Packages whose generators are simulation processes (FELA104/105
#: scope; matches the FELA003 scope plus repro.faults).
SIM_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.net",
    "repro.hardware",
    "repro.baselines",
    "repro.faults",
)


def in_packages(module: str, packages: _t.Iterable[str]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def extract_module_facts(source: str, path: str) -> ModuleFacts:
    """Parse one file and extract all flow facts (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    module = module_name(path)
    resolver = Resolver(module, tree)
    sim_scope = in_packages(module, SIM_PACKAGES)
    functions: list[FunctionFacts] = []
    classes: list[ClassFacts] = []

    def scan_function(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        cls: str | None,
    ) -> None:
        functions.append(
            _FunctionScan(func, resolver, qualname, cls, sim_scope).scan()
        )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(stmt, f"{module}.{stmt.name}", None)
        elif isinstance(stmt, ast.ClassDef):
            class_qualname = f"{module}.{stmt.name}"
            bases = [
                base
                for base in (
                    resolver.resolve(b) or (
                        b.id if isinstance(b, ast.Name) else None
                    )
                    for b in stmt.bases
                )
                if base is not None
            ]
            methods = []
            for inner in stmt.body:
                if isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    methods.append(inner.name)
                    scan_function(
                        inner,
                        f"{class_qualname}.{inner.name}",
                        class_qualname,
                    )
            classes.append(
                ClassFacts(
                    qualname=class_qualname,
                    line=stmt.lineno,
                    bases=bases,
                    methods=methods,
                )
            )
    return ModuleFacts(
        path=path, module=module, functions=functions, classes=classes
    )
