"""Whole-program determinism analysis (the FELA1xx rule series).

Layered on the syntactic linter in :mod:`repro.analysis`: a per-file
fact extractor feeds a project-wide symbol table / call graph, and
flow-sensitive rules evaluate interprocedural taint over the result.
Per-file facts are content-addressed and cached through
:mod:`repro.exec.cache`, so warm runs re-analyze only changed files.
"""

from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.engine import FlowReport, analyze_paths
from repro.analysis.flow.rules import FLOW_RULES, FlowFinding
from repro.analysis.flow.sarif import (
    make_sarif,
    render_sarif,
    validate_sarif,
)

__all__ = [
    "DEFAULT_BASELINE",
    "FLOW_RULES",
    "FlowFinding",
    "FlowReport",
    "analyze_paths",
    "load_baseline",
    "make_sarif",
    "partition",
    "render_sarif",
    "validate_sarif",
    "write_baseline",
]
