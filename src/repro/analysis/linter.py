"""The lint driver: file walking, suppression, reporting, CLI.

Usage::

    python -m repro.analysis lint src tests benchmarks
    python -m repro.analysis lint src --format json
    python -m repro.analysis lint src --select FELA001,FELA002
    python -m repro.analysis rules

A finding on a line carrying ``# repro: noqa`` (suppress everything) or
``# repro: noqa-FELA001`` / ``# repro: noqa-FELA001,FELA004`` (suppress
the listed rules) is dropped.  Exit codes: 0 clean, 1 violations found,
2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import re
import sys
import typing as _t

from repro.analysis.rules import (
    LintContext,
    LintRule,
    Violation,
    all_rules,
    get_rule,
)

#: Rule id reserved for files the linter cannot parse.
PARSE_ERROR_RULE = "FELA000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", ".eggs"}
)


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Line -> suppressed rule ids (``None`` means "all rules")."""
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                rule.strip() for rule in rules.split(",")
            )
    return suppressions


def _suppressed(
    violation: Violation, noqa: dict[int, frozenset[str] | None]
) -> bool:
    if violation.line not in noqa:
        return False
    rules = noqa[violation.line]
    return rules is None or violation.rule_id in rules


def resolve_rules(select: str | None) -> tuple[LintRule, ...]:
    """The active rule set for a ``--select`` value (``None`` = all)."""
    if select is None:
        return all_rules()
    return tuple(
        get_rule(rule_id.strip())
        for rule_id in select.split(",")
        if rule_id.strip()
    )


def lint_source(
    source: str,
    path: str,
    rules: _t.Sequence[LintRule] | None = None,
) -> list[Violation]:
    """Lint one file's text.  ``path`` drives rule scoping, so synthetic
    paths like ``src/repro/sim/x.py`` work for tests."""
    active = tuple(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = LintContext(path, tree)
    applicable = [rule for rule in active if rule.applies_to(ctx)]
    if not applicable:
        return []
    # One walk per file: dispatch each node to the rules that declared
    # interest in its type.
    dispatch: dict[type[ast.AST], list[LintRule]] = {}
    for rule in applicable:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    violations: list[Violation] = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            violations.extend(rule.check_node(node, ctx))
    noqa = _noqa_map(source)
    # set(): several rules can flag the same node identically (e.g. a
    # chained comparison matching FELA005 twice); report each site once.
    return sorted(
        {v for v in violations if not _suppressed(v, noqa)}
    )


def iter_python_files(
    paths: _t.Iterable[str | pathlib.Path],
) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        else:
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: _t.Iterable[str | pathlib.Path],
    select: str | None = None,
) -> list[Violation]:
    """Lint files and directories; returns sorted violations."""
    rules = resolve_rules(select)
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(
            lint_source(
                path.read_text(encoding="utf-8"), str(path), rules
            )
        )
    return sorted(violations)


# -- reporting --------------------------------------------------------------


def format_text(violations: _t.Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    count = len(violations)
    lines.append(
        "no violations found"
        if count == 0
        else f"{count} violation{'s' if count != 1 else ''} found"
    )
    return "\n".join(lines)


def format_json(violations: _t.Sequence[Violation]) -> str:
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def format_error(message: str, output_format: str) -> str:
    """A usage error in the shape the chosen format promises.

    JSON consumers parse stdout/stderr either way, so an error must be
    a JSON document too — same for SARIF (an empty, valid run).
    """
    if output_format == "json":
        return json.dumps(
            {"error": message, "violations": [], "count": 0},
            indent=2,
            sort_keys=True,
        )
    if output_format == "sarif":
        from repro.analysis.flow.sarif import render_sarif

        return render_sarif([], {})
    return f"error: {message}"


def format_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.summary}")
    return "\n".join(lines)


# -- CLI --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static analysis for the Fela reproduction codebase",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the FELA lint rules")
    lint.add_argument("paths", nargs="+", help="files or directories")
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )

    sub.add_parser("rules", help="list the registered rules")

    flow = sub.add_parser(
        "flow", help="run the whole-program FELA1xx flow rules"
    )
    from repro.analysis.flow.cli import add_flow_arguments

    add_flow_arguments(flow)
    return parser


def run_lint(
    paths: _t.Sequence[str],
    output_format: str = "text",
    select: str | None = None,
) -> tuple[str, int]:
    """Lint ``paths``; return (report, exit_code)."""
    try:
        violations = lint_paths(paths, select=select)
    except (FileNotFoundError, KeyError) as exc:
        return format_error(str(exc), output_format), 2
    if output_format == "json":
        report = format_json(violations)
    elif output_format == "sarif":
        from repro.analysis.flow.sarif import render_sarif
        from repro.analysis.rules import all_rules

        report = render_sarif(
            violations,
            {rule.rule_id: rule.summary for rule in all_rules()},
        )
    else:
        report = format_text(violations)
    return report, 1 if violations else 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "rules":
            print(format_rules())
            return 0
        if args.command == "flow":
            from repro.analysis.flow.cli import run_flow_args

            report, code = run_flow_args(args)
        else:
            report, code = run_lint(
                args.paths, output_format=args.format, select=args.select
            )
        print(report, file=sys.stderr if code == 2 else sys.stdout)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; the
        # report was truncated on purpose, not by a linter failure.
        return 0
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
