"""Reproduction of *Fela: Incorporating Flexible Parallelism and Elastic
Tuning to Accelerate Large-Scale DML* (Geng, Li, Wang — ICDE 2020).

The paper's system is a distributed-training runtime for GPU clusters;
this package reproduces it end-to-end on a deterministic simulated
substrate:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.net` — max-min fair flow-level network fabric;
* :mod:`repro.hardware` — GPU saturation/memory model, nodes, clusters;
* :mod:`repro.models` — CNN layer algebra and the model zoo;
* :mod:`repro.profiling` / :mod:`repro.partition` — threshold-batch-size
  profiling and the bin-partitioned method;
* :mod:`repro.core` — Fela itself: tokens, the Token Server, the ADS/HF/
  CTD scheduling policies, workers, and the BSP/SSP/ASP runtime;
* :mod:`repro.tuning` — the two-phase runtime configuration tuner;
* :mod:`repro.baselines` — the DP / MP / HP baselines;
* :mod:`repro.stragglers` — straggler injection;
* :mod:`repro.metrics` / :mod:`repro.harness` — the paper's metrics and a
  generator per published table and figure;
* :mod:`repro.analysis` — determinism linter (``python -m repro.analysis
  lint``) and the opt-in runtime invariant checker;
* :mod:`repro.obs` — structured tracing (Chrome trace / Perfetto
  export), the metrics registry, and the plain-text run report (see
  ``docs/observability.md``).

Quickstart::

    from repro import ExperimentRunner, ExperimentSpec

    runner = ExperimentRunner()
    spec = ExperimentSpec(model_name="vgg19", total_batch=256,
                          iterations=10)
    results = runner.run_all(spec)
    for kind, result in results.items():
        print(kind, result.average_throughput)
"""

from repro.analysis import InvariantChecker
from repro.baselines import DataParallel, HybridParallel, ModelParallel
from repro.core import (
    FelaConfig,
    FelaRuntime,
    PipelinedFelaRuntime,
    SyncMode,
)
from repro.errors import (
    AnalysisError,
    BenchmarkError,
    CapacityError,
    ConfigurationError,
    InvariantViolation,
    ObservabilityError,
    PartitionError,
    ReproError,
    SchedulingError,
    SimulationError,
    TuningError,
)
from repro.hardware import Cluster, ClusterSpec, GpuSpec
from repro.harness import ExperimentRunner, ExperimentSpec
from repro.metrics import RunResult, average_throughput, per_iteration_delay
from repro.models import ModelGraph, available_models, get_model
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    TraceEvent,
    Tracer,
)
from repro.partition import Partition, SubModel, bin_partition, paper_partition
from repro.profiling import ThroughputProfiler
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
    TransientStraggler,
)
from repro.tuning import ConfigurationTuner

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BenchmarkError",
    "CapacityError",
    "Cluster",
    "ClusterSpec",
    "ConfigurationError",
    "ConfigurationTuner",
    "DataParallel",
    "ExperimentRunner",
    "ExperimentSpec",
    "FelaConfig",
    "FelaRuntime",
    "GpuSpec",
    "HybridParallel",
    "InvariantChecker",
    "InvariantViolation",
    "MetricsRegistry",
    "ModelGraph",
    "ModelParallel",
    "NoStraggler",
    "NullTracer",
    "ObservabilityError",
    "Partition",
    "PipelinedFelaRuntime",
    "PartitionError",
    "ProbabilityStraggler",
    "ReproError",
    "RoundRobinStraggler",
    "RunResult",
    "SchedulingError",
    "SimulationError",
    "SubModel",
    "SyncMode",
    "ThroughputProfiler",
    "TraceEvent",
    "Tracer",
    "TransientStraggler",
    "TuningError",
    "available_models",
    "average_throughput",
    "bin_partition",
    "get_model",
    "paper_partition",
    "per_iteration_delay",
    "__version__",
]
