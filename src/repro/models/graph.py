"""Model graphs: ordered layer stacks with resolved shapes and costs.

A :class:`ModelGraph` binds a sequence of :class:`~repro.models.layers.LayerSpec`
objects to a concrete input shape, resolving every intermediate shape once
and exposing per-layer :class:`LayerProfile` records (FLOPs, parameters,
activation sizes).  These records are the currency of the whole
reproduction: the GPU model prices compute from them, the network model
prices boundary transfers from them, and the partitioner groups them into
sub-models.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.models.layers import (
    BACKWARD_FLOP_FACTOR,
    BYTES_PER_FLOAT,
    LayerSpec,
    Shape,
)


@dataclasses.dataclass(frozen=True)
class LayerProfile:
    """A layer bound to its position and concrete shapes within a model."""

    index: int
    layer: LayerSpec
    in_shape: Shape
    out_shape: Shape
    forward_flops: float
    param_count: int
    #: Output floats per sample (the boundary activation a downstream
    #: sub-model must receive).
    activation_floats: int
    shape_signature: tuple

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def trainable(self) -> bool:
        return self.layer.trainable

    @property
    def backward_flops(self) -> float:
        return self.forward_flops * BACKWARD_FLOP_FACTOR

    @property
    def train_flops(self) -> float:
        """Forward + backward FLOPs per sample."""
        return self.forward_flops * (1.0 + BACKWARD_FLOP_FACTOR)

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_FLOAT

    @property
    def activation_bytes(self) -> int:
        """Output activation bytes per sample."""
        return self.activation_floats * BYTES_PER_FLOAT


class ModelGraph:
    """A named, shape-resolved stack of layers."""

    def __init__(
        self, name: str, input_shape: Shape, layers: _t.Sequence[LayerSpec]
    ) -> None:
        if not layers:
            raise ConfigurationError(f"model {name!r} has no layers")
        self.name = name
        self.input_shape = tuple(input_shape)
        self._profiles: list[LayerProfile] = []
        shape = self.input_shape
        for index, layer in enumerate(layers):
            out_shape = layer.output_shape(shape)
            self._profiles.append(
                LayerProfile(
                    index=index,
                    layer=layer,
                    in_shape=shape,
                    out_shape=out_shape,
                    forward_flops=layer.forward_flops(shape),
                    param_count=layer.param_count(shape),
                    activation_floats=layer.activation_floats(shape),
                    shape_signature=layer.shape_signature(shape),
                )
            )
            shape = out_shape
        self.output_shape = shape

    def __repr__(self) -> str:
        return (
            f"<ModelGraph {self.name!r} layers={len(self._profiles)} "
            f"params={self.param_count:,}>"
        )

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> _t.Iterator[LayerProfile]:
        return iter(self._profiles)

    def __getitem__(self, index: int) -> LayerProfile:
        return self._profiles[index]

    @property
    def layers(self) -> list[LayerProfile]:
        """All layer profiles, in execution order."""
        return list(self._profiles)

    @property
    def trainable_layers(self) -> list[LayerProfile]:
        """Layer profiles that carry parameters.

        This is the count the literature (and the paper's Table I) quotes as
        a model's "layer number": e.g. VGG19 = 16 CONV + 3 FC.
        """
        return [p for p in self._profiles if p.trainable]

    # -- aggregate costs ----------------------------------------------------

    @property
    def param_count(self) -> int:
        return sum(p.param_count for p in self._profiles)

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_FLOAT

    @property
    def forward_flops(self) -> float:
        """Forward FLOPs per sample over the whole model."""
        return sum(p.forward_flops for p in self._profiles)

    @property
    def train_flops(self) -> float:
        """Forward + backward FLOPs per sample over the whole model."""
        return sum(p.train_flops for p in self._profiles)

    @property
    def activation_floats_total(self) -> int:
        """Sum of all per-layer output floats per sample.

        Proxy for the activation memory a training pass must keep alive for
        the backward pass.
        """
        return sum(p.activation_floats for p in self._profiles)

    @property
    def input_floats(self) -> int:
        import math

        return int(math.prod(self.input_shape))

    @property
    def input_bytes(self) -> int:
        """Bytes of one input sample (what a remote sample fetch moves)."""
        return self.input_floats * BYTES_PER_FLOAT

    def slice(self, start: int, stop: int) -> list[LayerProfile]:
        """Layer profiles for the half-open layer range ``[start, stop)``."""
        if not 0 <= start < stop <= len(self._profiles):
            raise ConfigurationError(
                f"invalid layer range [{start}, {stop}) for "
                f"{len(self._profiles)}-layer model {self.name!r}"
            )
        return self._profiles[start:stop]
