"""Builders for the CNNs used or cited by the paper.

The two evaluation benchmarks are VGG19 (224x224 input) and GoogLeNet
(32x32 input, per the paper's footnote 17).  The remaining builders back
the Table I registry ("Growing Neural Network Layer Numbers") so the table
can be *regenerated from the models* rather than hard-coded.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.models.layers import (
    ConvSpec,
    GlobalPoolSpec,
    InceptionBranch,
    InceptionSpec,
    LinearSpec,
    PoolSpec,
    Shape,
)

# ---------------------------------------------------------------------------
# VGG


def _vgg_layers(config: _t.Sequence[int | str]) -> list:
    """Expand a VGG config list (channel counts and ``"M"`` pool marks)."""
    layers: list = []
    conv_index = 0
    for item in config:
        if item == "M":
            layers.append(PoolSpec(name=f"pool{len(layers)}"))
        else:
            conv_index += 1
            layers.append(
                ConvSpec(name=f"conv{conv_index}", out_channels=int(item))
            )
    layers.extend(
        [
            LinearSpec(name="fc1", out_features=4096),
            LinearSpec(name="fc2", out_features=4096),
            LinearSpec(name="fc3", out_features=1000),
        ]
    )
    return layers


_VGG16_CONFIG: tuple = (
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
    512, 512, 512, "M", 512, 512, 512, "M",
)
_VGG19_CONFIG: tuple = (
    64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
    512, 512, 512, 512, "M", 512, 512, 512, 512, "M",
)


def build_vgg16(input_shape: Shape = (3, 224, 224)) -> ModelGraph:
    """VGG16: 13 CONV + 3 FC trainable layers."""
    return ModelGraph("vgg16", input_shape, _vgg_layers(_VGG16_CONFIG))


def build_vgg19(input_shape: Shape = (3, 224, 224)) -> ModelGraph:
    """VGG19: 16 CONV + 3 FC trainable layers (the paper's main benchmark)."""
    return ModelGraph("vgg19", input_shape, _vgg_layers(_VGG19_CONFIG))


# ---------------------------------------------------------------------------
# GoogLeNet


def _inception(
    name: str,
    one: int,
    three_reduce: int,
    three: int,
    five_reduce: int,
    five: int,
    pool_proj: int,
) -> InceptionSpec:
    return InceptionSpec(
        name=name,
        branches=(
            InceptionBranch(out_channels=one, kernel=1),
            InceptionBranch(
                out_channels=three, kernel=3, reduce_channels=three_reduce
            ),
            InceptionBranch(
                out_channels=five, kernel=5, reduce_channels=five_reduce
            ),
            InceptionBranch(out_channels=pool_proj, pool_proj=True),
        ),
    )


def build_googlenet(input_shape: Shape = (3, 32, 32)) -> ModelGraph:
    """GoogLeNet with 12 trainable units: 2 stem convs + 9 inceptions + 1 FC.

    The paper partitions GoogLeNet as a 12-unit model (sub-models L1-4,
    L5-9, L10-12), which corresponds to counting each inception module as
    one unit.  The default 32x32 input matches the paper's footnote 17.
    """
    layers = [
        ConvSpec(name="conv1", out_channels=64, kernel=7, stride=2, padding=3),
        PoolSpec(name="pool1", kernel=3, stride=2, padding=1),
        ConvSpec(name="conv2", out_channels=192, kernel=3, stride=1, padding=1),
        PoolSpec(name="pool2", kernel=3, stride=2, padding=1),
        _inception("inception3a", 64, 96, 128, 16, 32, 32),
        _inception("inception3b", 128, 128, 192, 32, 96, 64),
        PoolSpec(name="pool3", kernel=3, stride=2, padding=1),
        _inception("inception4a", 192, 96, 208, 16, 48, 64),
        _inception("inception4b", 160, 112, 224, 24, 64, 64),
        _inception("inception4c", 128, 128, 256, 24, 64, 64),
        _inception("inception4d", 112, 144, 288, 32, 64, 64),
        _inception("inception4e", 256, 160, 320, 32, 128, 128),
        PoolSpec(name="pool4", kernel=3, stride=2, padding=1),
        _inception("inception5a", 256, 160, 320, 32, 128, 128),
        _inception("inception5b", 384, 192, 384, 48, 128, 128),
        GlobalPoolSpec(name="gpool"),
        LinearSpec(name="fc", out_features=1000),
    ]
    return ModelGraph("googlenet", input_shape, layers)


# ---------------------------------------------------------------------------
# Historic models (Table I registry backing)


def build_lenet5(input_shape: Shape = (1, 32, 32)) -> ModelGraph:
    """LeNet-5: 2 CONV + 3 FC trainable layers."""
    layers = [
        ConvSpec(name="c1", out_channels=6, kernel=5, stride=1, padding=0),
        PoolSpec(name="s2"),
        ConvSpec(name="c3", out_channels=16, kernel=5, stride=1, padding=0),
        PoolSpec(name="s4"),
        LinearSpec(name="c5", out_features=120),
        LinearSpec(name="f6", out_features=84),
        LinearSpec(name="output", out_features=10),
    ]
    return ModelGraph("lenet5", input_shape, layers)


def build_alexnet(input_shape: Shape = (3, 227, 227)) -> ModelGraph:
    """AlexNet: 5 CONV + 3 FC trainable layers."""
    layers = [
        ConvSpec(name="conv1", out_channels=96, kernel=11, stride=4, padding=0),
        PoolSpec(name="pool1", kernel=3, stride=2),
        ConvSpec(name="conv2", out_channels=256, kernel=5, stride=1, padding=2),
        PoolSpec(name="pool2", kernel=3, stride=2),
        ConvSpec(name="conv3", out_channels=384),
        ConvSpec(name="conv4", out_channels=384),
        ConvSpec(name="conv5", out_channels=256),
        PoolSpec(name="pool5", kernel=3, stride=2),
        LinearSpec(name="fc6", out_features=4096),
        LinearSpec(name="fc7", out_features=4096),
        LinearSpec(name="fc8", out_features=1000),
    ]
    return ModelGraph("alexnet", input_shape, layers)


def build_zfnet(input_shape: Shape = (3, 224, 224)) -> ModelGraph:
    """ZF Net: AlexNet variant with a 7x7/2 first layer (8 trainable)."""
    layers = [
        ConvSpec(name="conv1", out_channels=96, kernel=7, stride=2, padding=1),
        PoolSpec(name="pool1", kernel=3, stride=2),
        ConvSpec(name="conv2", out_channels=256, kernel=5, stride=2, padding=0),
        PoolSpec(name="pool2", kernel=3, stride=2),
        ConvSpec(name="conv3", out_channels=384),
        ConvSpec(name="conv4", out_channels=384),
        ConvSpec(name="conv5", out_channels=256),
        PoolSpec(name="pool5", kernel=3, stride=2),
        LinearSpec(name="fc6", out_features=4096),
        LinearSpec(name="fc7", out_features=4096),
        LinearSpec(name="fc8", out_features=1000),
    ]
    return ModelGraph("zfnet", input_shape, layers)


def build_resnet152(input_shape: Shape = (3, 224, 224)) -> ModelGraph:
    """ResNet-152 as a sequential cost model (skip-adds are negligible).

    1 stem conv + 50 bottleneck blocks x 3 convs + 1 FC = 152 trainable
    layers, the number Table I quotes.  Identity shortcuts change costs by
    <1%, so the sequential approximation is adequate for throughput
    modelling.
    """
    layers: list = [
        ConvSpec(name="conv1", out_channels=64, kernel=7, stride=2, padding=3),
        PoolSpec(name="pool1", kernel=3, stride=2, padding=1),
    ]
    stage_blocks = ((64, 3), (128, 8), (256, 36), (512, 3))
    block_id = 0
    for stage_index, (width, blocks) in enumerate(stage_blocks):
        for block in range(blocks):
            block_id += 1
            stride = 2 if (stage_index > 0 and block == 0) else 1
            layers.extend(
                [
                    ConvSpec(
                        name=f"b{block_id}_reduce",
                        out_channels=width,
                        kernel=1,
                        stride=1,
                        padding=0,
                    ),
                    ConvSpec(
                        name=f"b{block_id}_conv",
                        out_channels=width,
                        kernel=3,
                        stride=stride,
                        padding=1,
                    ),
                    ConvSpec(
                        name=f"b{block_id}_expand",
                        out_channels=width * 4,
                        kernel=1,
                        stride=1,
                        padding=0,
                    ),
                ]
            )
    layers.append(GlobalPoolSpec(name="gpool"))
    layers.append(LinearSpec(name="fc", out_features=1000))
    return ModelGraph("resnet152", input_shape, layers)


# ---------------------------------------------------------------------------
# Registry / Table I


@dataclasses.dataclass(frozen=True)
class ZooEntry:
    """One row of the paper's Table I, optionally backed by a builder."""

    name: str
    year: int
    layer_number: int
    builder: _t.Callable[[], ModelGraph] | None = None


#: Paper Table I: "Growing Neural Network Layer Numbers".  Entries without
#: builders (CUImage, SENet) are registry-only, as the paper cites them only
#: for their depth.
TABLE_I: tuple[ZooEntry, ...] = (
    ZooEntry("LeNet-5", 1998, 5, build_lenet5),
    ZooEntry("AlexNet", 2012, 8, build_alexnet),
    ZooEntry("ZF Net", 2013, 8, build_zfnet),
    ZooEntry("VGG16", 2014, 16, build_vgg16),
    ZooEntry("VGG19", 2014, 19, build_vgg19),
    ZooEntry("GoogleNet", 2014, 22, build_googlenet),
    ZooEntry("ResNet-152", 2015, 152, build_resnet152),
    ZooEntry("CUImage", 2016, 1207, None),
    ZooEntry("SENet", 2017, 154, None),
)

_BUILDERS: dict[str, _t.Callable[..., ModelGraph]] = {
    "lenet5": build_lenet5,
    "alexnet": build_alexnet,
    "zfnet": build_zfnet,
    "vgg16": build_vgg16,
    "vgg19": build_vgg19,
    "googlenet": build_googlenet,
    "resnet152": build_resnet152,
}


def get_model(name: str, input_shape: Shape | None = None) -> ModelGraph:
    """Build a model from the zoo by name.

    >>> get_model("vgg19").name
    'vgg19'
    """
    try:
        builder = _BUILDERS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    if input_shape is None:
        return builder()
    return builder(input_shape)


def available_models() -> list[str]:
    """Names accepted by :func:`get_model`."""
    return sorted(_BUILDERS)
