"""Layer algebra: analytic cost model for neural-network layers.

Each :class:`LayerSpec` describes one trainable (or shape-transforming)
layer and can answer, for a given input shape:

* its output shape,
* forward FLOPs per sample (backward is modelled as 2x forward, the usual
  rule of thumb for convnets),
* parameter count,
* output activation size (floats per sample).

Shapes are channel-first tuples: ``(C, H, W)`` for spatial tensors and
``(F,)`` for flattened feature vectors.  All counts are *per sample*; batch
scaling happens in the hardware model.
"""

from __future__ import annotations

import abc
import dataclasses
import math
import typing as _t

from repro.errors import ConfigurationError

#: A tensor shape without the batch dimension.
Shape = _t.Tuple[int, ...]

#: Bytes per parameter / activation element (float32 everywhere, matching
#: the paper's PyTorch prototypes).
BYTES_PER_FLOAT: int = 4

#: Multiplier applied to forward FLOPs to estimate the backward pass
#: (gradient w.r.t. inputs + gradient w.r.t. weights each cost about one
#: forward's worth of work).
BACKWARD_FLOP_FACTOR: float = 2.0


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    """Standard convolution/pooling output-size arithmetic."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ConfigurationError(
            f"layer reduces spatial size {size} below 1 "
            f"(kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


class LayerSpec(abc.ABC):
    """A single layer of a model graph."""

    #: Human-readable layer name (set by subclasses).
    name: str

    @abc.abstractmethod
    def output_shape(self, in_shape: Shape) -> Shape:
        """Shape produced for an input of ``in_shape``."""

    @abc.abstractmethod
    def forward_flops(self, in_shape: Shape) -> float:
        """Forward FLOPs per sample."""

    @abc.abstractmethod
    def param_count(self, in_shape: Shape) -> int:
        """Number of trainable parameters."""

    @abc.abstractmethod
    def shape_signature(self, in_shape: Shape) -> tuple:
        """Hashable signature identifying the *kernel shape* of this layer.

        The paper observes that a deep CNN has only a handful of distinct
        layer shapes (e.g. VGG19's 16 CONV layers fall into 5 shape types),
        and profiles the threshold batch size *per shape, once and for all*.
        This signature is the repository key.  Convolutions use the paper's
        ``(C_in, C_out, H, W)`` format.
        """

    @property
    def trainable(self) -> bool:
        """Whether the layer has parameters (pool/activation layers don't)."""
        return True

    def activation_floats(self, in_shape: Shape) -> int:
        """Output floats per sample (what a boundary transfer must move)."""
        return int(math.prod(self.output_shape(in_shape)))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


@dataclasses.dataclass(frozen=True, repr=False)
class ConvSpec(LayerSpec):
    """2-D convolution (+ implicit ReLU, whose cost is negligible)."""

    name: str
    out_channels: int
    kernel: int = 3
    stride: int = 1
    padding: int = 1

    def output_shape(self, in_shape: Shape) -> Shape:
        c, h, w = self._check(in_shape)
        return (
            self.out_channels,
            _conv_out(h, self.kernel, self.stride, self.padding),
            _conv_out(w, self.kernel, self.stride, self.padding),
        )

    def forward_flops(self, in_shape: Shape) -> float:
        c_in, _, _ = self._check(in_shape)
        _, h_out, w_out = self.output_shape(in_shape)
        return 2.0 * self.kernel**2 * c_in * self.out_channels * h_out * w_out

    def param_count(self, in_shape: Shape) -> int:
        c_in, _, _ = self._check(in_shape)
        return self.kernel**2 * c_in * self.out_channels + self.out_channels

    def shape_signature(self, in_shape: Shape) -> tuple:
        c_in, h, w = self._check(in_shape)
        return ("conv", c_in, self.out_channels, h, w, self.kernel, self.stride)

    def _check(self, in_shape: Shape) -> Shape:
        if len(in_shape) != 3:
            raise ConfigurationError(
                f"{self.name}: conv needs a (C, H, W) input, got {in_shape}"
            )
        return in_shape


@dataclasses.dataclass(frozen=True, repr=False)
class LinearSpec(LayerSpec):
    """Fully connected layer.  Flattens spatial inputs implicitly."""

    name: str
    out_features: int

    def output_shape(self, in_shape: Shape) -> Shape:
        return (self.out_features,)

    def forward_flops(self, in_shape: Shape) -> float:
        return 2.0 * math.prod(in_shape) * self.out_features

    def param_count(self, in_shape: Shape) -> int:
        return math.prod(in_shape) * self.out_features + self.out_features

    def shape_signature(self, in_shape: Shape) -> tuple:
        return ("fc", math.prod(in_shape), self.out_features)


@dataclasses.dataclass(frozen=True, repr=False)
class PoolSpec(LayerSpec):
    """Max/average pooling: no parameters, cheap compute."""

    name: str
    kernel: int = 2
    stride: int = 2
    padding: int = 0

    def output_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        return (
            c,
            _conv_out(h, self.kernel, self.stride, self.padding),
            _conv_out(w, self.kernel, self.stride, self.padding),
        )

    def forward_flops(self, in_shape: Shape) -> float:
        c, h_out, w_out = self.output_shape(in_shape)
        return float(self.kernel**2 * c * h_out * w_out)

    def param_count(self, in_shape: Shape) -> int:
        return 0

    @property
    def trainable(self) -> bool:
        return False

    def shape_signature(self, in_shape: Shape) -> tuple:
        c, h, w = in_shape
        return ("pool", c, h, w, self.kernel, self.stride)


@dataclasses.dataclass(frozen=True, repr=False)
class GlobalPoolSpec(LayerSpec):
    """Global average pooling down to 1x1 spatial size."""

    name: str

    def output_shape(self, in_shape: Shape) -> Shape:
        c = in_shape[0]
        return (c, 1, 1)

    def forward_flops(self, in_shape: Shape) -> float:
        return float(math.prod(in_shape))

    def param_count(self, in_shape: Shape) -> int:
        return 0

    @property
    def trainable(self) -> bool:
        return False

    def shape_signature(self, in_shape: Shape) -> tuple:
        return ("gpool",) + tuple(in_shape)


@dataclasses.dataclass(frozen=True)
class InceptionBranch:
    """One branch of an inception module, as (kernel, mid, out) conv chain.

    ``reduce_channels`` is the 1x1 reduction applied first (0 = none);
    ``out_channels`` is the main convolution's output; ``kernel`` its size.
    ``pool_proj`` marks the 3x3-pool + 1x1-projection branch.
    """

    out_channels: int
    kernel: int = 1
    reduce_channels: int = 0
    pool_proj: bool = False


@dataclasses.dataclass(frozen=True, repr=False)
class InceptionSpec(LayerSpec):
    """A GoogLeNet inception module, modelled as one composite layer.

    Branches run in parallel on the same input and their outputs are
    concatenated along the channel axis, so the module preserves spatial
    size and produces ``sum(branch out_channels)`` channels.  Treating the
    module as one unit matches the paper's layer counting (GoogLeNet is
    "12 layers" for partitioning: 2 stem convs + 9 inceptions + 1 FC).
    """

    name: str
    branches: tuple[InceptionBranch, ...]

    def output_shape(self, in_shape: Shape) -> Shape:
        _, h, w = in_shape
        return (sum(b.out_channels for b in self.branches), h, w)

    def forward_flops(self, in_shape: Shape) -> float:
        c_in, h, w = in_shape
        total = 0.0
        for branch in self.branches:
            if branch.pool_proj:
                # 3x3 pool then 1x1 projection conv.
                total += 9.0 * c_in * h * w
                total += 2.0 * c_in * branch.out_channels * h * w
                continue
            mid = branch.reduce_channels or c_in
            if branch.reduce_channels:
                total += 2.0 * c_in * branch.reduce_channels * h * w
            total += (
                2.0 * branch.kernel**2 * mid * branch.out_channels * h * w
            )
        return total

    def param_count(self, in_shape: Shape) -> int:
        c_in = in_shape[0]
        total = 0
        for branch in self.branches:
            if branch.pool_proj:
                total += c_in * branch.out_channels + branch.out_channels
                continue
            mid = branch.reduce_channels or c_in
            if branch.reduce_channels:
                total += c_in * branch.reduce_channels + branch.reduce_channels
            total += (
                branch.kernel**2 * mid * branch.out_channels
                + branch.out_channels
            )
        return total

    def shape_signature(self, in_shape: Shape) -> tuple:
        c_in, h, w = in_shape
        out = sum(b.out_channels for b in self.branches)
        return ("inception", c_in, out, h, w)
