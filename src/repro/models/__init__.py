"""Neural-network cost models: layer algebra and the CNN zoo."""

from repro.models.blocks import (
    BlockSpec,
    build_matrix_factorization,
    build_pagerank,
)
from repro.models.graph import LayerProfile, ModelGraph
from repro.models.layers import (
    BACKWARD_FLOP_FACTOR,
    BYTES_PER_FLOAT,
    ConvSpec,
    GlobalPoolSpec,
    InceptionBranch,
    InceptionSpec,
    LayerSpec,
    LinearSpec,
    PoolSpec,
    Shape,
)
from repro.models.zoo import (
    TABLE_I,
    ZooEntry,
    available_models,
    build_alexnet,
    build_googlenet,
    build_lenet5,
    build_resnet152,
    build_vgg16,
    build_vgg19,
    build_zfnet,
    get_model,
)

__all__ = [
    "BACKWARD_FLOP_FACTOR",
    "BYTES_PER_FLOAT",
    "BlockSpec",
    "ConvSpec",
    "GlobalPoolSpec",
    "InceptionBranch",
    "InceptionSpec",
    "LayerProfile",
    "LayerSpec",
    "LinearSpec",
    "ModelGraph",
    "PoolSpec",
    "Shape",
    "TABLE_I",
    "ZooEntry",
    "available_models",
    "build_alexnet",
    "build_googlenet",
    "build_lenet5",
    "build_matrix_factorization",
    "build_pagerank",
    "build_resnet152",
    "build_vgg16",
    "build_vgg19",
    "build_zfnet",
    "get_model",
]
