"""Generic computation blocks: non-CNN workloads on the same machinery.

Section II-B of the paper argues that parallelism-degree heterogeneity is
"also very common for other DML tasks, such as matrix factorization and
PageRank".  Everything downstream of the layer algebra — profiling,
bin-partitioning, the token machinery, the baselines — only consumes the
:class:`~repro.models.layers.LayerSpec` interface, so any workload whose
stages can state their per-sample FLOPs, parameter count, and boundary
size plugs straight in.

:class:`BlockSpec` is that escape hatch, and :func:`build_matrix_
factorization` / :func:`build_pagerank` use it to model the two workloads
the paper names.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.models.graph import ModelGraph
from repro.models.layers import LayerSpec, Shape


@dataclasses.dataclass(frozen=True, repr=False)
class BlockSpec(LayerSpec):
    """A computation stage described directly by its costs.

    ``flops_per_sample`` is the forward work per training sample (the
    backward multiple is applied by the hardware model exactly as for
    CNN layers); ``output_floats`` is what the next stage must receive
    per sample and also how many independent elements one sample exposes
    to the GPU's saturation model.
    """

    name: str
    flops_per_sample: float
    params: int
    output_floats: int

    def __post_init__(self) -> None:
        if self.flops_per_sample < 0 or self.params < 0:
            raise ConfigurationError(
                f"block {self.name!r}: negative costs"
            )
        if self.output_floats < 1:
            raise ConfigurationError(
                f"block {self.name!r}: output must be >= 1 float"
            )

    def output_shape(self, in_shape: Shape) -> Shape:
        return (self.output_floats,)

    def forward_flops(self, in_shape: Shape) -> float:
        return self.flops_per_sample

    def param_count(self, in_shape: Shape) -> int:
        return self.params

    def activation_floats(self, in_shape: Shape) -> int:
        return self.output_floats

    def shape_signature(self, in_shape: Shape) -> tuple:
        return (
            "block",
            self.name,
            int(self.flops_per_sample),
            self.output_floats,
        )

    @property
    def trainable(self) -> bool:
        return self.params > 0


def build_matrix_factorization(
    users: int = 1_000_000,
    items: int = 100_000,
    rank: int = 128,
) -> ModelGraph:
    """SGD matrix factorization as three heterogeneous blocks.

    One "sample" is one observed rating.  The stages mirror the classic
    parallel-SGD MF decomposition (the paper's refs [27], [28]):

    1. *user-update* — gather the user factor, compute the residual,
       apply the gradient: O(rank) FLOPs per rating, but touching a
       user-partitioned parameter matrix (``users x rank``);
    2. *item-update* — the same against the item matrix;
    3. *loss* — residual reduction, nearly free, no parameters.

    The heterogeneity the paper points at is visible immediately: the
    per-sample compute is tiny while the parameter state is huge, so the
    per-block threshold batch sizes come out enormous and very different
    from CNN layers — exactly why a fixed batch size wastes resources
    across workload types.
    """
    if users < 1 or items < 1 or rank < 1:
        raise ConfigurationError(
            f"invalid MF sizes: users={users} items={items} rank={rank}"
        )
    blocks = [
        BlockSpec(
            name="user-update",
            flops_per_sample=6.0 * rank,
            params=users * rank,
            output_floats=rank,
        ),
        BlockSpec(
            name="item-update",
            flops_per_sample=6.0 * rank,
            params=items * rank,
            output_floats=rank,
        ),
        BlockSpec(
            name="loss",
            flops_per_sample=2.0 * rank,
            params=0,
            output_floats=1,
        ),
    ]
    return ModelGraph("matrix-factorization", (rank,), blocks)


def build_pagerank(
    nodes: int = 10_000_000,
    mean_degree: int = 16,
    partitions: int = 4,
) -> ModelGraph:
    """Block-partitioned PageRank power iteration.

    One "sample" is one vertex whose rank is recomputed.  Each of the
    ``partitions`` blocks scatters contributions over one horizontal
    stripe of the adjacency structure; the final block normalizes.  The
    rank vector itself is the "parameter" state that must synchronize
    across workers each iteration.
    """
    if nodes < 1 or mean_degree < 1 or partitions < 1:
        raise ConfigurationError(
            f"invalid PageRank sizes: nodes={nodes} "
            f"degree={mean_degree} partitions={partitions}"
        )
    stripe_params = nodes // partitions
    blocks = [
        BlockSpec(
            name=f"scatter-{index}",
            flops_per_sample=2.0 * mean_degree / partitions,
            params=stripe_params,
            output_floats=1,
        )
        for index in range(partitions)
    ]
    blocks.append(
        BlockSpec(
            name="normalize",
            flops_per_sample=2.0,
            params=0,
            output_floats=1,
        )
    )
    return ModelGraph("pagerank", (1,), blocks)
