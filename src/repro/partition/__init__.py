"""Offline model partitioning: the bin-partitioned method (paper IV-A)."""

from repro.partition.bins import (
    DEFAULT_BIN_WIDTH,
    bin_partition,
    layer_thresholds,
    paper_partition,
    partition_by_counts,
    quantile_partition,
)
from repro.partition.submodel import Partition, SubModel, make_submodel

__all__ = [
    "DEFAULT_BIN_WIDTH",
    "Partition",
    "SubModel",
    "bin_partition",
    "layer_thresholds",
    "make_submodel",
    "paper_partition",
    "partition_by_counts",
    "quantile_partition",
]
