"""Sub-models: contiguous slices of a model produced by partitioning."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import PartitionError
from repro.models import BYTES_PER_FLOAT, LayerProfile, ModelGraph
from repro.models.layers import LinearSpec

#: Parameter bytes per training FLOP above which a sub-model counts as
#: communication-intensive.  VGG19's FC block sits at ~0.66, its conv
#: blocks at ~1e-4..1e-3; matrix-factorization blocks at >> 1.
_COMM_INTENSITY_THRESHOLD: float = 0.3


@dataclasses.dataclass(frozen=True)
class SubModel:
    """One contiguous slice of a model, trained as a unit by one token.

    ``index`` is the sub-model's position (0-based; the paper's SM-1 is
    index 0).  ``layers`` includes non-trainable layers (pools) that fall
    inside the slice, because they still cost compute and change shapes.
    """

    index: int
    layers: tuple[LayerProfile, ...]
    #: Threshold batch size to saturate the GPU, for the slice as a whole
    #: (power-of-two rounded median of the member layers' thresholds).
    threshold_batch: int

    def __post_init__(self) -> None:
        if not self.layers:
            raise PartitionError(f"sub-model {self.index} has no layers")
        if self.threshold_batch < 1:
            raise PartitionError(
                f"sub-model {self.index}: threshold batch must be >= 1"
            )

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"SM-{self.index + 1}"

    @property
    def first_layer_index(self) -> int:
        return self.layers[0].index

    @property
    def last_layer_index(self) -> int:
        return self.layers[-1].index

    @property
    def trainable_layers(self) -> list[LayerProfile]:
        return [p for p in self.layers if p.trainable]

    # -- costs ------------------------------------------------------------------

    @property
    def forward_flops(self) -> float:
        """Forward FLOPs per sample across the slice."""
        return sum(p.forward_flops for p in self.layers)

    @property
    def train_flops(self) -> float:
        return sum(p.train_flops for p in self.layers)

    @property
    def param_count(self) -> int:
        return sum(p.param_count for p in self.layers)

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_FLOAT

    @property
    def input_floats(self) -> int:
        """Floats per sample this sub-model consumes as input."""
        import math

        return int(math.prod(self.layers[0].in_shape))

    @property
    def input_bytes(self) -> int:
        return self.input_floats * BYTES_PER_FLOAT

    @property
    def output_floats(self) -> int:
        """Floats per sample this sub-model emits (its boundary activation)."""
        return self.layers[-1].activation_floats

    @property
    def output_bytes(self) -> int:
        return self.output_floats * BYTES_PER_FLOAT

    @property
    def communication_intensive(self) -> bool:
        """Whether CTD policy should restrict this sub-model (paper III-F).

        The paper targets "sub-models containing FC layers": they hold
        most of the parameters (synchronization cost) but little compute.
        For non-CNN workloads (matrix factorization, PageRank — the
        paper's Section II-B examples) the same criterion generalizes to
        the parameter-bytes-per-training-FLOP ratio: above
        ``_COMM_INTENSITY_THRESHOLD`` the sub-model costs more to
        synchronize than to compute at any realistic batch size.
        """
        if any(
            isinstance(p.layer, LinearSpec) for p in self.trainable_layers
        ):
            return True
        if self.train_flops <= 0:
            return self.param_bytes > 0
        return (
            self.param_bytes / self.train_flops > _COMM_INTENSITY_THRESHOLD
        )

    def __repr__(self) -> str:
        return (
            f"<SubModel {self.name} layers="
            f"[{self.first_layer_index}..{self.last_layer_index}] "
            f"threshold={self.threshold_batch}>"
        )


@dataclasses.dataclass(frozen=True)
class Partition:
    """An ordered list of sub-models covering a model exactly once."""

    model: ModelGraph
    submodels: tuple[SubModel, ...]

    def __post_init__(self) -> None:
        if not self.submodels:
            raise PartitionError("partition has no sub-models")
        covered = [p.index for sm in self.submodels for p in sm.layers]
        expected = list(range(len(self.model)))
        if covered != expected:
            raise PartitionError(
                f"partition does not cover model {self.model.name!r} "
                f"contiguously: {covered[:8]}..."
            )

    def __len__(self) -> int:
        return len(self.submodels)

    def __iter__(self) -> _t.Iterator[SubModel]:
        return iter(self.submodels)

    def __getitem__(self, index: int) -> SubModel:
        return self.submodels[index]

    @property
    def thresholds(self) -> list[int]:
        return [sm.threshold_batch for sm in self.submodels]

    def describe(self) -> str:
        """Human-readable summary (layer ranges in 1-based trainable count)."""
        parts = []
        trainable_pos = 0
        for sm in self.submodels:
            n = len(sm.trainable_layers)
            lo, hi = trainable_pos + 1, trainable_pos + n
            trainable_pos = hi
            parts.append(
                f"{sm.name}: trainable layers {lo}-{hi}, "
                f"threshold {sm.threshold_batch}, "
                f"{sm.param_count / 1e6:.1f}M params, "
                f"{sm.forward_flops / 1e9:.2f} GFLOP/sample"
            )
        return "\n".join(parts)


def _round_pow2(value: float) -> int:
    """Round to the nearest power of two (ties go down)."""
    import math

    if value <= 1:
        return 1
    lower = 2 ** math.floor(math.log2(value))
    upper = lower * 2
    return int(lower if value - lower <= upper - value else upper)


def make_submodel(
    index: int,
    layers: _t.Sequence[LayerProfile],
    thresholds: _t.Mapping[int, int],
) -> SubModel:
    """Build a :class:`SubModel`, deriving its threshold batch size.

    The slice saturates the GPU only once its *least parallel* member
    does, so the slice threshold is the power-of-two-rounded maximum of
    its trainable members' thresholds.  (Using the median instead leaves
    the high-knee members running below the saturation floor at every
    token — measurably slower end-to-end.)
    """
    trainable = [p for p in layers if p.trainable]
    if trainable:
        member_thresholds = [thresholds[p.index] for p in trainable]
        threshold = _round_pow2(max(member_thresholds))
    else:
        threshold = 1
    return SubModel(
        index=index, layers=tuple(layers), threshold_batch=threshold
    )
