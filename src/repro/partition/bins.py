"""Offline model partitioning (paper Section IV-A).

Two entry points:

* :func:`bin_partition` — the paper's *bin-partitioned method*: arrange
  per-layer threshold batch sizes in location order and group consecutive
  layers whose thresholds fall into the same bin.  Our implementation
  additionally tolerates one bin of jitter against the group's running
  median, because analytically-derived thresholds alternate between
  adjacent bins where the paper's measured ones did not (e.g. VGG19's
  conv3/conv5/conv9 land at 32 while their neighbours land at 16).
* :func:`paper_partition` — the exact published partitions for the two
  evaluation benchmarks (VGG19: trainable layers 1-8 / 9-16 / 17-19;
  GoogLeNet: units 1-4 / 5-9 / 10-12), used by the experiment harness for
  fidelity to the paper's configuration.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import PartitionError
from repro.models import LayerProfile, ModelGraph
from repro.partition.submodel import Partition, SubModel, make_submodel
from repro.profiling import ThroughputProfiler

#: The paper's bin width ("We choose 16 as the bin size").
DEFAULT_BIN_WIDTH: int = 16

#: Published partitions, as counts of *trainable* layers per sub-model.
_PAPER_PARTITIONS: dict[str, tuple[int, ...]] = {
    "vgg19": (8, 8, 3),
    "googlenet": (4, 5, 3),
}


def layer_thresholds(
    model: ModelGraph, profiler: ThroughputProfiler | None = None
) -> dict[int, int]:
    """Threshold batch size per layer index (trainable layers only)."""
    profiler = profiler or ThroughputProfiler()
    return {
        profile.index: threshold
        for profile, threshold in profiler.model_thresholds(model)
    }


def _group_boundaries_by_bin(
    trainable: _t.Sequence[LayerProfile],
    thresholds: _t.Mapping[int, int],
    bin_width: int,
    jitter_bins: float,
) -> list[int]:
    """Indices (into ``trainable``) where a new sub-model starts.

    A new group starts when a layer's threshold leaves the current group's
    running-median bin by more than ``jitter_bins`` bins on a log2 scale.
    """
    boundaries = [0]
    group: list[int] = []
    for position, profile in enumerate(trainable):
        threshold = thresholds[profile.index]
        if not group:
            group.append(threshold)
            continue
        group_sorted = sorted(group)
        median = group_sorted[len(group_sorted) // 2]
        # Compare bins on a log2 scale so the tolerance is relative: one
        # bin of jitter around batch 16 is 16..32, around 1024 it is
        # 1024..2048.
        distance = abs(
            math.log2(max(threshold, 1)) - math.log2(max(median, 1))
        )
        tolerance = jitter_bins * math.log2(
            1.0 + bin_width / max(float(median), 1.0)
        )
        if distance > max(tolerance, jitter_bins):
            boundaries.append(position)
            group = [threshold]
        else:
            group.append(threshold)
    return boundaries


def bin_partition(
    model: ModelGraph,
    profiler: ThroughputProfiler | None = None,
    bin_width: int = DEFAULT_BIN_WIDTH,
    jitter_bins: float = 1.0,
) -> Partition:
    """Partition ``model`` with the bin-partitioned method.

    Parameters
    ----------
    model:
        The model to partition.
    profiler:
        Source of threshold batch sizes; a default profiler (default GPU)
        is created if omitted.
    bin_width:
        Width of the threshold bins, in batch-size units (paper: 16).
    jitter_bins:
        Tolerated per-layer deviation from the group's running median, in
        bins on a log2 scale.  ``0`` reproduces strict same-bin grouping.
    """
    if bin_width < 1:
        raise PartitionError(f"bin width must be >= 1: {bin_width}")
    profiler = profiler or ThroughputProfiler()
    thresholds = layer_thresholds(model, profiler)
    trainable = model.trainable_layers
    if not trainable:
        raise PartitionError(f"model {model.name!r} has no trainable layers")

    boundaries = _group_boundaries_by_bin(
        trainable, thresholds, bin_width, jitter_bins
    )
    counts = [
        (boundaries[i + 1] if i + 1 < len(boundaries) else len(trainable))
        - boundaries[i]
        for i in range(len(boundaries))
    ]
    return partition_by_counts(model, counts, thresholds)


def partition_by_counts(
    model: ModelGraph,
    trainable_counts: _t.Sequence[int],
    thresholds: _t.Mapping[int, int] | None = None,
    profiler: ThroughputProfiler | None = None,
) -> Partition:
    """Partition ``model`` into groups of the given trainable-layer counts.

    Non-trainable layers (pools) are attached to the sub-model of the
    trainable layer that precedes them, except leading ones, which join
    the first sub-model.
    """
    trainable = model.trainable_layers
    if sum(trainable_counts) != len(trainable):
        raise PartitionError(
            f"counts {tuple(trainable_counts)} do not sum to the "
            f"{len(trainable)} trainable layers of {model.name!r}"
        )
    if any(count < 1 for count in trainable_counts):
        raise PartitionError(
            f"every sub-model needs >= 1 trainable layer: {trainable_counts}"
        )
    if thresholds is None:
        thresholds = layer_thresholds(model, profiler)

    # Map each trainable-layer ordinal to its model layer index, then cut
    # the *full* layer list right before each group's first trainable layer.
    trainable_indices = [p.index for p in trainable]
    cut_points = [0]
    ordinal = 0
    for count in trainable_counts[:-1]:
        ordinal += count
        cut_points.append(trainable_indices[ordinal])
    cut_points.append(len(model))

    submodels: list[SubModel] = []
    for sm_index in range(len(trainable_counts)):
        layers = model.slice(cut_points[sm_index], cut_points[sm_index + 1])
        submodels.append(make_submodel(sm_index, layers, thresholds))
    return Partition(model=model, submodels=tuple(submodels))


def quantile_partition(
    model: ModelGraph,
    num_submodels: int,
    profiler: ThroughputProfiler | None = None,
) -> Partition:
    """Partition into a *requested* number of sub-models.

    The bin-partitioned method needs thresholds that spread across bins;
    models whose analytic thresholds are flat or all beyond the sweep
    (e.g. GoogLeNet at 32x32) defeat it.  This variant instead places the
    ``num_submodels - 1`` boundaries at the largest *relative jumps* of a
    depth-smoothed threshold curve, falling back to even layer counts
    when the curve is completely flat — so the user can always ask for
    the paper's "3 sub-models" granularity.
    """
    if num_submodels < 1:
        raise PartitionError(
            f"need >= 1 sub-model: {num_submodels}"
        )
    profiler = profiler or ThroughputProfiler()
    thresholds = layer_thresholds(model, profiler)
    trainable = model.trainable_layers
    if num_submodels > len(trainable):
        raise PartitionError(
            f"{num_submodels} sub-models exceed the {len(trainable)} "
            f"trainable layers of {model.name!r}"
        )
    if num_submodels == 1:
        return partition_by_counts(model, [len(trainable)], thresholds)

    # Smooth: running maximum in depth order (thresholds trend upward;
    # local dips are analytic jitter, not structure).
    values = [thresholds[p.index] for p in trainable]
    smoothed = []
    peak = 0.0
    for value in values:
        peak = max(peak, value)
        smoothed.append(peak)
    # Candidate boundaries: positions with the largest log-jumps.
    jumps = [
        (math.log2(smoothed[i] / smoothed[i - 1]), i)
        for i in range(1, len(smoothed))
    ]
    jumps.sort(key=lambda item: (-item[0], item[1]))
    cuts = sorted(
        index for jump, index in jumps[: num_submodels - 1] if jump > 0
    )
    if len(cuts) < num_submodels - 1:
        # Flat curve: fall back to near-even layer counts.
        base, extra = divmod(len(trainable), num_submodels)
        counts = [
            base + (1 if i < extra else 0) for i in range(num_submodels)
        ]
        return partition_by_counts(model, counts, thresholds)
    boundaries = [0] + cuts + [len(trainable)]
    counts = [
        boundaries[i + 1] - boundaries[i]
        for i in range(num_submodels)
    ]
    return partition_by_counts(model, counts, thresholds)


def paper_partition(
    model: ModelGraph, profiler: ThroughputProfiler | None = None
) -> Partition:
    """The partition published in the paper for a benchmark model.

    Raises :class:`PartitionError` for models the paper does not cover;
    use :func:`bin_partition` for those.
    """
    counts = _PAPER_PARTITIONS.get(model.name)
    if counts is None:
        raise PartitionError(
            f"the paper publishes no partition for {model.name!r}; "
            "use bin_partition()"
        )
    return partition_by_counts(model, counts, profiler=profiler)
