"""The Fela runtime: BSP/SSP/ASP iteration loop over the token machinery.

One iteration:

1. the TS mints the T-1 tokens into the sub-token-buckets;
2. every worker (optionally delayed by the straggler injector) pulls,
   trains, and reports tokens until the iteration can give it no more;
3. as each level's tokens all complete, that sub-model's gradient
   synchronization (ring all-reduce among the workers that trained it —
   under CTD this is the conditional subset for communication-intensive
   sub-models) starts immediately and overlaps with remaining training,
   matching "While the worker is synchronizing ... its Trainer is not
   blocked";
4. under BSP the next iteration starts once all levels are trained *and*
   synchronized; under SSP, training may run ahead of outstanding
   synchronizations by up to ``staleness`` iterations (token ``age``);
   under ASP it never waits.
"""

from __future__ import annotations

import typing as _t

from repro.core.collectives import hierarchical_allreduce, ring_allreduce
from repro.core.config import FelaConfig, SyncMode
from repro.core.server import TokenServer
from repro.core.worker import Worker
from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec
from repro.metrics import IterationRecord, RunResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import NULL_SAMPLER, NullSampler
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.sim import Event
from repro.stragglers import NoStraggler, StragglerInjector

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.controller import FaultController
    from repro.obs.protocols import InvariantMonitor, SpanSink
    from repro.sim import Process


class FelaRuntime:
    """Drives one complete Fela training run on a simulated cluster."""

    name = "fela"

    def __init__(
        self,
        config: FelaConfig,
        cluster: Cluster | None = None,
        straggler: StragglerInjector | None = None,
        recorder: "SpanSink | None" = None,
        invariants: "InvariantMonitor | None" = None,
        tracer: NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: "FaultController | None" = None,
        sampler: NullSampler | None = None,
    ) -> None:
        self.config = config
        self.cluster = cluster or Cluster(
            ClusterSpec(num_nodes=config.num_workers)
        )
        self.straggler = straggler or NoStraggler()
        #: Optional :class:`~repro.analysis.invariants.InvariantChecker`
        #: validating token conservation and sync accounting (off by
        #: default; tests turn it on).
        self.invariants = invariants
        #: Metrics registry shared with the token server; ``run()``
        #: derives ``RunResult.stats`` from it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional :class:`~repro.metrics.timeline.TimelineRecorder` (or
        #: any :class:`~repro.obs.protocols.SpanSink`): fed from the trace
        #: stream after the run, so the timeline and the trace exporters
        #: share one instrumentation surface.
        self.recorder = recorder
        if tracer is None:
            # A recorder without a tracer still needs the event stream;
            # otherwise tracing stays off (the shared null tracer).
            tracer = Tracer() if recorder is not None else NULL_TRACER
        self.tracer = tracer
        env = self.cluster.env
        env.tracer = self.tracer  # the one wiring point for all components
        self.tracer.attach_env(env)
        self.server = TokenServer(
            config, self.cluster, invariants=invariants, metrics=self.metrics
        )
        self.workers = [
            Worker(self.server, self.cluster[wid], wid)
            for wid in range(config.num_workers)
        ]
        self._validate_memory()
        self._records: list[IterationRecord] = []
        #: iteration -> AllOf event of that iteration's level syncs.
        self._sync_done: dict[int, Event] = {}
        #: iteration -> event fired when the iteration's tokens are minted.
        self._opened: dict[int, Event] = {}
        #: iteration -> per-worker start delays from the injector.
        self._delays: dict[int, list[float]] = {}
        #: wid -> worker process (the fault controller interrupts these).
        self._worker_procs: dict[int, "Process"] = {}
        #: Optional fault controller; attaching wires the membership
        #: state machine and lease monitor into this run.
        self.faults = faults
        if faults is not None:
            faults.attach(self)
        #: Optional time-series :class:`~repro.obs.timeseries.Sampler`;
        #: the shared null sampler when sampling is off, so no sampler
        #: object is ever constructed for an unsampled run.
        self.sampler = sampler if sampler is not None else NULL_SAMPLER
        if self.sampler.enabled:
            # Attach last: the sampler reads workers/server/faults state
            # that must all exist before the first (t=0) tick.
            self.sampler.attach_runtime(self)

    def _validate_memory(self) -> None:
        """Every (sub-model, token batch) pair must fit in GPU memory."""
        gpu = self.cluster.spec.gpu
        batches = self.config.token_batches()
        for level, submodel in enumerate(self.config.partition):
            input_floats = (
                self.config.partition.model.input_floats
                if level == 0
                else submodel.input_floats
            )
            gpu.require_fits(submodel.layers, batches[level], input_floats)

    # -- public API ----------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the configured number of iterations; return the result."""
        env = self.cluster.env
        main = env.process(self._main())
        env.run(main)
        return self.finalize()

    def finalize(self, started_at: float = 0.0) -> RunResult:
        """Settle accounting after ``_main`` has finished; build the result.

        Split out of :meth:`run` so a cluster-level driver can run
        ``_main`` as one process among many in a shared environment and
        close the books itself once the job's process completes.
        ``started_at`` is the sim time the job began: ``total_time`` is
        the job's *elapsed* time, not the absolute clock (the two
        coincide for a single-job run, which starts at t=0).
        """
        env = self.cluster.env
        if self.invariants is not None:
            self.invariants.on_run_end(self.server)
        total_time = env.now - started_at
        if self.sampler.enabled:
            self.sampler.finish(env.now)
        if self.recorder is not None:
            # The timeline is a post-run *view* of the trace stream, not a
            # second instrumentation surface.
            self.recorder.ingest(self.tracer.events)
        return RunResult(
            runtime_name=self.name,
            model_name=self.config.partition.model.name,
            total_batch=self.config.total_batch,
            iterations=self.config.iterations,
            total_time=total_time,
            records=tuple(self._records),
            stats=self._final_stats(total_time),
        )

    def _final_stats(self, total_time: float) -> dict[str, _t.Any]:
        """Fold per-worker end-of-run gauges into the registry and build
        the backward-compatible ``stats`` payload from it."""
        metrics = self.metrics
        for worker in self.workers:
            wid = worker.wid
            metrics.gauge("worker.compute_seconds", worker=wid).set(
                worker.compute_seconds
            )
            metrics.gauge("worker.fetch_seconds", worker=wid).set(
                worker.fetch_seconds
            )
            metrics.gauge("worker.delay_seconds", worker=wid).set(
                worker.delay_seconds
            )
            metrics.gauge("worker.idle_seconds", worker=wid).set(
                max(
                    0.0,
                    total_time
                    - worker.compute_seconds
                    - worker.fetch_seconds
                    - worker.delay_seconds,
                )
            )
            metrics.gauge("worker.bytes_fetched", worker=wid).set(
                worker.bytes_fetched
            )
        metrics.gauge("net.bytes").set(
            self.cluster.fabric.stats.bytes_transferred
        )
        wids = [worker.wid for worker in self.workers]
        latency = self.server._request_latency
        stats = {
            "ts_requests": self.server.requests,
            "ts_conflicts": self.server.conflicts,
            "tokens_by_worker": dict(self.server.tokens_by_worker),
            "bytes_fetched": sum(w.bytes_fetched for w in self.workers),
            "network_bytes": metrics.gauge("net.bytes").value,
            "compute_seconds_by_worker": [
                metrics.gauge("worker.compute_seconds", worker=wid).value
                for wid in wids
            ],
            "fetch_seconds_by_worker": [
                metrics.gauge("worker.fetch_seconds", worker=wid).value
                for wid in wids
            ],
            "idle_seconds_by_worker": [
                metrics.gauge("worker.idle_seconds", worker=wid).value
                for wid in wids
            ],
            "straggler_delay_seconds_by_worker": [
                metrics.gauge("worker.delay_seconds", worker=wid).value
                for wid in wids
            ],
            "sync_bytes_by_level": metrics.series("sync.bytes", "level"),
            "ts_request_latency": latency.fields(),
            "weights": self.config.weights,
            "subset_size": self.config.subset_size,
        }
        env = self.cluster.env
        stats["fast_forward"] = {
            "intervals_skipped": env.ff_intervals,
            "events_elided": env.ff_elided,
            "sim_seconds_fast_forwarded": env.ff_seconds,
        }
        if self.faults is not None:
            stats["faults"] = self.faults.summary()
        return stats

    # -- worker-facing coordination ----------------------------------------------------

    def iteration_opened(self, iteration: int) -> Event:
        """Event fired when ``iteration``'s tokens become available."""
        event = self._opened.get(iteration)
        if event is None:
            event = self.cluster.env.event()
            self._opened[iteration] = event
        return event

    def start_delay(self, iteration: int, wid: int) -> float:
        """The straggler injector's start delay for a worker/iteration."""
        delays = self._delays[iteration]
        if wid >= len(delays):
            # Joined after the injector drew this iteration's delays.
            return 0.0
        return delays[wid]

    def provision_worker(self) -> Worker:
        """Create a worker on the next free cluster node (elastic join)."""
        wid = self.server.register_worker()
        worker = Worker(self.server, self.cluster[wid], wid)
        self.workers.append(worker)
        return worker

    # -- iteration machinery ------------------------------------------------------------

    def _main(self):
        env = self.cluster.env
        for worker in self.workers:
            self._worker_procs[worker.wid] = env.process(
                worker.run_loop(self)
            )
        previous_counts = dict(self.server.tokens_by_worker)
        for iteration in range(self.config.iterations):
            yield from self._await_staleness_bound(iteration)
            start = env.now
            delays = self.straggler.delays(
                iteration, self.config.num_workers
            )
            if len(delays) != self.config.num_workers:
                raise ConfigurationError(
                    f"straggler injector returned {len(delays)} delays "
                    f"for {self.config.num_workers} workers"
                )
            self._delays[iteration] = list(delays)
            self.server.begin_iteration(iteration)
            if self.faults is not None:
                self.faults.iteration_started(iteration)
            sync_events = [
                env.process(self._sync_level(iteration, level))
                for level in range(self.config.levels)
            ]
            self._sync_done[iteration] = env.all_of(sync_events)
            level_events = [
                self.server.level_done_event(level)
                for level in range(self.config.levels)
            ]
            self.iteration_opened(iteration).succeed()

            # The iteration's training is over when every token of every
            # level is complete — not when every worker wakes up: a worker
            # still serving a straggler delay whose tokens were taken over
            # by helpers does not hold the cluster back.
            yield env.all_of(level_events)
            yield from self._await_iteration_complete(iteration)
            if self.config.sync_mode == SyncMode.BSP:
                yield self._sync_done.pop(iteration)
            counts = dict(self.server.tokens_by_worker)
            self._records.append(
                IterationRecord(
                    iteration=iteration,
                    start=start,
                    end=env.now,
                    work_by_worker=tuple(
                        counts.get(wid, 0) - previous_counts.get(wid, 0)
                        for wid in range(self.server.worker_slots)
                    ),
                )
            )
            previous_counts = counts
            self.server.end_iteration()
        # Outstanding SSP/ASP synchronizations must land before the run
        # is considered finished.
        for event in list(self._sync_done.values()):
            yield event
        self._sync_done.clear()

    def _await_iteration_complete(self, iteration: int):
        """Fault-layer gate: a crash after the last level-done event may
        uncomplete tokens; wait until they are retrained before closing.

        Without faults this is provably a no-op (level-done only fires
        at full completion and nothing ever uncompletes), so the plain
        path yields nothing.
        """
        if self.faults is None:
            return
        while not self.server.generator.iteration_complete(iteration):
            yield self.server.bucket_changed_event()

    def _await_staleness_bound(self, iteration: int):
        """SSP gate: stay within ``staleness`` of the oldest unsynced iter."""
        if self.config.sync_mode == SyncMode.BSP:
            return
        if self.config.sync_mode == SyncMode.ASP:
            return
        while self._sync_done:
            oldest = min(self._sync_done)
            if iteration - oldest <= self.config.staleness:
                break
            yield self._sync_done.pop(oldest)

    def _sync_level(self, iteration: int, level: int):
        """Wait for a level to complete, then all-reduce its gradients."""
        yield self.server.level_done_event(level, iteration)
        participants = self.server.participants(level, iteration)
        submodel = self.config.partition[level]
        ledger = None
        if self.invariants is not None:
            self.invariants.on_sync_start(iteration, level, participants)
            ledger = self.invariants.ledger
        start = self.cluster.env.now
        if (
            self.config.collective == "hierarchical"
            and ledger is None
            and len(participants) > 3
        ):
            # √k-sized groups over the (sorted) participant list.  The
            # gradient ledger only instruments the flat ring, so checked
            # runs keep the ring path.
            k = len(participants)
            group_size = max(2, int(k**0.5))
            groups = [
                participants[i : i + group_size]
                for i in range(0, k, group_size)
            ]
            yield from hierarchical_allreduce(
                self.cluster, groups, submodel.param_bytes
            )
        else:
            yield from ring_allreduce(
                self.cluster,
                participants,
                submodel.param_bytes,
                ledger=ledger,
                context=(iteration, level),
            )
        env = self.cluster.env
        k = len(participants)
        wire = (
            2 * (k - 1) * submodel.param_bytes
            if k > 1 and submodel.param_bytes > 0
            else 0.0
        )
        self.metrics.counter("sync.bytes", level=level).inc(wire)
        self.metrics.counter("sync.count", level=level).inc()
        self.metrics.histogram("sync.seconds", level=level).observe(
            env.now - start
        )
        if self.tracer.enabled:
            self.tracer.level_synced(iteration, level, participants, wire)


class PipelinedFelaRuntime(FelaRuntime):
    """Token-level iteration pipelining: the full Section-VI extension.

    The base runtime relaxes only the *synchronization* barrier under
    SSP/ASP; successive iterations' tokens never coexist.  This variant
    opens iteration *k+1*'s tokens as soon as iteration *k*'s are all
    assigned (there is idle demand) and the staleness bound permits, so
    fast workers flow straight into the next iteration while stragglers
    finish the previous one.  Tokens carry their iteration, and the
    distributor hands out the *oldest* iteration's work first — the
    paper's "distribute the tokens according to the predefined staleness
    bound" by token age.

    Requires SSP or ASP: pipelining iterations under BSP would contradict
    the barrier it relaxes.
    """

    name = "fela-pipelined"

    def __init__(self, *args: _t.Any, **kwargs: _t.Any) -> None:
        super().__init__(*args, **kwargs)
        if self.config.sync_mode == SyncMode.BSP:
            raise ConfigurationError(
                "PipelinedFelaRuntime requires SSP or ASP; BSP's barrier "
                "forbids iteration overlap"
            )

    def _main(self):
        env = self.cluster.env
        for worker in self.workers:
            self._worker_procs[worker.wid] = env.process(
                worker.run_loop(self)
            )
        finish_events = []
        for iteration in range(self.config.iterations):
            yield from self._await_staleness_bound(iteration)
            if iteration > 0:
                # Demand gate: open the next iteration only once every
                # token of the previous one has been handed out (workers
                # would otherwise idle at the tail).
                yield from self._wait_all_assigned(iteration - 1)
            delays = self.straggler.delays(
                iteration, self.config.num_workers
            )
            if len(delays) != self.config.num_workers:
                raise ConfigurationError(
                    f"straggler injector returned {len(delays)} delays "
                    f"for {self.config.num_workers} workers"
                )
            self._delays[iteration] = list(delays)
            start = env.now
            self.server.begin_iteration(iteration)
            if self.faults is not None:
                self.faults.iteration_started(iteration)
            sync_events = [
                env.process(self._sync_level(iteration, level))
                for level in range(self.config.levels)
            ]
            self._sync_done[iteration] = env.all_of(sync_events)
            self.iteration_opened(iteration).succeed()
            finish_events.append(
                env.process(self._finish_iteration(iteration, start))
            )
        # All iterations recorded, all synchronizations landed.
        yield env.all_of(finish_events)
        for event in list(self._sync_done.values()):
            yield event
        self._sync_done.clear()
        self._records.sort(key=lambda record: record.iteration)

    def _wait_all_assigned(self, iteration: int):
        while not self.server.all_assigned(iteration):
            yield self.server.bucket_changed_event()

    def _finish_iteration(self, iteration: int, start: float):
        """Record the iteration once every one of its tokens completes."""
        env = self.cluster.env
        level_events = [
            self.server.level_done_event(level, iteration)
            for level in range(self.config.levels)
        ]
        yield env.all_of(level_events)
        yield from self._await_iteration_complete(iteration)
        work = self.server.tokens_by_worker_per_iteration.get(
            iteration, {}
        )
        self._records.append(
            IterationRecord(
                iteration=iteration,
                start=start,
                end=env.now,
                work_by_worker=tuple(
                    work.get(wid, 0)
                    for wid in range(self.server.worker_slots)
                ),
            )
        )
        self.server.end_iteration(iteration)
