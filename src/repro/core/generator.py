"""The Token Generator (paper Section III-A / III-B).

Responsibilities:

* at the start of an iteration, mint all T-1 tokens (one per
  ``batch_1``-sized slice of the iteration batch, homed at the worker that
  stores those training samples);
* whenever a group of ``ratio(level)`` consecutive level-*l* tokens has
  been reported complete, mint the level-*l+1* token that consumes their
  outputs ("Only when 2 T-1 Tokens have been completed, can 1 T-2 Token be
  generated").

The generator is pure bookkeeping — it owns no simulation time.  The
:class:`~repro.core.server.TokenServer` charges the (tiny) scheduling
costs.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.core.config import FelaConfig
from repro.core.tokens import SampleRange, Token, TokenId
from repro.errors import SchedulingError


def split_samples(total: int, parts: int) -> list[SampleRange]:
    """Split ``total`` samples into ``parts`` near-even contiguous ranges."""
    if parts < 1 or total < 1:
        raise SchedulingError(f"cannot split {total} samples into {parts}")
    if parts > total:
        raise SchedulingError(
            f"cannot split {total} samples into {parts} non-empty ranges"
        )
    base, extra = divmod(total, parts)
    ranges = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        ranges.append(SampleRange(start, start + size))
        start += size
    return ranges


class TokenGenerator:
    """Mints tokens for one Fela run."""

    def __init__(self, config: FelaConfig) -> None:
        self.config = config
        self.counts = config.token_counts()
        self._tid_counter = itertools.count()
        #: All tokens ever minted, by id (the TS token registry).
        self.registry: dict[TokenId, Token] = {}
        #: (iteration, level, group) -> list of (ordinal, tid, completing worker).
        self._groups: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}
        #: Completed token count per (iteration, level).
        self._completed: dict[tuple[int, int], int] = {}
        #: Completed dep -> the consumer token minted from its group.
        self._consumer: dict[TokenId, TokenId] = {}
        #: Fault-layer hook: remaps the home worker of fresh tokens away
        #: from failed/departed workers.  None outside faulted runs.
        self.home_resolver: _t.Callable[[int], int] | None = None
        #: Sample ownership: worker holding each T-1 slice.  Samples are
        #: range-partitioned evenly across workers' local storage.
        self._sample_owner = self._assign_sample_owners()

    def _assign_sample_owners(self) -> list[int]:
        """Owner worker of each T-1 token ordinal."""
        n_1 = self.counts[0]
        workers = self.config.num_workers
        # Contiguous blocks: worker w owns T-1 ordinals [w*n_1/N, ...).
        owners = []
        for ordinal in range(n_1):
            owners.append(min(ordinal * workers // n_1, workers - 1))
        return owners

    # -- minting ------------------------------------------------------------------

    def start_iteration(self, iteration: int) -> list[Token]:
        """Mint the T-1 tokens for ``iteration``."""
        n_1 = self.counts[0]
        ranges = split_samples(self.config.total_batch, n_1)
        tokens = []
        for ordinal, samples in enumerate(ranges):
            token = Token(
                tid=next(self._tid_counter),
                level=0,
                iteration=iteration,
                ordinal=ordinal,
                samples=samples,
                deps=(),
                home_worker=self._sample_owner[ordinal],
            )
            self.registry[token.tid] = token
            tokens.append(token)
        return tokens

    def on_completion(self, tid: TokenId, wid: int) -> list[Token]:
        """Record a completed token; return any newly mintable tokens."""
        token = self.registry.get(tid)
        if token is None:
            raise SchedulingError(f"unknown token {tid}")
        key = (token.iteration, token.level)
        self._completed[key] = self._completed.get(key, 0) + 1

        if token.level >= self.config.levels - 1:
            return []  # top level: nothing to generate

        ratio = self.config.generation_ratio(token.level)
        group_index = token.ordinal // ratio
        group_key = (token.iteration, token.level, group_index)
        group = self._groups.setdefault(group_key, [])
        group.append((token.ordinal, tid, wid))
        if len(group) < ratio:
            return []

        # The group is complete: mint the next-level token.
        del self._groups[group_key]
        group.sort()
        members = [self.registry[member_tid] for _, member_tid, _ in group]
        samples = members[0].samples
        for member in members[1:]:
            samples = samples.merge(member.samples)
        home = self._majority_worker(group)
        if self.home_resolver is not None:
            home = self.home_resolver(home)
        fresh = Token(
            tid=next(self._tid_counter),
            level=token.level + 1,
            iteration=token.iteration,
            ordinal=group_index,
            samples=samples,
            deps=tuple(member_tid for _, member_tid, _ in group),
            home_worker=home,
        )
        self.registry[fresh.tid] = fresh
        for _, member_tid, _ in group:
            self._consumer[member_tid] = fresh.tid
        return [fresh]

    @staticmethod
    def _majority_worker(group: list[tuple[int, int, int]]) -> int:
        """Home a fresh token at the worker that completed most of its deps.

        Ties go to the lowest worker id, keeping the schedule deterministic.
        """
        votes: dict[int, int] = {}
        for _, _, wid in group:
            votes[wid] = votes.get(wid, 0) + 1
        best = max(votes.items(), key=lambda item: (item[1], -item[0]))
        return best[0]

    # -- failure recovery ---------------------------------------------------------

    def consumer_of(self, tid: TokenId) -> TokenId | None:
        """The next-level token minted from ``tid``'s group, if any."""
        return self._consumer.get(tid)

    def uncomplete(self, tid: TokenId) -> None:
        """Roll back a completion whose output copy was lost.

        The token stays in the registry (it will be re-assigned and
        retrained under the same id); its completion count drops and its
        pending-group entry, if one exists, is withdrawn.
        """
        token = self.registry.get(tid)
        if token is None:
            raise SchedulingError(f"unknown token {tid}")
        key = (token.iteration, token.level)
        count = self._completed.get(key, 0)
        if count <= 0:
            raise SchedulingError(
                f"token {tid} has no completion to roll back"
            )
        self._completed[key] = count - 1
        if token.level >= self.config.levels - 1:
            return
        ratio = self.config.generation_ratio(token.level)
        group_key = (token.iteration, token.level, token.ordinal // ratio)
        group = self._groups.get(group_key)
        if group is not None:
            remaining = [entry for entry in group if entry[1] != tid]
            if remaining:
                self._groups[group_key] = remaining
            else:
                del self._groups[group_key]

    def invalidate_consumer(
        self,
        consumer_tid: TokenId,
        survivors: list[tuple[int, int, int]],
    ) -> Token:
        """Destroy an unfinished consumer whose dependency was lost.

        The consumer's id is retired (a fresh token is minted when its
        group completes again) and the group is restored to
        ``survivors`` — the (ordinal, tid, wid) entries of dependencies
        that are still completed on live workers.
        """
        token = self.registry.get(consumer_tid)
        if token is None:
            raise SchedulingError(f"unknown token {consumer_tid}")
        del self.registry[consumer_tid]
        for dep_tid in token.deps:
            self._consumer.pop(dep_tid, None)
        group_key = (token.iteration, token.level - 1, token.ordinal)
        if survivors:
            self._groups[group_key] = sorted(survivors)
        else:
            self._groups.pop(group_key, None)
        return token

    # -- progress queries -----------------------------------------------------------

    def completed_count(self, iteration: int, level: int) -> int:
        return self._completed.get((iteration, level), 0)

    def level_complete(self, iteration: int, level: int) -> bool:
        """Whether all tokens of ``level`` in ``iteration`` are done."""
        return self.completed_count(iteration, level) >= self.counts[level]

    def iteration_complete(self, iteration: int) -> bool:
        """Whether every token of every level is done for ``iteration``."""
        return all(
            self.level_complete(iteration, level)
            for level in range(self.config.levels)
        )

    def total_tokens_per_iteration(self) -> int:
        return sum(self.counts)

    def forget_iteration(self, iteration: int) -> list[TokenId]:
        """Drop registry entries of a finished iteration; return their ids."""
        stale = [
            tid
            for tid, token in self.registry.items()
            if token.iteration == iteration
        ]
        for tid in stale:
            del self.registry[tid]
            self._consumer.pop(tid, None)
        for key in [k for k in self._completed if k[0] == iteration]:
            del self._completed[key]
        for key in [k for k in self._groups if k[0] == iteration]:
            del self._groups[key]
        return stale
