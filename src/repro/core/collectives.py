"""Collective communication primitives over the simulated fabric.

All runtimes synchronize parameters with these generators.  They are
written as process functions: ``yield from ring_allreduce(...)`` inside a
simulation process pays the full communication cost on the fabric (and
therefore contends with any concurrent activation transfers — a contention
the paper's evaluation leans on).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ConfigurationError
from repro.hardware import Cluster


def ring_allreduce(
    cluster: Cluster,
    workers: _t.Sequence[int],
    size_bytes: float,
    ledger: _t.Any | None = None,
    context: _t.Any = None,
):
    """Bandwidth-optimal ring all-reduce among ``workers``.

    Each participant sends and receives ``2 * (k-1)/k * size`` bytes in
    ``2 * (k-1)`` rounds of ``size / k`` chunks (reduce-scatter followed by
    all-gather).  A single participant (or an empty payload) is free.

    With a :class:`~repro.analysis.invariants.GradientLedger` attached,
    the collective opens a ledger entry before its first round and closes
    it with the bytes actually put on the wire, so lost or duplicated
    gradient chunks are caught by the invariant checker.

    With a tracer attached to the cluster's environment, the collective
    records one ``sync.allreduce`` span covering all its rounds (emitted
    even for the trivial single-participant case, so every level's
    causal chain ends in a synchronization span).
    """
    workers = list(workers)
    if not workers:
        raise ConfigurationError("allreduce needs at least one worker")
    if len(set(workers)) != len(workers):
        raise ConfigurationError(f"duplicate workers in allreduce: {workers}")
    env = cluster.env
    tracer = env.tracer
    k = len(workers)
    if k == 1 or size_bytes <= 0:
        if ledger is not None:
            ledger.close(ledger.open(workers, size_bytes, context), 0.0)
        if tracer.enabled:
            tracer.allreduce(
                workers, size_bytes, 0.0, env.now, env.now, context
            )
        return
    chunk = size_bytes / k
    handle = (
        ledger.open(workers, size_bytes, context)
        if ledger is not None
        else None
    )
    start = env.now
    wire_bytes = 0.0
    fabric = cluster.fabric
    ring = [
        (workers[i], workers[(i + 1) % k], chunk) for i in range(k)
    ]
    for _round in range(2 * (k - 1)):
        transfers = fabric.transfer_many(ring)
        wire_bytes += chunk * k
        yield env.all_of(transfers)
    if ledger is not None and handle is not None:
        ledger.close(handle, wire_bytes)
    if tracer.enabled:
        tracer.allreduce(
            workers, size_bytes, wire_bytes, start, env.now, context
        )


def tree_allreduce(
    cluster: Cluster, workers: _t.Sequence[int], size_bytes: float
):
    """Binary-tree all-reduce: reduce up the tree, broadcast back down.

    Latency-friendly (O(log k) rounds) but moves the full payload on
    every edge, so it loses to the ring on bandwidth for large models —
    the trade-off the collectives ablation benchmark measures.
    """
    workers = list(workers)
    if not workers:
        raise ConfigurationError("allreduce needs at least one worker")
    if len(set(workers)) != len(workers):
        raise ConfigurationError(f"duplicate workers in allreduce: {workers}")
    k = len(workers)
    if k == 1 or size_bytes <= 0:
        return
    env = cluster.env

    # Reduce phase: children send to parents, level by level.
    stride = 1
    while stride < k:
        requests = [
            (workers[left + stride], workers[left], size_bytes)
            for left in range(0, k - stride, stride * 2)
        ]
        if requests:
            yield env.all_of(cluster.fabric.transfer_many(requests))
        stride *= 2

    # Broadcast phase: parents send the reduced payload back down.
    stride //= 2
    while stride >= 1:
        requests = [
            (workers[left], workers[left + stride], size_bytes)
            for left in range(0, k - stride, stride * 2)
        ]
        if requests:
            yield env.all_of(cluster.fabric.transfer_many(requests))
        stride //= 2


def hierarchical_allreduce(
    cluster: Cluster,
    groups: _t.Sequence[_t.Sequence[int]],
    size_bytes: float,
):
    """Two-level all-reduce (BML/HiPS-style, the paper's refs [4], [5]).

    Phase 1: each group ring-all-reduces internally (concurrently).
    Phase 2: the group leaders (first member of each group) ring-all-reduce
    across groups.  Phase 3: leaders broadcast the result inside their
    group.  With bandwidth-sharing this beats one flat ring when groups
    map to locality domains.
    """
    groups = [list(group) for group in groups if group]
    if not groups:
        raise ConfigurationError("hierarchical allreduce needs >= 1 group")
    flat = [w for group in groups for w in group]
    if len(set(flat)) != len(flat):
        raise ConfigurationError(f"duplicate workers across groups: {groups}")
    env = cluster.env

    def group_ring(group: _t.Sequence[int]):
        yield from ring_allreduce(cluster, group, size_bytes)

    phase1 = [env.process(group_ring(group)) for group in groups]
    yield env.all_of(phase1)

    leaders = [group[0] for group in groups]
    yield from ring_allreduce(cluster, leaders, size_bytes)

    phase3 = [
        env.process(broadcast(cluster, group[0], group[1:], size_bytes))
        for group in groups
        if len(group) > 1
    ]
    if phase3:
        yield env.all_of(phase3)


def parameter_server_sync(
    cluster: Cluster,
    workers: _t.Sequence[int],
    server: int,
    size_bytes: float,
):
    """PS-style sync: all workers push to ``server``, then pull back.

    Models the centralized bottleneck the paper attributes to PS-based
    data-parallel systems (FlexPS discussion): ``k`` full-size flows into
    one NIC, then ``k`` flows out.
    """
    if size_bytes < 0:
        raise ConfigurationError(f"negative payload: {size_bytes}")
    env = cluster.env
    senders = [w for w in workers if w != server]
    if not senders or size_bytes == 0:
        return
    pushes = cluster.fabric.transfer_many(
        (w, server, size_bytes) for w in senders
    )
    yield env.all_of(pushes)
    pulls = cluster.fabric.transfer_many(
        (server, w, size_bytes) for w in senders
    )
    yield env.all_of(pulls)


def broadcast(
    cluster: Cluster,
    source: int,
    destinations: _t.Sequence[int],
    size_bytes: float,
):
    """Send ``size_bytes`` from ``source`` to every destination in parallel."""
    env = cluster.env
    targets = [d for d in destinations if d != source]
    if not targets or size_bytes <= 0:
        return
    transfers = cluster.fabric.transfer_many(
        (source, d, size_bytes) for d in targets
    )
    yield env.all_of(transfers)


def gather(
    cluster: Cluster,
    sources: _t.Sequence[int],
    destination: int,
    size_bytes_per_source: float,
):
    """Each source sends its payload to ``destination`` in parallel."""
    env = cluster.env
    senders = [s for s in sources if s != destination]
    if not senders or size_bytes_per_source <= 0:
        return
    transfers = cluster.fabric.transfer_many(
        (s, destination, size_bytes_per_source) for s in senders
    )
    yield env.all_of(transfers)
