"""Fela core: tokens, token server, scheduling policies, runtime."""

from repro.core.bucket import TokenBucket
from repro.core.collectives import (
    broadcast,
    gather,
    hierarchical_allreduce,
    parameter_server_sync,
    ring_allreduce,
    tree_allreduce,
)
from repro.core.config import FelaConfig, SyncMode
from repro.core.distributor import Selection, TokenDistributor
from repro.core.generator import TokenGenerator, split_samples
from repro.core.runtime import FelaRuntime, PipelinedFelaRuntime
from repro.core.server import TokenServer
from repro.core.tokens import InfoMapping, SampleRange, Token, TokenId
from repro.core.worker import Worker

__all__ = [
    "FelaConfig",
    "FelaRuntime",
    "InfoMapping",
    "PipelinedFelaRuntime",
    "SampleRange",
    "Selection",
    "SyncMode",
    "Token",
    "TokenBucket",
    "TokenDistributor",
    "TokenGenerator",
    "TokenId",
    "TokenServer",
    "Worker",
    "broadcast",
    "gather",
    "hierarchical_allreduce",
    "parameter_server_sync",
    "ring_allreduce",
    "split_samples",
    "tree_allreduce",
]
