"""The Fela worker: Trainer + Coordinator + Parameter Chunks (paper Fig. 2).

Per token, the worker:

1. fetches its inputs — raw samples from the sample owner's storage for
   T-1 tokens, or the dependency tokens' boundary activations from the
   workers holding them (remote fetches go over the fabric; local reads
   are free);
2. computes the sub-model's forward+backward pass on its GPU (any
   injected straggler delay prolongs this, per the paper's methodology);
3. stores the output activation in its local Parameter Chunks;
4. reports completion to the TS and immediately requests the next token
   (the paper combines report and request).

The Coordinator is modelled implicitly: remote parameter fetches are
pull-based fabric transfers from the holder recorded in Info Mapping —
byte-for-byte what the paper's push-based notification achieves.

Workers emit fetch, compute, and straggler-delay spans through
``env.tracer`` (see :mod:`repro.obs.tracer`); the ASCII timeline is now
derived from that trace stream rather than recorded directly here.
"""

from __future__ import annotations

import typing as _t

from repro.core.server import TokenServer
from repro.core.tokens import Token
from repro.errors import SchedulingError
from repro.faults.signals import ReviveWork, WorkerCrash
from repro.obs.timeseries import (
    PHASE_COMPUTE,
    PHASE_DELAY,
    PHASE_FETCH,
    PHASE_IDLE,
)
from repro.hardware import Node
from repro.sim import Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Event

    class _RuntimeProtocol(_t.Protocol):
        """What a worker needs from its runtime."""

        def iteration_opened(self, iteration: int) -> "Event": ...

        def start_delay(self, iteration: int, wid: int) -> float: ...


class Worker:
    """One Fela worker bound to a cluster node."""

    def __init__(
        self,
        server: TokenServer,
        node: Node,
        wid: int,
    ) -> None:
        self.server = server
        self.node = node
        self.wid = wid
        self.config = server.config
        #: Parameter Chunks: token ids whose output activations are stored
        #: locally (authoritative or fetched copies).
        self.chunks: set[int] = set()
        #: Elastic-run state: parked means blocked awaiting new work and
        #: safe to wake with a ReviveWork interrupt.
        self._parked = False
        self.crashed = False
        #: What the worker is doing *right now* (a phase constant from
        #: :mod:`repro.obs.timeseries`); read by the sampler, never by
        #: the scheduler, so updating it cannot perturb a run.
        self.phase = PHASE_IDLE
        # Statistics.
        self.tokens_trained: int = 0
        self.bytes_fetched: float = 0.0
        self.compute_seconds: float = 0.0
        self.fetch_seconds: float = 0.0
        self.delay_seconds: float = 0.0

    def __repr__(self) -> str:
        return f"<Worker {self.wid}>"

    # -- iteration driver -----------------------------------------------------

    def run_loop(
        self, runtime: "_RuntimeProtocol", first_iteration: int = 0
    ):
        """The worker's whole-run training loop (a process generator).

        For every iteration: wait for the runtime to open it, serve the
        straggler injector's start delay, then pull-train-report tokens
        until the iteration can give this worker no more work.  A worker
        still sleeping when its iteration ends simply joins the next one
        late — the cluster does not wait for it (that elasticity is the
        point of token-based scheduling).

        With the fault layer attached the loop additionally survives
        crash interrupts, drains on leave, joins mid-run (at
        ``first_iteration``), and wakes from parking when a recovery
        sweep re-mints tokens.
        """
        if self.server.faults is not None:
            return self._run_elastic(runtime, first_iteration)
        return self._run_plain(runtime)

    def _run_plain(self, runtime: "_RuntimeProtocol"):
        env = self.server.env
        for iteration in range(self.config.iterations):
            yield runtime.iteration_opened(iteration)
            start_delay = runtime.start_delay(iteration, self.wid)
            if start_delay > 0:
                # Straggler injection: the worker may not start work until
                # ``start_delay`` seconds into the iteration.
                delay_from = env.now
                self.phase = PHASE_DELAY
                yield env.timeout(start_delay)
                self.phase = PHASE_IDLE
                self.delay_seconds += env.now - delay_from
                if env.tracer.enabled:
                    env.tracer.straggler_delay(
                        self.wid, iteration, delay_from, env.now
                    )
            while True:
                token = yield from self.server.request_token(self.wid)
                if token is None:
                    break
                yield from self._train_token(token)
            self.chunks.clear()  # Parameter Chunks are per-iteration

    # -- elastic driver (fault layer attached) --------------------------------

    def _run_elastic(
        self, runtime: "_RuntimeProtocol", first_iteration: int
    ):
        try:
            yield from self._elastic_iterations(runtime, first_iteration)
        except Interrupt as interrupt:
            if isinstance(interrupt.cause, WorkerCrash):
                # Fatal: unwind the whole loop.  Resource context
                # managers (the GPU) release on the way out; the TS
                # learns of the death via lease expiry, not from here.
                self.crashed = True
                return
            raise

    def _elastic_iterations(
        self, runtime: "_RuntimeProtocol", first_iteration: int
    ):
        env = self.server.env
        for iteration in range(first_iteration, self.config.iterations):
            while True:
                outcome = yield from self._park_until(
                    runtime.iteration_opened(iteration)
                )
                if outcome == "opened":
                    break
                # Revived: a recovery sweep put tokens of a still-open
                # earlier iteration back into the bucket.
                if (yield from self._pull_tokens()) == "departed":
                    return
            start_delay = runtime.start_delay(iteration, self.wid)
            if start_delay > 0:
                delay_from = env.now
                self.phase = PHASE_DELAY
                yield env.timeout(start_delay)
                self.phase = PHASE_IDLE
                self.delay_seconds += env.now - delay_from
                if env.tracer.enabled:
                    env.tracer.straggler_delay(
                        self.wid, iteration, delay_from, env.now
                    )
            if (yield from self._pull_tokens()) == "departed":
                return
            self.chunks.clear()  # Parameter Chunks are per-iteration
        # All iterations served.  Stay parked instead of terminating: a
        # late failure may re-mint final-iteration tokens that only this
        # worker can absorb.  The run ends with the main process; parked
        # workers are simply abandoned then.
        while True:
            outcome = yield from self._park_until(env.event())
            if outcome == "revived":
                if (yield from self._pull_tokens()) == "departed":
                    return

    def _park_until(self, event: "Event"):
        """Wait for ``event``; returns "opened" when it fired or
        "revived" when a ReviveWork interrupt woke us first."""
        self._parked = True
        try:
            yield event
        except Interrupt as interrupt:
            if not isinstance(interrupt.cause, ReviveWork):
                raise
            return "revived"
        finally:
            self._parked = False
        return "opened"

    def _pull_tokens(self):
        """Request/train until exhausted ("exhausted") or told to leave
        ("departed")."""
        faults = self.server.faults
        while True:
            token = yield from self.server.request_token(self.wid)
            if token is None:
                if faults is not None and faults.should_depart(self.wid):
                    faults.worker_departed(self.wid)
                    return "departed"
                return "exhausted"
            yield from self._train_token(token)

    # -- token execution ----------------------------------------------------------

    def _train_token(self, token: Token):
        env = self.server.env
        tracer = env.tracer
        server = self.server
        if server.faults is not None and server.is_revoked(token.tid):
            # Revoked between assignment and arrival (a dependency died
            # unfetched): drop it before resolving holders.
            server.acknowledge_revocation(self.wid, token)
            return
        fetch_start = env.now
        bytes_before = self.bytes_fetched
        self.phase = PHASE_FETCH
        yield from self._fetch_inputs(token)
        self.phase = PHASE_IDLE
        if env.now > fetch_start:
            self.fetch_seconds += env.now - fetch_start
            if tracer.enabled:
                tracer.fetch(
                    self.wid,
                    token,
                    fetch_start,
                    env.now,
                    self.bytes_fetched - bytes_before,
                )
        if server.faults is not None and server.is_revoked(token.tid):
            # Revoked while the fetch was in flight.  Once every
            # dependency is locally chunked the token can no longer be
            # revoked, so no check is needed past this point.
            server.acknowledge_revocation(self.wid, token)
            return
        submodel = self.config.partition[token.level]
        duration = self.node.gpu_spec.train_time(
            submodel.layers, token.batch
        )
        before = env.now
        self.phase = PHASE_COMPUTE
        yield from self.node.compute(duration)
        self.phase = PHASE_IDLE
        self.compute_seconds += env.now - before
        if tracer.enabled:
            tracer.token_trained(token, self.wid, before, env.now)
        self.chunks.add(token.tid)
        self.tokens_trained += 1
        yield from self.server.report_completion(self.wid, token)

    def _fetch_inputs(self, token: Token):
        env = self.server.env
        if token.level == 0:
            # Raw training samples live on the home worker's local storage.
            owner = token.home_worker
            if owner != self.wid:
                size = token.batch * self.config.partition.model.input_bytes
                yield self.node.cluster.fabric.transfer(
                    owner, self.wid, size
                )
                self.bytes_fetched += size
            return

        upstream = self.config.partition[token.level - 1]
        requests: list[tuple[int, int, float]] = []
        pending: list[tuple[int, float]] = []
        for dep_tid in token.deps:
            if dep_tid in self.chunks:
                continue  # already local (we trained or fetched it)
            holder = self.server.holder_of_token(dep_tid)
            if holder is None:
                raise SchedulingError(
                    f"token {token.tid} scheduled before dependency "
                    f"{dep_tid} completed"
                )
            if holder == self.wid:
                continue
            dep = self.server.token_by_id(dep_tid)
            size = dep.batch * upstream.output_bytes
            requests.append((holder, self.wid, size))
            pending.append((dep_tid, size))
        if requests:
            transfers = self.node.cluster.fabric.transfer_many(requests)
            yield env.all_of(transfers)
        # Account only once the transfers have resolved: an interrupted
        # fetch must not leave phantom bytes or a chunk never received.
        for dep_tid, size in pending:
            self.bytes_fetched += size
            self.chunks.add(dep_tid)
