"""Configuration of a Fela run: parallelism degrees, policies, sync mode.

The paper's terminology, mapped to fields here:

* *weights* ``w_i`` — the batch-size multiplier of sub-model *i* relative
  to sub-model 1 (``w_1 = 1`` always; candidates are powers of two with
  ``w_{i+1} >= w_i``).  A T-*i* token trains with ``w_i * batch_1``
  samples, and one T-*(i+1)* token is generated per ``w_{i+1}/w_i``
  completed T-*i* tokens.

  .. note:: Section IV-B of the paper writes ``n_i = (w_i/w_1) * n_1``
     (more tokens for deeper sub-models), which contradicts the worked
     example of Section III-B (8 / 4 / 2 tokens of batch 16 / 32 / 64) and
     the motivation that deeper layers need *larger* batches.  We follow
     the Section III-B semantics: ``n_i = n_1 / w_i``.

* *conditional subset size* — CTD policy trains communication-intensive
  sub-models only on the first ``conditional_subset_size`` workers.

* *policies* — ADS / HF / CTD toggles exist so the ablation study
  (Fig. 7 / Table III) can switch each off individually.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.partition import Partition


class SyncMode:
    """Parameter-synchronization modes (paper Section VI)."""

    BSP = "bsp"
    SSP = "ssp"
    ASP = "asp"


@dataclasses.dataclass(frozen=True)
class FelaConfig:
    """Full configuration of one Fela training run."""

    partition: Partition
    total_batch: int
    num_workers: int
    #: Batch-size multipliers per sub-model, w_1 .. w_M (w_1 must be 1).
    weights: tuple[int, ...]
    #: Number of workers allowed to train communication-intensive
    #: sub-models (CTD).  Equal to ``num_workers`` = CTD disabled.
    conditional_subset_size: int = 0  # 0 -> defaults to num_workers
    #: Policy toggles (for the ablation study).
    ads_enabled: bool = True
    hf_enabled: bool = True
    ctd_enabled: bool = True
    #: Synchronization mode and SSP staleness bound.
    sync_mode: str = SyncMode.BSP
    staleness: int = 0
    #: Gradient-sync collective: ``"ring"`` (one flat ring over all
    #: participants) or ``"hierarchical"`` (two-level, √k-sized groups —
    #: the BML/HiPS-style scheme of the paper's refs [4], [5]).  At
    #: hundreds-to-thousands of workers the flat ring's 2(k-1) rounds
    #: dominate; the hierarchical scheme trades them for two smaller
    #: rings plus a broadcast.
    collective: str = "ring"
    iterations: int = 100
    #: TS request service time, seconds (the paper: "at most hundreds of
    #: bytes during each transfer", so latency-dominated).
    ts_service_time: float = 1e-4
    #: Extra cost of a *fetching conflict* (lock retry + re-distribution),
    #: paid when a token request contends on the shared bucket (III-E).
    conflict_overhead: float = 5e-4

    def __post_init__(self) -> None:
        levels = len(self.partition)
        if len(self.weights) != levels:
            raise ConfigurationError(
                f"{levels} sub-models need {levels} weights, "
                f"got {self.weights}"
            )
        if self.weights[0] != 1:
            raise ConfigurationError(f"w_1 must be 1, got {self.weights[0]}")
        for i, (a, b) in enumerate(zip(self.weights, self.weights[1:])):
            if b < a:
                raise ConfigurationError(
                    f"weights must be non-decreasing: w_{i + 1}={a} > "
                    f"w_{i + 2}={b}"
                )
            if b % a:
                raise ConfigurationError(
                    f"w_{i + 2}={b} must be a multiple of w_{i + 1}={a} so "
                    "token generation ratios are integral"
                )
        for w in self.weights:
            if w < 1 or (w & (w - 1)):
                raise ConfigurationError(
                    f"weights must be powers of two, got {self.weights}"
                )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"need at least one worker: {self.num_workers}"
            )
        if self.total_batch < self.num_workers:
            raise ConfigurationError(
                f"total batch {self.total_batch} smaller than worker "
                f"count {self.num_workers}"
            )
        if self.sync_mode not in (SyncMode.BSP, SyncMode.SSP, SyncMode.ASP):
            raise ConfigurationError(f"unknown sync mode {self.sync_mode!r}")
        if self.collective not in ("ring", "hierarchical"):
            raise ConfigurationError(
                f"unknown collective {self.collective!r} "
                "(expected 'ring' or 'hierarchical')"
            )
        if self.sync_mode == SyncMode.SSP and self.staleness < 1:
            raise ConfigurationError("SSP needs staleness >= 1")
        if self.iterations < 1:
            raise ConfigurationError(
                f"need at least one iteration: {self.iterations}"
            )
        if not 0 <= self.conditional_subset_size <= self.num_workers:
            raise ConfigurationError(
                f"conditional subset size {self.conditional_subset_size} "
                f"outside [0, {self.num_workers}]"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def levels(self) -> int:
        return len(self.partition)

    @property
    def subset_size(self) -> int:
        """Effective CTD subset size (0 means "all workers")."""
        if not self.ctd_enabled or self.conditional_subset_size == 0:
            return self.num_workers
        return self.conditional_subset_size

    @property
    def conditional_subset(self) -> frozenset[int]:
        """The worker set S of Section III-F (first ``subset_size`` ids)."""
        return frozenset(range(self.subset_size))

    def token_counts(self) -> tuple[int, ...]:
        """Number of tokens per level in one iteration (n_1 .. n_M).

        Per the paper's Equation 2, ``n_1 = max(total_batch /
        threshold_batch_1, N)`` — at least one T-1 token per worker —
        then ``n_i = n_1 / w_i``, floored at 1.
        """
        threshold_1 = self.partition[0].threshold_batch
        n_1 = max(self.total_batch // max(threshold_1, 1), self.num_workers)
        # Round n_1 up to a multiple of the largest weight so every level's
        # token count n_i = n_1 / w_i is integral and consecutive token
        # groups merge exactly into one higher-level token.
        w_max = max(self.weights)
        n_1 = ((n_1 + w_max - 1) // w_max) * w_max
        return tuple(n_1 // w for w in self.weights)

    def token_batches(self) -> tuple[int, ...]:
        """Batch size of one token per level."""
        return tuple(
            max(1, self.total_batch // n) for n in self.token_counts()
        )

    def generation_ratio(self, level: int) -> int:
        """Completed level-``level`` tokens needed per level+1 token."""
        counts = self.token_counts()
        if not 0 <= level < self.levels - 1:
            raise ConfigurationError(f"no generation ratio at level {level}")
        return max(1, counts[level] // counts[level + 1])

    def replace(self, **changes: _t.Any) -> "FelaConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)
