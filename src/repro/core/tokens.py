"""Tokens: the unit of schedulable work in Fela.

One token represents "train sub-model ``level`` on the sample range
``samples`` (batch size ``batch``)".  Tokens of level 0 (the paper's T-1
tokens) consume raw training samples; a token of level *i* > 0 consumes the
boundary activations produced by the level *i-1* tokens listed in ``deps``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import SchedulingError

#: Unique token identifier.
TokenId = int


@dataclasses.dataclass(frozen=True, slots=True)
class SampleRange:
    """Half-open range of sample indices within one iteration's batch."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise SchedulingError(
                f"invalid sample range [{self.start}, {self.stop})"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop

    def merge(self, other: "SampleRange") -> "SampleRange":
        """Union of two adjacent ranges (must be contiguous)."""
        if self.stop == other.start:
            return SampleRange(self.start, other.stop)
        if other.stop == self.start:
            return SampleRange(other.start, self.stop)
        raise SchedulingError(
            f"ranges [{self.start},{self.stop}) and "
            f"[{other.start},{other.stop}) are not adjacent"
        )


@dataclasses.dataclass(frozen=True, slots=True)
class Token:
    """One schedulable unit of training work."""

    tid: TokenId
    level: int
    iteration: int
    #: Position of this token within its level (0 .. n_level - 1); used to
    #: group consecutive tokens when generating the next level.
    ordinal: int
    samples: SampleRange
    #: Tokens (one level down) whose outputs are this token's input.
    deps: tuple[TokenId, ...]
    #: Worker whose sub-token-bucket (STB) this token initially belongs to.
    home_worker: int
    #: Iteration distance allowed by SSP (0 under BSP).  The extension the
    #: paper sketches in Section VI.
    age: int = 0

    def __post_init__(self) -> None:
        if self.level < 0:
            raise SchedulingError(f"token level must be >= 0: {self.level}")
        if self.iteration < 0:
            raise SchedulingError(
                f"token iteration must be >= 0: {self.iteration}"
            )
        if self.home_worker < 0:
            raise SchedulingError(
                f"token home worker must be >= 0: {self.home_worker}"
            )
        if self.level == 0 and self.deps:
            raise SchedulingError("level-0 tokens cannot have dependencies")
        if self.level > 0 and not self.deps:
            raise SchedulingError(
                f"level-{self.level} token needs dependencies"
            )

    @property
    def batch(self) -> int:
        """Batch size this token trains with."""
        return len(self.samples)

    @property
    def type_name(self) -> str:
        """The paper's token naming: level 0 is "T-1"."""
        return f"T-{self.level + 1}"

    def __repr__(self) -> str:
        return (
            f"<Token {self.tid} {self.type_name} it={self.iteration} "
            f"samples=[{self.samples.start},{self.samples.stop}) "
            f"home=W{self.home_worker}>"
        )


class InfoMapping:
    """The TS-side (worker, token) bookkeeping (paper Fig. 2).

    Tracks, per token: which worker is currently *training* it (assignment)
    and which worker *holds its output* (completion).  The distributor's
    locality scoring and the coordinator notifications both read this.
    """

    def __init__(self) -> None:
        self._assigned: dict[TokenId, int] = {}
        self._completed: dict[TokenId, int] = {}
        #: Tokens completed per worker — the H_wid set of Equation 1.
        self._held: dict[int, set[TokenId]] = {}

    # -- writes ---------------------------------------------------------------

    def record_assignment(self, tid: TokenId, wid: int) -> None:
        """Register that ``wid`` is now training ``tid``."""
        if tid in self._completed:
            raise SchedulingError(f"token {tid} was already completed")
        if tid in self._assigned:
            raise SchedulingError(
                f"token {tid} is already assigned to "
                f"worker {self._assigned[tid]}"
            )
        self._assigned[tid] = wid

    def record_completion(self, tid: TokenId, wid: int) -> None:
        """Register that ``wid`` finished ``tid`` and holds its output."""
        assigned = self._assigned.pop(tid, None)
        if assigned is not None and assigned != wid:
            raise SchedulingError(
                f"token {tid} was assigned to worker {assigned} but "
                f"completed by worker {wid}"
            )
        if tid in self._completed:
            raise SchedulingError(f"token {tid} completed twice")
        self._completed[tid] = wid
        self._held.setdefault(wid, set()).add(tid)

    def forget_iteration(self, tids: _t.Iterable[TokenId]) -> None:
        """Drop bookkeeping for an iteration's tokens after its sync."""
        for tid in tids:
            wid = self._completed.pop(tid, None)
            if wid is not None:
                self._held[wid].discard(tid)
            self._assigned.pop(tid, None)

    def unassign(self, tid: TokenId) -> int:
        """Revoke an assignment (failure recovery); returns the old wid."""
        if tid not in self._assigned:
            raise SchedulingError(f"token {tid} is not assigned")
        return self._assigned.pop(tid)

    def forget_completion(self, tid: TokenId) -> int:
        """Un-complete a token whose only output copy was lost; returns
        the worker that held it."""
        wid = self._completed.pop(tid, None)
        if wid is None:
            raise SchedulingError(f"token {tid} is not completed")
        self._held[wid].discard(tid)
        return wid

    def transfer_holding(self, tid: TokenId, new_wid: int) -> None:
        """Promote ``new_wid``'s fetched copy of ``tid`` to the
        authoritative one (the original holder failed)."""
        old = self._completed.get(tid)
        if old is None:
            raise SchedulingError(f"token {tid} is not completed")
        self._held[old].discard(tid)
        self._completed[tid] = new_wid
        self._held.setdefault(new_wid, set()).add(tid)

    # -- reads --------------------------------------------------------------------

    def holder_of(self, tid: TokenId) -> int | None:
        """Worker holding the completed output of ``tid`` (None if absent)."""
        return self._completed.get(tid)

    def assignee_of(self, tid: TokenId) -> int | None:
        """Worker currently training ``tid`` (None if not assigned)."""
        return self._assigned.get(tid)

    def held_by(self, wid: int) -> frozenset[TokenId]:
        """Tokens whose outputs worker ``wid`` holds (Equation 1's H_wid)."""
        return frozenset(self._held.get(wid, ()))

    def assigned_to(self, wid: int) -> list[TokenId]:
        """Tokens currently assigned to ``wid``, sorted for determinism."""
        return sorted(
            tid for tid, owner in self._assigned.items() if owner == wid
        )

    def is_completed(self, tid: TokenId) -> bool:
        return tid in self._completed

    def locality_score(self, wid: int, token: Token) -> float:
        """Equation 1: |H_wid ∩ D_tid| / |D_tid|.

        Level-0 tokens have no dependencies and score 0 for everyone: the
        paper distributes T-1 tokens "randomly (or sequentially)" — sample
        locality is the job of the HF policy's sub-token-buckets, not of
        ADS.
        """
        if token.level == 0:
            return 0.0
        held = self._held.get(wid)
        if not held:
            return 0.0
        hits = sum(1 for dep in token.deps if dep in held)
        return hits / len(token.deps)
