"""The Token Server (TS): Fela's lightweight scheduler (paper Fig. 2).

The TS bundles the Token Generator, Token Bucket (with STBs), Token
Distributor, and Info Mapping.  It holds no model parameters: every
interaction moves at most hundreds of bytes, so TS traffic is modelled as
fixed latency + a tiny service time instead of fabric flows ("causes no
centralized bottleneck").

Workers interact through two process generators:

* :meth:`request_token` — blocks (in simulated time) until a token is
  available for this worker or the iteration can provably never give it
  one more (all tokens of every level it may take are already assigned);
* :meth:`report_completion` — records the result, mints any next-level
  tokens that became generatable, and fires level-completion events the
  runtime uses to kick off parameter synchronization.

Timing model per interaction: one-way latency, then service time, then
(on contended shared-pool requests) the conflict penalty of the locking
mechanism described in Section III-E, then one-way latency back.
"""

from __future__ import annotations

import typing as _t

from repro.core.bucket import TokenBucket
from repro.core.config import FelaConfig
from repro.core.distributor import TokenDistributor
from repro.core.generator import TokenGenerator
from repro.core.tokens import InfoMapping, Token
from repro.errors import SchedulingError
from repro.hardware import Cluster
from repro.obs.metrics import MetricsRegistry
from repro.sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.faults.controller import FaultController
    from repro.obs.protocols import InvariantMonitor


class TokenServer:
    """Scheduler state shared by all workers of one Fela run."""

    def __init__(
        self,
        config: FelaConfig,
        cluster: Cluster,
        invariants: "InvariantMonitor | None" = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if config.num_workers > cluster.num_nodes:
            raise SchedulingError(
                f"{config.num_workers} workers exceed the "
                f"{cluster.num_nodes}-node cluster"
            )
        self.config = config
        self.cluster = cluster
        self.env = cluster.env
        #: Optional :class:`~repro.analysis.invariants.InvariantChecker`;
        #: ``None`` (the default) costs nothing on the hot paths.
        self.invariants = invariants
        if invariants is not None:
            invariants.bind(config)
            invariants.attach_env(self.env)
        self.generator = TokenGenerator(config)
        self.bucket = TokenBucket(config.num_workers)
        self.distributor = TokenDistributor(config)
        self.info = InfoMapping()
        self.counts = config.token_counts()
        self.current_iteration: int = -1
        #: Fault controller, attached by :class:`repro.faults.FaultController`.
        #: Every fault-path hook is gated on this being non-None, so
        #: fault-free runs are untouched.
        self.faults: "FaultController | None" = None
        #: Worker id slots ever handed out (grows on elastic joins).
        self.worker_slots = config.num_workers
        #: Assignments revoked by a recovery sweep, awaiting the
        #: assignee's acknowledgement (it must drop the token untrained).
        self._revoked: set[int] = set()
        #: Assignment counter roll-backs per worker (metric counters are
        #: monotonic, so reclaims subtract through this side table).
        self._assignment_adjustment: dict[int, int] = {}
        #: (iteration, level) -> tids minted for it, so sync setup scans
        #: only the level's tokens instead of the whole registry.
        self._token_index: dict[tuple[int, int], list[int]] = {}
        #: Per-iteration assignment counters: iteration -> [per level].
        #: Under the BSP runtime only one iteration is ever active; the
        #: pipelined runtime keeps several open at once.
        self._assigned: dict[int, list[int]] = {}
        #: (iteration, level) -> completion event.
        self._level_done: dict[tuple[int, int], Event] = {}
        self._bucket_changed: Event = self.env.event()
        #: Statistics live in the metrics registry (the runtime shares
        #: its registry so ``RunResult.stats`` reads the same numbers).
        #: Metric handles are resolved once — the request path is hot.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter("ts.requests")
        self._conflicts = self.metrics.counter("ts.conflicts")
        self._request_latency = self.metrics.histogram("ts.request_latency")
        self._tokens_assigned = [
            self.metrics.counter("ts.tokens_assigned", worker=wid)
            for wid in range(config.num_workers)
        ]
        #: iteration -> wid -> tokens assigned (per-iteration attribution,
        #: needed when iterations overlap).
        self.tokens_by_worker_per_iteration: dict[int, dict[int, int]] = {}

    # -- statistics views ---------------------------------------------------------

    @property
    def requests(self) -> int:
        """Total TS request round-trips served."""
        return int(self._requests.value)

    @property
    def conflicts(self) -> int:
        """Contended shared-pool requests that paid the locking penalty."""
        return int(self._conflicts.value)

    @property
    def tokens_by_worker(self) -> dict[int, int]:
        """Tokens assigned per worker over the whole run (net of any
        assignments rolled back by failure recovery)."""
        return {
            wid: max(
                0,
                int(counter.value)
                - self._assignment_adjustment.get(wid, 0),
            )
            for wid, counter in enumerate(self._tokens_assigned)
        }

    # -- iteration lifecycle ------------------------------------------------------

    def begin_iteration(self, iteration: int) -> None:
        """Mint the iteration's T-1 tokens and open its bookkeeping.

        Iterations must be *opened* in order, but an iteration may be
        opened while earlier ones are still training (the pipelined
        SSP/ASP runtime does this); each stays active until its own
        :meth:`end_iteration`.
        """
        if iteration != self.current_iteration + 1:
            raise SchedulingError(
                f"iterations must advance one at a time: "
                f"{self.current_iteration} -> {iteration}"
            )
        self.current_iteration = iteration
        self._assigned[iteration] = [0] * self.config.levels
        # Lazily populated (``wid -> count``): consumers read through
        # ``.get(wid, 0)``, so opening an iteration is O(1) instead of
        # O(worker_slots).
        self.tokens_by_worker_per_iteration[iteration] = {}
        for level in range(self.config.levels):
            self._level_done[(iteration, level)] = self.env.event()
        self.distributor.reset_iteration()
        tracer = self.env.tracer
        minted = self.generator.start_iteration(iteration)
        index = self._token_index.setdefault((iteration, 0), [])
        if tracer.enabled or self.invariants is not None:
            for token in minted:
                index.append(token.tid)
                if tracer.enabled:
                    tracer.token_minted(token)
                self.bucket.add(token)
                if tracer.enabled:
                    tracer.token_buffered(token)
                if self.invariants is not None:
                    self.invariants.on_minted(token)
        else:
            # Untraced, unchecked fast path: one bulk insert for the
            # whole mint burst.
            index.extend(token.tid for token in minted)
            self.bucket.add_many(minted)
        if self.invariants is not None:
            self.invariants.verify_conservation(self)
        self._broadcast()

    def end_iteration(self, iteration: int | None = None) -> None:
        """Drop bookkeeping for one finished iteration (default: latest)."""
        if iteration is None:
            iteration = self.current_iteration
        if iteration not in self._assigned:
            raise SchedulingError(f"iteration {iteration} is not active")
        if not self.generator.iteration_complete(iteration):
            raise SchedulingError(
                f"iteration {iteration} ended before all tokens completed"
            )
        if self.invariants is not None:
            self.invariants.on_iteration_end(iteration, self)
        del self._assigned[iteration]
        self.tokens_by_worker_per_iteration.pop(iteration, None)
        for level in range(self.config.levels):
            self._level_done.pop((iteration, level), None)
            self._token_index.pop((iteration, level), None)
        stale = self.generator.forget_iteration(iteration)
        self.info.forget_iteration(stale)

    @property
    def active_iterations(self) -> list[int]:
        """Iterations currently open (begun, not yet ended)."""
        return sorted(self._assigned)

    def level_done_event(
        self, level: int, iteration: int | None = None
    ) -> Event:
        """Event fired when every token of a level completes.

        Defaults to the most recently opened iteration.
        """
        if iteration is None:
            iteration = self.current_iteration
        return self._level_done[(iteration, level)]

    # -- worker-facing RPC generators ------------------------------------------------

    def request_token(self, wid: int):
        """Process generator: obtain a token for ``wid`` (or ``None``).

        ``yield from`` this inside a worker process.
        """
        latency = self.cluster.spec.latency
        tracer = self.env.tracer
        request_start = self.env.now
        while True:
            if self.faults is not None and not self.faults.may_request(wid):
                # Draining workers get no new tokens; they return home.
                return None
            yield self.env.timeout(latency)  # request travels to TS

            own_stb_first = (
                self.config.hf_enabled and self.bucket.stb_size(wid) > 0
            )
            if not own_stb_first:
                self.distributor.request_started()
            try:
                yield self.env.timeout(self.config.ts_service_time)
                selection = self.distributor.select(
                    wid, self.bucket, self.info
                )
            finally:
                # A crash interrupt mid-service must not leak an
                # in-flight request into the conflict accounting.
                if not own_stb_first:
                    self.distributor.request_finished()
            self._requests.inc()
            if self.faults is not None:
                self.faults.touch(wid)

            if selection.token is not None:
                # Selection and removal are atomic (no simulated time may
                # pass in between, or two overlapping requests would win
                # the same token).
                token = selection.token
                self.bucket.remove(token)
                self.info.record_assignment(token.tid, wid)
                if tracer.enabled:
                    tracer.token_assigned(token, wid)
                if self.invariants is not None:
                    self.invariants.on_assigned(token, wid)
                    self.invariants.verify_conservation(self)
                self._assigned[token.iteration][token.level] += 1
                self._tokens_assigned[wid].inc()
                per_iteration = self.tokens_by_worker_per_iteration.get(
                    token.iteration
                )
                if per_iteration is not None:
                    per_iteration[wid] = per_iteration.get(wid, 0) + 1
                self._broadcast()
                contended = selection.contended and not selection.from_own_stb
                if contended:
                    # Locking: this request raced others on the shared pool
                    # and pays the serialization/retry cost (Section III-E).
                    self._conflicts.inc()
                    yield self.env.timeout(self.config.conflict_overhead)
                yield self.env.timeout(latency)  # reply travels back
                self._request_latency.observe(self.env.now - request_start)
                if tracer.enabled:
                    tracer.ts_request(
                        wid,
                        request_start,
                        self.env.now,
                        granted=True,
                        conflict=contended,
                        token=token.tid,
                    )
                return token

            if self._exhausted_for(wid):
                yield self.env.timeout(latency)
                self._request_latency.observe(self.env.now - request_start)
                if tracer.enabled:
                    tracer.ts_request(
                        wid,
                        request_start,
                        self.env.now,
                        granted=False,
                        conflict=False,
                    )
                return None

            # Tokens may still be generated: wait for bucket activity.
            yield self._bucket_changed

    def report_completion(self, wid: int, token: Token):
        """Process generator: report ``token`` complete; mint successors."""
        latency = self.cluster.spec.latency
        tracer = self.env.tracer
        yield self.env.timeout(latency)
        yield self.env.timeout(self.config.ts_service_time)
        if self.faults is not None:
            self.faults.touch(wid)
            if token.tid in self._revoked:
                # Revoked while the report was in flight: the TS already
                # rolled the assignment back, so completing it now would
                # double-count.  Drop the report.
                self._revoked.discard(token.tid)
                return
        self.info.record_completion(token.tid, wid)
        if tracer.enabled:
            tracer.token_reported(token, wid)
        if self.invariants is not None:
            self.invariants.on_completed(token, wid)
        for fresh in self.generator.on_completion(token.tid, wid):
            self._token_index.setdefault(
                (fresh.iteration, fresh.level), []
            ).append(fresh.tid)
            if tracer.enabled:
                tracer.token_minted(fresh)
            self.bucket.add(fresh)
            if tracer.enabled:
                tracer.token_buffered(fresh)
            if self.invariants is not None:
                self.invariants.on_minted(fresh)
        if self.invariants is not None:
            self.invariants.verify_conservation(self)
        if self.generator.level_complete(token.iteration, token.level):
            done = self._level_done.get((token.iteration, token.level))
            if done is not None and not done.triggered:
                done.succeed(token.level)
        self._broadcast()
        # No return latency: the paper combines report+request, so the
        # follow-up request_token call pays the next leg.

    # -- elastic membership -----------------------------------------------------------

    def register_worker(self) -> int:
        """Open a slot for a joining worker; returns its new wid."""
        wid = self.worker_slots
        self.worker_slots += 1
        self.bucket.ensure_worker(wid)
        self._tokens_assigned.append(
            self.metrics.counter("ts.tokens_assigned", worker=wid)
        )
        # Per-iteration attribution dicts are lazy; the new worker's
        # entries appear on its first assignment.
        return wid

    def is_revoked(self, tid: int) -> bool:
        return tid in self._revoked

    def acknowledge_revocation(self, wid: int, token: Token) -> None:
        """The assignee noticed its token was revoked and dropped it."""
        self._revoked.discard(token.tid)

    # -- failure recovery -------------------------------------------------------------

    def recover_from_failure(
        self,
        dead_wid: int,
        copy_holders: list[tuple[int, set[int]]],
    ) -> dict[str, list[_t.Any]]:
        """The recovery sweep run when a worker failure is detected.

        Phase 1 reclaims tokens the dead worker was *training* (they go
        straight back into the bucket under the same id).  Phase 2 walks
        tokens the dead worker *held the completed output of*, consumers
        before dependencies: an output nothing will ever read again is
        harmless to lose; one whose consumer already fetched a copy is
        promoted to that live copy; otherwise the consumer (if minted) is
        invalidated — revoked from its assignee if necessary — and the
        lost token is re-minted for retraining.

        ``copy_holders`` lists live workers and their fetched-chunk sets
        in deterministic (ascending wid) order.
        """
        summary: dict[str, list[_t.Any]] = {
            "reclaimed": [],
            "reminted": [],
            "invalidated": [],
            "revoked": [],
            "promoted": [],
        }
        tracer = self.env.tracer
        for tid in self.info.assigned_to(dead_wid):
            token = self.generator.registry[tid]
            self.info.unassign(tid)
            self._assigned[token.iteration][token.level] -= 1
            self._note_unassigned(dead_wid, token.iteration)
            self.bucket.add(token)
            if tracer.enabled:
                tracer.token_reclaimed(token, dead_wid)
                tracer.token_buffered(token)
            if self.invariants is not None:
                self.invariants.on_reclaimed(token)
            summary["reclaimed"].append(tid)

        lost = sorted(
            self.info.held_by(dead_wid),
            key=lambda tid: (-self.generator.registry[tid].level, tid),
        )
        for tid in lost:
            token = self.generator.registry[tid]
            if token.level >= self.config.levels - 1:
                # Top level: the output is a gradient consumed by the
                # level sync, not by another token.  Nothing to re-mint;
                # its contribution is the documented lost work.
                continue
            consumer_tid = self.generator.consumer_of(tid)
            consumer = (
                self.generator.registry.get(consumer_tid)
                if consumer_tid is not None
                else None
            )
            if consumer is not None:
                if self.info.is_completed(consumer.tid):
                    # Already consumed; the activation is never read
                    # again, so the loss is harmless.
                    continue
                assignee = self.info.assignee_of(consumer.tid)
                if assignee is not None:
                    copy = next(
                        (
                            holder
                            for holder, chunks in copy_holders
                            if tid in chunks
                        ),
                        None,
                    )
                    if copy is not None:
                        # The trainer already fetched the activation;
                        # its copy becomes the authoritative one.
                        self.info.transfer_holding(tid, copy)
                        summary["promoted"].append((tid, copy))
                        continue
                    self._revoke_consumer(consumer, assignee, summary)
                else:
                    self._invalidate_buffered(consumer, summary)
            self._remint_lost(token, dead_wid, summary)

        if self.invariants is not None:
            self.invariants.verify_conservation(self)
        self._broadcast()
        return summary

    def _surviving_deps(
        self, consumer: Token
    ) -> list[tuple[int, int, int]]:
        """Group entries to restore for an invalidated consumer: its
        dependencies that are still completed (any holder — entries whose
        holder is also dying are withdrawn when their own re-mint runs)."""
        survivors = []
        for dep_tid in consumer.deps:
            holder = self.info.holder_of(dep_tid)
            if holder is None:
                continue
            dep = self.generator.registry[dep_tid]
            survivors.append((dep.ordinal, dep_tid, holder))
        return survivors

    def _revoke_consumer(
        self,
        consumer: Token,
        assignee: int,
        summary: dict[str, list[_t.Any]],
    ) -> None:
        survivors = self._surviving_deps(consumer)
        self.info.unassign(consumer.tid)
        self._assigned[consumer.iteration][consumer.level] -= 1
        self._note_unassigned(assignee, consumer.iteration)
        self._revoked.add(consumer.tid)
        self.generator.invalidate_consumer(consumer.tid, survivors)
        if self.env.tracer.enabled:
            self.env.tracer.token_invalidated(consumer, assignee)
        if self.invariants is not None:
            self.invariants.on_invalidated(consumer, was_assigned=True)
        summary["revoked"].append(consumer.tid)
        summary["invalidated"].append(consumer.tid)

    def _invalidate_buffered(
        self, consumer: Token, summary: dict[str, list[_t.Any]]
    ) -> None:
        survivors = self._surviving_deps(consumer)
        self.bucket.remove(consumer)
        self.generator.invalidate_consumer(consumer.tid, survivors)
        if self.env.tracer.enabled:
            self.env.tracer.token_invalidated(consumer, None)
        if self.invariants is not None:
            self.invariants.on_invalidated(consumer, was_assigned=False)
        summary["invalidated"].append(consumer.tid)

    def _remint_lost(
        self,
        token: Token,
        dead_wid: int,
        summary: dict[str, list[_t.Any]],
    ) -> None:
        holder = self.info.forget_completion(token.tid)
        self.generator.uncomplete(token.tid)
        self._assigned[token.iteration][token.level] -= 1
        self._note_unassigned(holder, token.iteration)
        self.bucket.add(token)
        if self.env.tracer.enabled:
            self.env.tracer.token_reminted(token, dead_wid)
            self.env.tracer.token_buffered(token)
        if self.invariants is not None:
            self.invariants.on_reminted(token)
        # The token object, not the tid: a later step of the same sweep
        # may invalidate this token (its own dependency also died),
        # deleting it from the registry.
        summary["reminted"].append(token)

    def _note_unassigned(self, wid: int, iteration: int) -> None:
        """Roll one assignment out of the per-worker attribution."""
        self._assignment_adjustment[wid] = (
            self._assignment_adjustment.get(wid, 0) + 1
        )
        per_iteration = self.tokens_by_worker_per_iteration.get(iteration)
        if per_iteration is not None and per_iteration.get(wid, 0) > 0:
            per_iteration[wid] -= 1

    # -- queries ---------------------------------------------------------------------

    def holder_of_token(self, tid: int) -> int | None:
        return self.info.holder_of(tid)

    def token_by_id(self, tid: int) -> Token:
        return self.generator.registry[tid]

    def participants(
        self, level: int, iteration: int | None = None
    ) -> list[int]:
        """Workers holding completed tokens of a level in one iteration.

        These are the workers that must synchronize the sub-model's
        parameters at the end of the level.  Defaults to the most
        recently opened iteration.
        """
        if iteration is None:
            iteration = self.current_iteration
        workers = set()
        for tid in self._token_index.get((iteration, level), ()):
            holder = self.info.holder_of(tid)
            if holder is not None:
                workers.add(holder)
        if self.faults is not None:
            workers = {
                wid for wid in workers if not self.faults.is_failed(wid)
            }
        return sorted(workers)

    def _exhausted_for(self, wid: int) -> bool:
        """``wid`` can never receive another token from any active
        iteration."""
        levels = self.distributor.takeable_levels(wid)
        counts = self.counts
        for assigned in self._assigned.values():
            for level in levels:
                if assigned[level] < counts[level]:
                    return False
        return True

    def all_assigned(self, iteration: int) -> bool:
        """Whether every token of ``iteration`` has been handed out."""
        assigned = self._assigned.get(iteration)
        if assigned is None:
            # Already ended: everything was assigned and completed.
            return iteration <= self.current_iteration
        return all(
            assigned[level] >= self.counts[level]
            for level in range(self.config.levels)
        )

    def bucket_changed_event(self) -> Event:
        """The event fired at the next bucket/assignment change."""
        return self._bucket_changed

    def _broadcast(self) -> None:
        event, self._bucket_changed = self._bucket_changed, self.env.event()
        event.succeed()
