"""The Token Distributor: ADS + HF + CTD policies (paper III-D..III-F).

Selection pipeline for a requesting worker:

1. **HF** (Section III-E) decides *where to look*: the worker's own STB
   first; once empty, the worker becomes a *helper* and draws from the STB
   of the straggler with the fewest helpers and the slowest progress.
   With HF off, the candidate pool is the whole bucket and every request
   contends on the shared lock.
2. **CTD** (Section III-F) filters and re-prioritizes *what may be taken*:
   workers outside the conditional subset S never receive tokens of
   communication-intensive sub-models; workers inside S take them first
   (priority T-2 > T-3 > T-1 in the paper's example).
3. **ADS** (Section III-D) ranks the remainder: highest level first
   (Principle 1), then highest locality score (Principle 2, Equation 1),
   then lowest token id.  With ADS off, tokens are handed out in
   generation (FIFO) order.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.bucket import TokenBucket
from repro.core.config import FelaConfig
from repro.core.tokens import InfoMapping, Token


@dataclasses.dataclass(frozen=True)
class Selection:
    """Outcome of one distribution decision."""

    token: Token | None
    #: The token came from the requester's own STB (no lock required).
    from_own_stb: bool
    #: The request contended with other in-flight requests on a shared
    #: pool (costs a conflict penalty, Section III-E).
    contended: bool


class TokenDistributor:
    """Stateful policy engine choosing tokens for requesting workers."""

    def __init__(self, config: FelaConfig) -> None:
        self.config = config
        self.comm_levels = frozenset(
            level
            for level, submodel in enumerate(config.partition)
            if submodel.communication_intensive
        )
        self.subset = config.conditional_subset
        #: Fault-layer membership; None outside faulted runs (then the
        #: static config subset applies unchanged).
        self._membership: _t.Any = None
        self._membership_epoch = -1
        self._effective_subset = self.subset
        #: helper wid -> straggler wid currently being helped.
        self._helping: dict[int, int] = {}
        #: straggler wid -> set of current helper wids.
        self._helpers: dict[int, set[int]] = {}
        #: Requests currently being serviced (for conflict detection).
        self._in_flight_requests: int = 0
        #: wid -> (subset identity, levels) cache for takeable_levels();
        #: invalidated per worker whenever the effective subset object
        #: changes (which only happens on a membership epoch move).
        self._takeable_cache: dict[
            int, tuple[frozenset[int] | None, frozenset[int]]
        ] = {}

    # -- CTD ------------------------------------------------------------------

    def attach_membership(self, membership: _t.Any) -> None:
        """Derive the CTD subset from live membership (elastic runs)."""
        self._membership = membership
        self._membership_epoch = -1

    def current_subset(self) -> frozenset[int]:
        """The CTD conditional subset S, resized under elasticity.

        Without a membership (fault layer off) this is the static config
        subset.  With one, S is the first ``subset_size`` active workers,
        recomputed whenever the membership epoch moves.
        """
        if self._membership is None:
            return self.subset
        if self._membership.epoch != self._membership_epoch:
            size = self.config.subset_size
            active = self._membership.active_workers()
            self._effective_subset = frozenset(active[:size])
            self._membership_epoch = self._membership.epoch
        return self._effective_subset

    def may_take(self, wid: int, level: int) -> bool:
        """CTD filter: may ``wid`` train tokens of ``level``?"""
        if not self.config.ctd_enabled:
            return True
        if level in self.comm_levels and wid not in self.current_subset():
            return False
        return True

    def takeable_levels(self, wid: int) -> frozenset[int]:
        """All levels worker ``wid`` may draw tokens from.

        Cached per worker against the identity of the effective subset:
        the answer only depends on the CTD subset, and the subset object
        is replaced (not mutated) when membership changes.
        """
        subset = self.current_subset() if self.config.ctd_enabled else None
        cached = self._takeable_cache.get(wid)
        if cached is not None and cached[0] is subset:
            return cached[1]
        levels = frozenset(
            level
            for level in range(self.config.levels)
            if self.may_take(wid, level)
        )
        self._takeable_cache[wid] = (subset, levels)
        return levels

    # -- selection -----------------------------------------------------------------

    def select(
        self, wid: int, bucket: TokenBucket, info: InfoMapping
    ) -> Selection:
        """Choose a token for worker ``wid`` (or none, if it must wait)."""
        # The requester itself is registered in-flight by the server, so
        # contention means *someone else* is mid-request too.  Of two
        # colliding requests, the one that resolves first sees the other
        # still in flight and pays the conflict — "at least one worker
        # will encounter fetching failure" (Section III-E).
        contended = self._in_flight_requests > 1
        if self.config.hf_enabled:
            own = self._takeable(wid, bucket.stb_view(wid))
            if own:
                self._stop_helping(wid)
                token = self._rank_and_pick(wid, own, info)
                return Selection(token=token, from_own_stb=True,
                                 contended=False)
            pool = self._helper_pool(wid, bucket)
        else:
            pool = self._takeable(wid, bucket.all_tokens())
        if not pool:
            return Selection(token=None, from_own_stb=False,
                             contended=False)
        token = self._rank_and_pick(wid, pool, info)
        return Selection(token=token, from_own_stb=False, contended=contended)

    def _takeable(self, wid: int, tokens: _t.Iterable[Token]) -> list[Token]:
        if not self.config.ctd_enabled:
            return list(tokens)
        levels = self.takeable_levels(wid)
        return [t for t in tokens if t.level in levels]

    def _rank_and_pick(
        self, wid: int, pool: list[Token], info: InfoMapping
    ) -> Token:
        # The subset membership test is per-request, not per-token: no
        # simulated time passes inside a pick, so hoisting it out of the
        # rank key cannot change the ranking.
        in_subset = (
            self.config.ctd_enabled and wid in self.current_subset()
        )
        comm_levels = self.comm_levels
        if self.config.ads_enabled:
            locality_score = info.locality_score

            def rank(token: Token) -> tuple:
                # When several iterations' tokens coexist (pipelined
                # SSP/ASP), the *oldest* iteration wins first — the token
                # "age" distribution rule of the paper's Section VI sketch.
                return (
                    0
                    if in_subset and token.level in comm_levels
                    else 1,
                    token.iteration,
                    -token.level,
                    -locality_score(wid, token),
                    token.tid,
                )

        else:

            def rank(token: Token) -> tuple:
                return (
                    0
                    if in_subset and token.level in comm_levels
                    else 1,
                    token.iteration,
                    token.tid,
                )

        return min(pool, key=rank)

    # -- HF helper election --------------------------------------------------------

    def _helper_pool(self, wid: int, bucket: TokenBucket) -> list[Token]:
        """Pool for a worker whose own STB is empty (it becomes a helper).

        Prefer the straggler this worker is already helping (sticky
        assignment); otherwise elect the straggler with the fewest current
        helpers, then the slowest progress (largest STB backlog), then the
        lowest id.  Only the elected straggler's pool is materialized:
        a CTD-restricted helper checks the losers with a short-circuit
        scan, and an unrestricted one (subset member or CTD off) may take
        anything, so every non-empty STB qualifies outright.
        """
        restricted = (
            self.config.ctd_enabled and wid not in self.current_subset()
        )
        levels = self.takeable_levels(wid) if restricted else None
        current = self._helping.get(wid)
        if current is not None:
            view = bucket.stb_view(current)
            pool = (
                list(view)
                if levels is None
                else [t for t in view if t.level in levels]
            )
            if pool:
                return pool
            self._stop_helping(wid)

        helpers = self._helpers
        best_key: tuple[int, int, int] | None = None
        best = -1
        for straggler in bucket.nonempty_stbs(exclude=wid):
            if levels is not None and not any(
                t.level in levels for t in bucket.stb_view(straggler)
            ):
                continue
            key = (
                len(helpers.get(straggler, ())),
                -bucket.stb_size(straggler),
                straggler,
            )
            # Stragglers are unique per candidate, so the strict < running
            # minimum equals the old sort()[0] without building the pools.
            if best_key is None or key < best_key:
                best_key = key
                best = straggler
        if best_key is None:
            return []
        self._helping[wid] = best
        helpers.setdefault(best, set()).add(wid)
        view = bucket.stb_view(best)
        return (
            list(view)
            if levels is None
            else [t for t in view if t.level in levels]
        )

    def _stop_helping(self, wid: int) -> None:
        straggler = self._helping.pop(wid, None)
        if straggler is not None:
            self._helpers.get(straggler, set()).discard(wid)

    def helper_of(self, wid: int) -> int | None:
        """The straggler ``wid`` currently helps, if any (for tests)."""
        return self._helping.get(wid)

    # -- conflict accounting ---------------------------------------------------------

    def request_started(self) -> None:
        self._in_flight_requests += 1

    def request_finished(self) -> None:
        self._in_flight_requests = max(0, self._in_flight_requests - 1)

    def reset_iteration(self) -> None:
        """Clear helper relationships at an iteration boundary."""
        self._helping.clear()
        self._helpers.clear()
