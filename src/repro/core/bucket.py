"""The Token Bucket, partitioned into per-worker sub-token-buckets (STBs).

With the HF policy enabled (paper Section III-E), every token lives in the
STB of its ``home_worker``; a worker first consumes its own STB, then
*helps* the straggler with the fewest helpers and the slowest progress.
With HF disabled, the bucket degenerates into one shared pool (the STB
structure is retained internally, but candidate selection spans all STBs
and every request contends on the shared lock).
"""

from __future__ import annotations

import typing as _t

from repro.core.tokens import Token, TokenId
from repro.errors import SchedulingError


class TokenBucket:
    """Holds the available (generated, not yet distributed) tokens."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise SchedulingError(f"need >= 1 worker: {num_workers}")
        self.num_workers = num_workers
        self._stbs: list[dict[TokenId, Token]] = [
            {} for _ in range(num_workers)
        ]
        self._size = 0
        #: Workers whose STBs currently hold tokens, maintained on every
        #: add/remove.  Candidate enumeration (helper election) iterates
        #: this set, so a token-scheduling round costs O(workers with
        #: backlog) instead of O(all workers) — the difference between 8
        #: and 1000 workers.
        self._nonempty: set[int] = set()

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        sizes = [len(stb) for stb in self._stbs]
        return f"<TokenBucket total={self._size} stbs={sizes}>"

    # -- mutation --------------------------------------------------------------

    def ensure_worker(self, wid: int) -> None:
        """Grow the bucket to hold an STB for ``wid`` (elastic join)."""
        if wid < 0:
            raise SchedulingError(f"worker id must be >= 0: {wid}")
        while wid >= self.num_workers:
            self._stbs.append({})
            self.num_workers += 1

    def add(self, token: Token) -> None:
        """Insert a freshly generated token into its home STB."""
        if not 0 <= token.home_worker < self.num_workers:
            raise SchedulingError(
                f"token {token.tid} has home worker {token.home_worker} "
                f"outside the {self.num_workers}-worker cluster"
            )
        stb = self._stbs[token.home_worker]
        if token.tid in stb:
            raise SchedulingError(f"token {token.tid} added twice")
        stb[token.tid] = token
        self._size += 1
        self._nonempty.add(token.home_worker)

    def add_many(self, tokens: _t.Iterable[Token]) -> None:
        """Bulk-insert freshly generated tokens (one mint burst).

        Identical outcome to calling :meth:`add` per token; the loop is
        just flattened so a begin-of-iteration mint of thousands of
        tokens pays one call.
        """
        stbs = self._stbs
        num_workers = self.num_workers
        nonempty = self._nonempty
        count = 0
        for token in tokens:
            home = token.home_worker
            if not 0 <= home < num_workers:
                raise SchedulingError(
                    f"token {token.tid} has home worker {home} outside "
                    f"the {num_workers}-worker cluster"
                )
            stb = stbs[home]
            if token.tid in stb:
                raise SchedulingError(f"token {token.tid} added twice")
            stb[token.tid] = token
            nonempty.add(home)
            count += 1
        self._size += count

    def remove(self, token: Token) -> None:
        """Take a token out of the bucket (it is being distributed)."""
        stb = self._stbs[token.home_worker]
        if token.tid not in stb:
            raise SchedulingError(
                f"token {token.tid} is not in worker "
                f"{token.home_worker}'s STB"
            )
        del stb[token.tid]
        self._size -= 1
        if not stb:
            self._nonempty.discard(token.home_worker)

    # -- queries -----------------------------------------------------------------

    def stb_tokens(self, wid: int) -> list[Token]:
        """Tokens currently in worker ``wid``'s STB."""
        return list(self._stbs[wid].values())

    def stb_view(self, wid: int) -> _t.Iterable[Token]:
        """Zero-copy view over worker ``wid``'s STB (do not mutate the
        bucket while iterating it)."""
        return self._stbs[wid].values()

    def stb_size(self, wid: int) -> int:
        return len(self._stbs[wid])

    def all_tokens(self) -> list[Token]:
        """Every available token, across all STBs."""
        return [token for stb in self._stbs for token in stb.values()]

    def nonempty_stbs(self, exclude: int | None = None) -> list[int]:
        """Workers whose STBs still hold tokens (ascending wid).

        Served from the incrementally maintained index: O(workers with
        tokens · log), independent of the cluster size.
        """
        if exclude is None:
            return sorted(self._nonempty)
        return sorted(wid for wid in self._nonempty if wid != exclude)
