"""The Token Bucket, partitioned into per-worker sub-token-buckets (STBs).

With the HF policy enabled (paper Section III-E), every token lives in the
STB of its ``home_worker``; a worker first consumes its own STB, then
*helps* the straggler with the fewest helpers and the slowest progress.
With HF disabled, the bucket degenerates into one shared pool (the STB
structure is retained internally, but candidate selection spans all STBs
and every request contends on the shared lock).
"""

from __future__ import annotations

import typing as _t

from repro.core.tokens import Token, TokenId
from repro.errors import SchedulingError


class TokenBucket:
    """Holds the available (generated, not yet distributed) tokens."""

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise SchedulingError(f"need >= 1 worker: {num_workers}")
        self.num_workers = num_workers
        self._stbs: list[dict[TokenId, Token]] = [
            {} for _ in range(num_workers)
        ]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        sizes = [len(stb) for stb in self._stbs]
        return f"<TokenBucket total={self._size} stbs={sizes}>"

    # -- mutation --------------------------------------------------------------

    def ensure_worker(self, wid: int) -> None:
        """Grow the bucket to hold an STB for ``wid`` (elastic join)."""
        if wid < 0:
            raise SchedulingError(f"worker id must be >= 0: {wid}")
        while wid >= self.num_workers:
            self._stbs.append({})
            self.num_workers += 1

    def add(self, token: Token) -> None:
        """Insert a freshly generated token into its home STB."""
        if not 0 <= token.home_worker < self.num_workers:
            raise SchedulingError(
                f"token {token.tid} has home worker {token.home_worker} "
                f"outside the {self.num_workers}-worker cluster"
            )
        stb = self._stbs[token.home_worker]
        if token.tid in stb:
            raise SchedulingError(f"token {token.tid} added twice")
        stb[token.tid] = token
        self._size += 1

    def remove(self, token: Token) -> None:
        """Take a token out of the bucket (it is being distributed)."""
        stb = self._stbs[token.home_worker]
        if token.tid not in stb:
            raise SchedulingError(
                f"token {token.tid} is not in worker "
                f"{token.home_worker}'s STB"
            )
        del stb[token.tid]
        self._size -= 1

    # -- queries -----------------------------------------------------------------

    def stb_tokens(self, wid: int) -> list[Token]:
        """Tokens currently in worker ``wid``'s STB."""
        return list(self._stbs[wid].values())

    def stb_size(self, wid: int) -> int:
        return len(self._stbs[wid])

    def all_tokens(self) -> list[Token]:
        """Every available token, across all STBs."""
        return [token for stb in self._stbs for token in stb.values()]

    def nonempty_stbs(self, exclude: int | None = None) -> list[int]:
        """Workers whose STBs still hold tokens."""
        return [
            wid
            for wid, stb in enumerate(self._stbs)
            if stb and wid != exclude
        ]
