"""Search-space enumeration for runtime configuration tuning (paper IV-B).

Phase 1 candidates are weight sequences ``{w_1, ..., w_M}`` with

* ``w_1 = 1`` (the base),
* each ``w_i`` a power of two no larger than ``2 ** floor(log2 N)``,
* ``w_{i+1} >= w_i`` (deeper sub-models need larger parallelism degrees —
  the structural prior the paper uses to prune the space).

For ``M = 3`` sub-models on ``N = 8`` workers this yields the paper's
``4 + 3 + 2 + 1 = 10`` cases.

Phase 2 candidates halve the conditional subset size: ``N, N/2, ..., 1``
(the paper skips non-divisors like 3, 5, 7 on purpose — footnote 15).
"""

from __future__ import annotations

import itertools
import math
import typing as _t

from repro.errors import TuningError


def weight_values(num_workers: int) -> list[int]:
    """Candidate parallelism degrees: ``{1, 2, 4, ..., 2^floor(log2 N)}``."""
    if num_workers < 1:
        raise TuningError(f"need >= 1 worker: {num_workers}")
    top = int(math.log2(num_workers))
    return [2**i for i in range(top + 1)]


def enumerate_weight_candidates(
    levels: int, num_workers: int
) -> list[tuple[int, ...]]:
    """All monotone weight sequences for ``levels`` sub-models.

    >>> enumerate_weight_candidates(3, 8)[:3]
    [(1, 1, 1), (1, 1, 2), (1, 1, 4)]
    """
    if levels < 1:
        raise TuningError(f"need >= 1 sub-model: {levels}")
    values = weight_values(num_workers)
    candidates = []
    for tail in itertools.combinations_with_replacement(values, levels - 1):
        candidates.append((1,) + tail)
    return candidates


def subset_size_candidates(num_workers: int) -> list[int]:
    """Conditional subset sizes, largest first: ``N, N/2, ..., 1``.

    For a non-power-of-two cluster the sizes are still halved (rounding
    down) until 1, preserving the paper's "halve every time" rule.
    """
    if num_workers < 1:
        raise TuningError(f"need >= 1 worker: {num_workers}")
    sizes = []
    size = num_workers
    while size >= 1:
        sizes.append(size)
        if size == 1:
            break
        size //= 2
    return sizes


def normalize_times(times: _t.Sequence[float]) -> list[float]:
    """The paper's Fig. 6(a) normalization: ``(t - min) / max``.

    (Footnote 16 — note the denominator is the *maximum*, not the range,
    so values span ``[0, 1 - min/max]``.)  Infeasible cases (``inf``,
    e.g. configurations that exceed GPU memory) normalize to 1.0 — off
    the top of the chart.
    """
    if not times:
        raise TuningError("cannot normalize an empty time list")
    finite = [t for t in times if t != float("inf")]
    if not finite:
        raise TuningError("no feasible times to normalize")
    lo, hi = min(finite), max(finite)
    if hi <= 0:
        raise TuningError(f"non-positive times: {times}")
    return [
        1.0 if t == float("inf") else (t - lo) / hi for t in times
    ]
