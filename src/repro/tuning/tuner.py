"""The two-phase runtime configuration tuner (paper Section IV-B).

Phase 1 — *parallelism degree tuning*: profile the mean per-iteration time
of every candidate weight sequence (CTD disabled, i.e. subset = N) for a
few warm-up iterations and keep the fastest.

Phase 2 — *conditional subset tuning*: with the winning weights fixed,
halve the conditional subset size (N, N/2, ..., 1) and keep the fastest.

On the paper's setup (M = 3, N = 8) this is 10 + 4 - 1 = 13 cases at 5
iterations each: 65 warm-up iterations, trivial against real training
jobs.  The tuner reports the same diagnostics the paper plots in Fig. 6:
normalized per-case times and the best-vs-worst gaps per phase.

Two accelerations compose with the exhaustive search:

* **Fan-out** — cases are independent seeded simulations, so they run
  through a :class:`~repro.exec.SweepExecutor` (process-pool parallel
  and/or served from the persistent result cache) when one is supplied.
* **Successive halving** (``tune(phase1="halving")``) — profile every
  Phase-1 candidate at 1 iteration, keep the fastest half, double the
  depth, repeat; finalists are re-measured at the full profile depth.
  Because the simulator is deterministic and per-iteration times are
  stable in iteration count, the surviving winner matches exhaustive
  search (a property the test suite asserts over the whole model zoo)
  while simulating strictly fewer warm-up iterations.
"""

from __future__ import annotations

import dataclasses
import math
import time
import typing as _t

from repro.core import FelaConfig
from repro.errors import TuningError
from repro.hardware import ClusterSpec
from repro.partition import Partition
from repro.stragglers import StragglerInjector
from repro.tuning.search import (
    enumerate_weight_candidates,
    normalize_times,
    subset_size_candidates,
)

#: Iterations measured per configuration case (the paper uses 5).
DEFAULT_PROFILE_ITERATIONS: int = 5

#: Phase-1 search strategies accepted by :meth:`ConfigurationTuner.tune`.
PHASE1_EXHAUSTIVE = "exhaustive"
PHASE1_HALVING = "halving"


@dataclasses.dataclass(frozen=True)
class TuningCase:
    """One profiled configuration case."""

    index: int
    phase: int  # 1 or 2
    weights: tuple[int, ...]
    subset_size: int
    per_iteration_time: float


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of a full two-phase tuning run.

    ``cases`` always holds full-depth measurements only (under
    successive halving the pruned candidates never reach full depth, so
    they are not cases); the wall-clock diagnostics summarize the whole
    search including pruned shallow probes.
    """

    cases: tuple[TuningCase, ...]
    best_weights: tuple[int, ...]
    best_subset_size: int
    warmup_iterations: int
    #: Case measurements performed (shallow halving probes included).
    cases_profiled: int = 0
    #: Phase-1 candidates eliminated before full-depth profiling.
    cases_pruned: int = 0
    #: Measurements served by the result cache instead of simulated.
    cache_hits: int = 0
    #: Host wall-clock the search took.
    wall_seconds: float = 0.0

    @property
    def phase1_cases(self) -> list[TuningCase]:
        return [c for c in self.cases if c.phase == 1]

    @property
    def phase2_cases(self) -> list[TuningCase]:
        """Phase-2 cases plus the phase-1 winner they compete against."""
        best_p1 = min(
            self.phase1_cases, key=lambda c: c.per_iteration_time
        )
        return [best_p1] + [c for c in self.cases if c.phase == 2]

    @property
    def best_case(self) -> TuningCase:
        return min(self.cases, key=lambda c: c.per_iteration_time)

    def normalized_times(self) -> list[float]:
        """Fig. 6(a): per-case times normalized to ``(t - min) / max``."""
        return normalize_times([c.per_iteration_time for c in self.cases])

    @staticmethod
    def _gap(cases: _t.Sequence[TuningCase]) -> float:
        """Best-vs-worst saving fraction: ``(worst - best) / worst``.

        Infeasible (``inf``) cases are excluded: they are out-of-memory
        configurations, not slow ones.
        """
        times = [
            c.per_iteration_time
            for c in cases
            if c.per_iteration_time != float("inf")
        ]
        if not times:
            return 0.0
        worst, best = max(times), min(times)
        return (worst - best) / worst if worst > 0 else 0.0

    def phase1_gap(self) -> float:
        """Fig. 6(b): saving of the best Phase-1 case over the worst."""
        return self._gap(self.phase1_cases)

    def phase2_gap(self) -> float:
        """Fig. 6(b): saving among Phase-2 cases (incl. Phase-1 winner)."""
        return self._gap(self.phase2_cases)

    def overall_gap(self) -> float:
        """Fig. 6(b): saving of the best case over the worst, all phases."""
        return self._gap(self.cases)


class ConfigurationTuner:
    """Runs the two-phase search for one (model, batch, cluster) workload."""

    def __init__(
        self,
        partition: Partition,
        total_batch: int,
        num_workers: int,
        cluster_spec: ClusterSpec | None = None,
        straggler: StragglerInjector | None = None,
        profile_iterations: int = DEFAULT_PROFILE_ITERATIONS,
        base_config: FelaConfig | None = None,
        executor: _t.Any | None = None,
    ) -> None:
        if profile_iterations < 1:
            raise TuningError(
                f"profile iterations must be >= 1: {profile_iterations}"
            )
        self.partition = partition
        self.total_batch = total_batch
        self.num_workers = num_workers
        self.cluster_spec = cluster_spec or ClusterSpec(num_nodes=num_workers)
        self.straggler = straggler
        self.profile_iterations = profile_iterations
        self._base_config = base_config
        #: A :class:`repro.exec.SweepExecutor`; created lazily (serial,
        #: uncached) when the caller does not supply one.
        self._executor = executor

    # -- internals -------------------------------------------------------------

    def _config(
        self,
        weights: tuple[int, ...],
        subset_size: int,
        iterations: int | None = None,
    ) -> FelaConfig:
        iterations = (
            self.profile_iterations if iterations is None else iterations
        )
        if self._base_config is not None:
            return self._base_config.replace(
                weights=weights,
                conditional_subset_size=subset_size,
                iterations=iterations,
            )
        return FelaConfig(
            partition=self.partition,
            total_batch=self.total_batch,
            num_workers=self.num_workers,
            weights=weights,
            conditional_subset_size=subset_size,
            iterations=iterations,
        )

    def _ensure_executor(self) -> _t.Any:
        if self._executor is None:
            from repro.exec import SweepExecutor

            self._executor = SweepExecutor()
        return self._executor

    def _measure_batch(
        self,
        candidates: _t.Sequence[tuple[tuple[int, ...], int]],
        iterations: int,
    ) -> list[float]:
        """Per-iteration times for many (weights, subset) cases at once."""
        from repro.exec import TuningCaseJob

        jobs = [
            TuningCaseJob(
                config=self._config(weights, subset, iterations),
                cluster_spec=self.cluster_spec,
                straggler=self.straggler,
            )
            for weights, subset in candidates
        ]
        return self._ensure_executor().map(jobs)

    def measure(
        self, weights: tuple[int, ...], subset_size: int
    ) -> float:
        """Mean per-iteration time for one configuration case.

        Configurations whose token batches do not fit in GPU memory are
        infeasible, not errors: they profile as ``inf`` and lose the
        search (the paper's testbed would simply OOM on them).
        """
        return self._measure_batch(
            [(weights, subset_size)], self.profile_iterations
        )[0]

    # -- the two phases ------------------------------------------------------------

    def tune(self, phase1: str = PHASE1_EXHAUSTIVE) -> TuningResult:
        """Run Phase 1 then Phase 2; return all cases and the winner.

        ``phase1`` selects the Phase-1 strategy:
        :data:`PHASE1_EXHAUSTIVE` profiles every weight candidate at
        full depth; :data:`PHASE1_HALVING` prunes with successive
        halving (same winner, fewer simulated iterations).
        """
        if phase1 not in (PHASE1_EXHAUSTIVE, PHASE1_HALVING):
            raise TuningError(
                f"unknown phase-1 strategy {phase1!r}; expected "
                f"{PHASE1_EXHAUSTIVE!r} or {PHASE1_HALVING!r}"
            )
        executor = self._ensure_executor()
        hits_before = executor.cache_hits
        wall_begin = time.perf_counter()

        candidates = enumerate_weight_candidates(
            len(self.partition), self.num_workers
        )
        cases: list[TuningCase] = []
        profiled = 0
        warmup = 0

        # Phase 1: parallelism degrees, CTD effectively off (subset = N).
        if phase1 == PHASE1_HALVING:
            survivors, shallow_profiled, shallow_warmup = self._halve(
                candidates
            )
            profiled += shallow_profiled
            warmup += shallow_warmup
        else:
            survivors = list(candidates)
        times = self._measure_batch(
            [(weights, self.num_workers) for weights in survivors],
            self.profile_iterations,
        )
        profiled += len(survivors)
        warmup += len(survivors) * self.profile_iterations
        for index, (weights, case_time) in enumerate(
            zip(survivors, times)
        ):
            cases.append(
                TuningCase(
                    index=index,
                    phase=1,
                    weights=weights,
                    subset_size=self.num_workers,
                    per_iteration_time=case_time,
                )
            )
        best_p1 = min(cases, key=lambda c: c.per_iteration_time)
        if best_p1.per_iteration_time == float("inf"):
            # Every parallelism degree OOMs: Phase 2 would only re-profile
            # doomed subsets of an infeasible winner.  Fail fast here.
            raise TuningError(
                "every configuration case is infeasible on this GPU"
            )

        # Phase 2: halve the conditional subset (N is already measured as
        # the Phase-1 winner, so only the strict subsets run).
        subsets = [
            subset
            for subset in subset_size_candidates(self.num_workers)
            if subset != self.num_workers
        ]
        times = self._measure_batch(
            [(best_p1.weights, subset) for subset in subsets],
            self.profile_iterations,
        )
        profiled += len(subsets)
        warmup += len(subsets) * self.profile_iterations
        index = len(cases)
        for subset, case_time in zip(subsets, times):
            cases.append(
                TuningCase(
                    index=index,
                    phase=2,
                    weights=best_p1.weights,
                    subset_size=subset,
                    per_iteration_time=case_time,
                )
            )
            index += 1

        best = min(cases, key=lambda c: c.per_iteration_time)
        if best.per_iteration_time == float("inf"):
            raise TuningError(
                "every configuration case is infeasible on this GPU"
            )
        return TuningResult(
            cases=tuple(cases),
            best_weights=best.weights,
            best_subset_size=best.subset_size,
            warmup_iterations=warmup,
            cases_profiled=profiled,
            cases_pruned=len(candidates) - len(survivors),
            cache_hits=executor.cache_hits - hits_before,
            wall_seconds=time.perf_counter() - wall_begin,
        )

    def _halve(
        self, candidates: _t.Sequence[tuple[int, ...]]
    ) -> tuple[list[tuple[int, ...]], int, int]:
        """Successive-halving pre-selection of Phase-1 candidates.

        Returns ``(survivors, measurements, simulated_iterations)``.
        Survivors keep candidate-enumeration order, so downstream case
        indices and tie-breaks stay deterministic.
        """
        survivors = list(candidates)
        rung = 1
        profiled = 0
        warmup = 0
        while len(survivors) > 1 and rung < self.profile_iterations:
            times = self._measure_batch(
                [(weights, self.num_workers) for weights in survivors],
                rung,
            )
            profiled += len(survivors)
            warmup += len(survivors) * rung
            keep = math.ceil(len(survivors) / 2)
            # Stable sort on (time, enumeration order): ties keep the
            # earlier candidate, exactly as exhaustive min() would.
            ranked = sorted(
                range(len(survivors)), key=lambda i: (times[i], i)
            )
            kept = sorted(ranked[:keep])
            survivors = [survivors[i] for i in kept]
            rung = min(rung * 2, self.profile_iterations)
        return survivors, profiled, warmup

    def tuned_config(
        self, iterations: int = 100, result: TuningResult | None = None
    ) -> FelaConfig:
        """A production config using the tuned weights/subset."""
        result = result or self.tune()
        config = self._config(result.best_weights, result.best_subset_size)
        return config.replace(iterations=iterations)
