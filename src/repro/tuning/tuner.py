"""The two-phase runtime configuration tuner (paper Section IV-B).

Phase 1 — *parallelism degree tuning*: profile the mean per-iteration time
of every candidate weight sequence (CTD disabled, i.e. subset = N) for a
few warm-up iterations and keep the fastest.

Phase 2 — *conditional subset tuning*: with the winning weights fixed,
halve the conditional subset size (N, N/2, ..., 1) and keep the fastest.

On the paper's setup (M = 3, N = 8) this is 10 + 4 - 1 = 13 cases at 5
iterations each: 65 warm-up iterations, trivial against real training
jobs.  The tuner reports the same diagnostics the paper plots in Fig. 6:
normalized per-case times and the best-vs-worst gaps per phase.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core import FelaConfig, FelaRuntime
from repro.errors import CapacityError, TuningError
from repro.hardware import Cluster, ClusterSpec
from repro.partition import Partition
from repro.stragglers import StragglerInjector
from repro.tuning.search import (
    enumerate_weight_candidates,
    normalize_times,
    subset_size_candidates,
)

#: Iterations measured per configuration case (the paper uses 5).
DEFAULT_PROFILE_ITERATIONS: int = 5


@dataclasses.dataclass(frozen=True)
class TuningCase:
    """One profiled configuration case."""

    index: int
    phase: int  # 1 or 2
    weights: tuple[int, ...]
    subset_size: int
    per_iteration_time: float


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Outcome of a full two-phase tuning run."""

    cases: tuple[TuningCase, ...]
    best_weights: tuple[int, ...]
    best_subset_size: int
    warmup_iterations: int

    @property
    def phase1_cases(self) -> list[TuningCase]:
        return [c for c in self.cases if c.phase == 1]

    @property
    def phase2_cases(self) -> list[TuningCase]:
        """Phase-2 cases plus the phase-1 winner they compete against."""
        best_p1 = min(
            self.phase1_cases, key=lambda c: c.per_iteration_time
        )
        return [best_p1] + [c for c in self.cases if c.phase == 2]

    @property
    def best_case(self) -> TuningCase:
        return min(self.cases, key=lambda c: c.per_iteration_time)

    def normalized_times(self) -> list[float]:
        """Fig. 6(a): per-case times normalized to ``(t - min) / max``."""
        return normalize_times([c.per_iteration_time for c in self.cases])

    @staticmethod
    def _gap(cases: _t.Sequence[TuningCase]) -> float:
        """Best-vs-worst saving fraction: ``(worst - best) / worst``.

        Infeasible (``inf``) cases are excluded: they are out-of-memory
        configurations, not slow ones.
        """
        times = [
            c.per_iteration_time
            for c in cases
            if c.per_iteration_time != float("inf")
        ]
        if not times:
            return 0.0
        worst, best = max(times), min(times)
        return (worst - best) / worst if worst > 0 else 0.0

    def phase1_gap(self) -> float:
        """Fig. 6(b): saving of the best Phase-1 case over the worst."""
        return self._gap(self.phase1_cases)

    def phase2_gap(self) -> float:
        """Fig. 6(b): saving among Phase-2 cases (incl. Phase-1 winner)."""
        return self._gap(self.phase2_cases)

    def overall_gap(self) -> float:
        """Fig. 6(b): saving of the best case over the worst, all phases."""
        return self._gap(self.cases)


class ConfigurationTuner:
    """Runs the two-phase search for one (model, batch, cluster) workload."""

    def __init__(
        self,
        partition: Partition,
        total_batch: int,
        num_workers: int,
        cluster_spec: ClusterSpec | None = None,
        straggler: StragglerInjector | None = None,
        profile_iterations: int = DEFAULT_PROFILE_ITERATIONS,
        base_config: FelaConfig | None = None,
    ) -> None:
        if profile_iterations < 1:
            raise TuningError(
                f"profile iterations must be >= 1: {profile_iterations}"
            )
        self.partition = partition
        self.total_batch = total_batch
        self.num_workers = num_workers
        self.cluster_spec = cluster_spec or ClusterSpec(num_nodes=num_workers)
        self.straggler = straggler
        self.profile_iterations = profile_iterations
        self._base_config = base_config

    # -- internals -------------------------------------------------------------

    def _config(
        self, weights: tuple[int, ...], subset_size: int
    ) -> FelaConfig:
        if self._base_config is not None:
            return self._base_config.replace(
                weights=weights,
                conditional_subset_size=subset_size,
                iterations=self.profile_iterations,
            )
        return FelaConfig(
            partition=self.partition,
            total_batch=self.total_batch,
            num_workers=self.num_workers,
            weights=weights,
            conditional_subset_size=subset_size,
            iterations=self.profile_iterations,
        )

    def measure(
        self, weights: tuple[int, ...], subset_size: int
    ) -> float:
        """Mean per-iteration time for one configuration case.

        Configurations whose token batches do not fit in GPU memory are
        infeasible, not errors: they profile as ``inf`` and lose the
        search (the paper's testbed would simply OOM on them).
        """
        config = self._config(weights, subset_size)
        cluster = Cluster(self.cluster_spec)
        try:
            runtime = FelaRuntime(config, cluster, straggler=self.straggler)
        except CapacityError:
            return float("inf")
        result = runtime.run()
        return result.mean_iteration_time

    # -- the two phases ------------------------------------------------------------

    def tune(self) -> TuningResult:
        """Run Phase 1 then Phase 2; return all cases and the winner."""
        cases: list[TuningCase] = []
        index = 0

        # Phase 1: parallelism degrees, CTD effectively off (subset = N).
        candidates = enumerate_weight_candidates(
            len(self.partition), self.num_workers
        )
        for weights in candidates:
            time = self.measure(weights, self.num_workers)
            cases.append(
                TuningCase(
                    index=index,
                    phase=1,
                    weights=weights,
                    subset_size=self.num_workers,
                    per_iteration_time=time,
                )
            )
            index += 1
        best_p1 = min(
            (c for c in cases if c.phase == 1),
            key=lambda c: c.per_iteration_time,
        )
        if best_p1.per_iteration_time == float("inf"):
            # Every parallelism degree OOMs: Phase 2 would only re-profile
            # doomed subsets of an infeasible winner.  Fail fast here.
            raise TuningError(
                "every configuration case is infeasible on this GPU"
            )

        # Phase 2: halve the conditional subset (N is already measured as
        # the Phase-1 winner, so only the strict subsets run).
        for subset in subset_size_candidates(self.num_workers):
            if subset == self.num_workers:
                continue
            time = self.measure(best_p1.weights, subset)
            cases.append(
                TuningCase(
                    index=index,
                    phase=2,
                    weights=best_p1.weights,
                    subset_size=subset,
                    per_iteration_time=time,
                )
            )
            index += 1

        best = min(cases, key=lambda c: c.per_iteration_time)
        if best.per_iteration_time == float("inf"):
            raise TuningError(
                "every configuration case is infeasible on this GPU"
            )
        return TuningResult(
            cases=tuple(cases),
            best_weights=best.weights,
            best_subset_size=best.subset_size,
            warmup_iterations=len(cases) * self.profile_iterations,
        )

    def tuned_config(
        self, iterations: int = 100, result: TuningResult | None = None
    ) -> FelaConfig:
        """A production config using the tuned weights/subset."""
        result = result or self.tune()
        config = self._config(result.best_weights, result.best_subset_size)
        return config.replace(iterations=iterations)
