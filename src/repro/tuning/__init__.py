"""Two-phase runtime configuration tuning (paper Section IV-B)."""

from repro.tuning.search import (
    enumerate_weight_candidates,
    normalize_times,
    subset_size_candidates,
    weight_values,
)
from repro.tuning.tuner import (
    DEFAULT_PROFILE_ITERATIONS,
    PHASE1_EXHAUSTIVE,
    PHASE1_HALVING,
    ConfigurationTuner,
    TuningCase,
    TuningResult,
)

__all__ = [
    "ConfigurationTuner",
    "DEFAULT_PROFILE_ITERATIONS",
    "PHASE1_EXHAUSTIVE",
    "PHASE1_HALVING",
    "TuningCase",
    "TuningResult",
    "enumerate_weight_candidates",
    "normalize_times",
    "subset_size_candidates",
    "weight_values",
]
