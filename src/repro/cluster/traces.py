"""Seeded arrival-trace generators: deterministic streams of training jobs.

A *trace* is a tuple of :class:`JobSpec` — each an independent training
job (model, batch, target iterations, worker bounds) stamped with the
simulated time it is submitted to the cluster.  Three arrival processes
cover the shapes real multi-tenant GPU clusters see:

* ``poisson`` — memoryless arrivals at a constant mean rate, the
  queueing-theory baseline.
* ``diurnal`` — an inhomogeneous Poisson process whose rate swings
  sinusoidally over a configurable period (day/night load).
* ``bursty`` — long quiet gaps punctuated by near-simultaneous bursts
  of submissions (a user sweeps a grid, a pipeline retriggers), the
  trace where head-of-line-blocking schedulers hurt most.

Every generator is a pure function of its :class:`TraceSpec`: one seeded
``random.Random``, a fixed draw order (arrival times first, then per-job
attributes), no wall clock — so equal seeds give byte-identical traces
and the scheduler comparisons downstream are reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
import typing as _t

from repro.errors import ConfigurationError

KIND_POISSON = "poisson"
KIND_DIURNAL = "diurnal"
KIND_BURSTY = "bursty"

#: Arrival processes :func:`generate_trace` understands.
TRACE_KINDS: tuple[str, ...] = (KIND_POISSON, KIND_DIURNAL, KIND_BURSTY)

#: Default model mix: the zoo minus resnet152 (untuned it dominates any
#: trace it appears in) and lenet5 (too small to contend for GPUs).
DEFAULT_MODELS: tuple[str, ...] = (
    "alexnet",
    "googlenet",
    "vgg16",
    "vgg19",
    "zfnet",
)


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One training job in an arrival trace."""

    job_id: int
    model: str
    total_batch: int
    iterations: int
    #: Fewest workers the job will run with (admission threshold).
    min_workers: int
    #: Most workers the job can use (allocation ceiling).
    max_workers: int
    #: Simulated time the job is submitted to the cluster.
    submit_time: float

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ConfigurationError(f"job id must be >= 0: {self.job_id}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"job {self.job_id}: iterations must be >= 1: "
                f"{self.iterations}"
            )
        if self.min_workers < 1:
            raise ConfigurationError(
                f"job {self.job_id}: min_workers must be >= 1: "
                f"{self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"job {self.job_id}: max_workers {self.max_workers} < "
                f"min_workers {self.min_workers}"
            )
        if self.total_batch < self.max_workers:
            raise ConfigurationError(
                f"job {self.job_id}: total batch {self.total_batch} "
                f"smaller than max_workers {self.max_workers}"
            )
        if self.submit_time < 0:
            raise ConfigurationError(
                f"job {self.job_id}: submit time must be >= 0: "
                f"{self.submit_time}"
            )

    def as_dict(self) -> dict[str, _t.Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """Everything a trace generator needs; equal specs ⇒ equal traces."""

    kind: str = KIND_POISSON
    num_jobs: int = 20
    seed: int = 0
    #: Mean seconds between arrivals (the long-run rate for every kind).
    mean_interarrival: float = 30.0
    models: tuple[str, ...] = DEFAULT_MODELS
    batches: tuple[int, ...] = (128, 256)
    iterations_range: tuple[int, int] = (2, 8)
    min_workers_range: tuple[int, int] = (1, 2)
    max_workers_range: tuple[int, int] = (4, 8)
    #: ``diurnal``: seconds per rate cycle.
    period: float = 600.0
    #: ``diurnal``: peak rate is ``(1 + amplitude)``× the mean rate.
    amplitude: float = 0.8
    #: ``bursty``: jobs per burst.
    burst_size: int = 6
    #: ``bursty``: mean seconds between jobs inside one burst.
    burst_spread: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ConfigurationError(
                f"unknown trace kind {self.kind!r}; expected one of "
                f"{TRACE_KINDS}"
            )
        if self.num_jobs < 1:
            raise ConfigurationError(
                f"trace needs at least one job: {self.num_jobs}"
            )
        if self.mean_interarrival <= 0:
            raise ConfigurationError(
                f"mean interarrival must be > 0: {self.mean_interarrival}"
            )
        if not self.models:
            raise ConfigurationError("trace needs at least one model")
        if not self.batches or any(b < 1 for b in self.batches):
            raise ConfigurationError(
                f"batches must be positive: {self.batches}"
            )
        for name, (lo, hi) in (
            ("iterations_range", self.iterations_range),
            ("min_workers_range", self.min_workers_range),
            ("max_workers_range", self.max_workers_range),
        ):
            if lo < 1 or hi < lo:
                raise ConfigurationError(
                    f"{name} must satisfy 1 <= lo <= hi: ({lo}, {hi})"
                )
        if self.min_workers_range[1] > self.max_workers_range[0]:
            raise ConfigurationError(
                "min_workers_range must sit at or below "
                f"max_workers_range: {self.min_workers_range} vs "
                f"{self.max_workers_range}"
            )
        if not 0 <= self.amplitude < 1:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1): {self.amplitude}"
            )
        if self.period <= 0:
            raise ConfigurationError(
                f"diurnal period must be > 0: {self.period}"
            )
        if self.burst_size < 1:
            raise ConfigurationError(
                f"burst size must be >= 1: {self.burst_size}"
            )
        if self.burst_spread <= 0:
            raise ConfigurationError(
                f"burst spread must be > 0: {self.burst_spread}"
            )


# -- arrival processes --------------------------------------------------------


def _poisson_arrivals(spec: TraceSpec, rng: random.Random) -> list[float]:
    now = 0.0
    times = []
    for _ in range(spec.num_jobs):
        now += rng.expovariate(1.0 / spec.mean_interarrival)
        times.append(now)
    return times


def _diurnal_arrivals(spec: TraceSpec, rng: random.Random) -> list[float]:
    """Inhomogeneous Poisson via thinning (Lewis-Shedler).

    Candidate arrivals are drawn at the peak rate and accepted with
    probability ``rate(t) / peak``; the accepted stream has exactly the
    sinusoidal intensity, and the draw count per acceptance is itself a
    deterministic function of the seed.
    """
    base_rate = 1.0 / spec.mean_interarrival
    peak = base_rate * (1.0 + spec.amplitude)
    now = 0.0
    times: list[float] = []
    while len(times) < spec.num_jobs:
        now += rng.expovariate(peak)
        rate = base_rate * (
            1.0 + spec.amplitude * math.sin(2 * math.pi * now / spec.period)
        )
        if rng.random() <= rate / peak:
            times.append(now)
    return times


def _bursty_arrivals(spec: TraceSpec, rng: random.Random) -> list[float]:
    """Bursts of ``burst_size`` jobs separated by long exponential gaps.

    The gap mean is scaled so the *long-run* arrival rate still matches
    ``mean_interarrival`` — bursty and poisson traces of equal spec load
    the cluster equally on average and differ only in clumping.
    """
    gap_mean = spec.burst_size * spec.mean_interarrival
    now = 0.0
    times: list[float] = []
    while len(times) < spec.num_jobs:
        now += rng.expovariate(1.0 / gap_mean)
        burst_at = now
        for _ in range(min(spec.burst_size, spec.num_jobs - len(times))):
            times.append(burst_at)
            burst_at += rng.expovariate(1.0 / spec.burst_spread)
        now = burst_at
    return times


_ARRIVALS = {
    KIND_POISSON: _poisson_arrivals,
    KIND_DIURNAL: _diurnal_arrivals,
    KIND_BURSTY: _bursty_arrivals,
}


# -- the generator ------------------------------------------------------------


def generate_trace(spec: TraceSpec) -> tuple[JobSpec, ...]:
    """Generate the deterministic job stream described by ``spec``.

    Draw order is fixed — all arrival times first, then per-job
    attributes in job order — so adding a new per-job attribute at the
    end of the inner block never perturbs earlier draws.
    """
    rng = random.Random(spec.seed)
    times = _ARRIVALS[spec.kind](spec, rng)
    jobs = []
    for job_id, submit in enumerate(times):
        model = spec.models[rng.randrange(len(spec.models))]
        batch = spec.batches[rng.randrange(len(spec.batches))]
        iterations = rng.randint(*spec.iterations_range)
        min_workers = rng.randint(*spec.min_workers_range)
        max_workers = rng.randint(*spec.max_workers_range)
        jobs.append(
            JobSpec(
                job_id=job_id,
                model=model,
                total_batch=batch,
                iterations=iterations,
                min_workers=min_workers,
                max_workers=max_workers,
                submit_time=round(submit, 6),
            )
        )
    return tuple(jobs)


def trace_json(jobs: _t.Sequence[JobSpec]) -> str:
    """Canonical JSON for a trace (sorted keys, no whitespace drift).

    Byte-for-byte equality of this string is the determinism contract
    the tests pin.
    """
    return json.dumps(
        [job.as_dict() for job in jobs],
        sort_keys=True,
        separators=(",", ":"),
    )
