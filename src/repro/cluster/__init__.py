"""``repro.cluster`` — the multi-tenant elastic cluster service.

Turns the single-job runtime into a shared service: seeded arrival
traces (:mod:`~repro.cluster.traces`) submit a stream of training jobs
to a :class:`~repro.cluster.simulator.ClusterSimulator` that owns one
GPU pool (:mod:`~repro.cluster.pool`) and one virtual clock, admits and
resizes jobs per a pluggable scheduler policy
(:mod:`~repro.cluster.schedulers`), and drives every resize through the
fault layer's membership machinery via per-job
:class:`~repro.cluster.director.ElasticDirector` instances.  See
``docs/cluster.md``.
"""

from repro.cluster.director import ElasticDirector
from repro.cluster.pool import GpuPool
from repro.cluster.schedulers import (
    SCHEDULER_NAMES,
    CostProfile,
    FairShareScheduler,
    FifoScheduler,
    Scheduler,
    ThroughputElasticScheduler,
    get_scheduler,
)
from repro.cluster.simulator import (
    ClusterResult,
    ClusterSimulator,
    JobState,
)
from repro.cluster.traces import (
    DEFAULT_MODELS,
    TRACE_KINDS,
    JobSpec,
    TraceSpec,
    generate_trace,
    trace_json,
)

__all__ = [
    "SCHEDULER_NAMES",
    "TRACE_KINDS",
    "DEFAULT_MODELS",
    "ClusterResult",
    "ClusterSimulator",
    "CostProfile",
    "ElasticDirector",
    "FairShareScheduler",
    "FifoScheduler",
    "GpuPool",
    "JobSpec",
    "JobState",
    "Scheduler",
    "ThroughputElasticScheduler",
    "TraceSpec",
    "generate_trace",
    "get_scheduler",
    "trace_json",
]
