"""Per-job elasticity director: scheduler targets → membership changes.

:class:`ElasticDirector` subclasses the PR 3
:class:`~repro.faults.controller.FaultController` and adds **no new
elasticity mechanism**: growing is queueing pending joins for
``provision_worker`` to realize at the next iteration boundary, and
shrinking is the controller's own graceful drain (``_do_leave``), where
a worker finishes its current token before departing.  What the
director adds is *direction*: at every iteration boundary it compares
the job's live worker count against the cluster scheduler's current
target and books the difference, and it reports every worker it gains
or loses back to the simulator so the shared GPU pool stays exact.

One director per job; the simulator is the single ``control`` they all
talk to.
"""

from __future__ import annotations

import typing as _t

from repro.faults.controller import FaultController
from repro.faults.injector import FaultInjector, NoFaults

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    pass


class DirectorControl(_t.Protocol):
    """What a director needs from the cluster simulator."""

    def target_workers(self, job_id: int) -> int:
        """The scheduler's current worker target for one job."""

    def grant_gpus(self, job_id: int, want: int) -> int:
        """Try to take ``want`` GPUs from the pool; returns the grant."""

    def ungrant_gpus(self, job_id: int, count: int) -> None:
        """Return GPUs whose pending joins were cancelled before use."""

    def worker_released(self, job_id: int, reason: str) -> None:
        """One worker's GPU went back to the pool (drain or failure)."""


class ElasticDirector(FaultController):
    """Fault controller that also follows cluster scheduler targets.

    The default injector is :class:`~repro.faults.injector.NoFaults`;
    passing a real one (the simulator does, when crash injection is on)
    composes cluster-driven elasticity with fault recovery on the same
    membership state machine.
    """

    def __init__(
        self,
        control: DirectorControl,
        job_id: int,
        injector: FaultInjector | None = None,
        lease_timeout: float = 1.0,
    ) -> None:
        super().__init__(
            injector if injector is not None else NoFaults(),
            lease_timeout=lease_timeout,
        )
        self._control = control
        self.job_id = job_id

    # -- boundary hook --------------------------------------------------------

    def iteration_started(self, iteration: int) -> None:
        # Book grows/shrinks *before* the base class drains pending
        # joins, so a grow granted here becomes live workers at this
        # very boundary rather than the next one.
        self._apply_target()
        super().iteration_started(iteration)

    def _apply_target(self) -> None:
        assert self.runtime is not None and self.membership is not None
        target = self._control.target_workers(self.job_id)
        live = [
            wid
            for wid in self.membership.active_workers()
            if wid not in self._crashed
        ]
        current = len(live) + self._pending_joins
        if target > current:
            self._grow(target - current)
        elif target < current:
            self._shrink(current - target, live)

    def _grow(self, want: int) -> None:
        assert self.runtime is not None
        runtime = self.runtime
        # Joins consume fresh node ids (a drained wid never comes back),
        # so growth is additionally capped by the job cluster's node
        # headroom; running out degrades to "stay at current size".
        headroom = runtime.cluster.num_nodes - (
            runtime.server.worker_slots + self._pending_joins
        )
        want = min(want, headroom)
        if want <= 0:
            return
        granted = self._control.grant_gpus(self.job_id, want)
        self._pending_joins += granted

    def _shrink(self, excess: int, live: list[int]) -> None:
        # Cancel not-yet-provisioned joins first: they cost nothing.
        if self._pending_joins > 0 and excess > 0:
            cancel = min(self._pending_joins, excess)
            self._pending_joins -= cancel
            excess -= cancel
            self._control.ungrant_gpus(self.job_id, cancel)
        assert self.membership is not None
        # Drain newest workers first (highest wid): they hold the least
        # cached state and it keeps wid churn at the membership's tail.
        for wid in sorted(live, reverse=True):
            if excess <= 0:
                break
            self._do_leave(wid)
            if self.membership.is_draining(wid):
                excess -= 1

    # -- departure accounting -------------------------------------------------

    def worker_departed(self, wid: int) -> None:
        super().worker_departed(wid)
        self._control.worker_released(self.job_id, "drain")

    def _handle_failure(self, wid: int) -> None:
        super()._handle_failure(wid)
        # The dead worker's GPU (node) returns to the pool; if the
        # scheduler still targets the old size, the next boundary grows
        # a replacement out of the pool through the normal join path.
        self._control.worker_released(self.job_id, "failure")
