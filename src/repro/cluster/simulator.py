"""The cluster simulator: many Fela jobs, one pool, one virtual clock.

:class:`ClusterSimulator` is the multi-tenant driver.  It plays an
arrival trace into a shared :class:`~repro.sim.core.Environment`: each
submitted job waits in the queue until the scheduler's plan admits it,
then runs a full :class:`~repro.core.runtime.FelaRuntime` — its own
:class:`~repro.hardware.cluster.Cluster` (nodes, fabric) but the *shared*
clock — while a per-job :class:`~repro.cluster.director.ElasticDirector`
steers its worker count toward the scheduler's current target at every
iteration boundary, through the PR 3 join/drain machinery.

Scheduling is event-driven, not polled: the plan is recomputed exactly
when the job mix changes (arrival, worker release, job completion), and
directors read the latest plan at their own boundaries.  Everything is
deterministic — arrivals come from the seeded trace, jobs are iterated
in fixed submission/admission order, and no wall clock exists — so one
seed gives one bit-identical :class:`ClusterResult`, which is what lets
scheduler comparisons be pinned by tests.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.cluster.director import ElasticDirector
from repro.cluster.pool import GpuPool
from repro.cluster.schedulers import CostProfile, Scheduler, get_scheduler
from repro.cluster.traces import JobSpec
from repro.core.config import FelaConfig
from repro.core.runtime import FelaRuntime
from repro.errors import ConfigurationError, PartitionError
from repro.faults.injector import FaultInjector, ProbabilisticCrashes
from repro.hardware import Cluster, ClusterSpec
from repro.models import get_model
from repro.obs.events import (
    CAT_CLUSTER,
    EV_JOB_FINISHED,
    EV_JOB_RESIZED,
    EV_JOB_STARTED,
    EV_JOB_SUBMITTED,
    TraceEvent,
)
from repro.partition import bin_partition, paper_partition
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.metrics import RunResult
    from repro.partition import Partition

STATUS_PENDING = "pending"
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"


class JobState:
    """Mutable per-job bookkeeping the simulator and schedulers share."""

    def __init__(self, spec: JobSpec, cost: CostProfile) -> None:
        self.spec = spec
        #: Analytic iteration-time model; schedulers bid with it.
        self.cost = cost
        self.status = STATUS_PENDING
        #: GPUs currently charged to this job (live + pending joins).
        self.held = 0
        #: Workers granted at admission (FIFO's permanent reservation).
        self.admitted_workers = 0
        self.initial_workers = 0
        self.final_workers = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: ``(time, delta, held_after)`` per post-admission change.
        self.resizes: list[tuple[float, int, int]] = []
        self.runtime: FelaRuntime | None = None
        self.director: ElasticDirector | None = None
        self.result: "RunResult | None" = None
        self.done_event: _t.Any = None

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def queue_delay(self) -> float:
        assert self.started_at is not None
        return self.started_at - self.spec.submit_time

    @property
    def jct(self) -> float:
        """Job completion time: submission to final iteration."""
        assert self.finished_at is not None
        return self.finished_at - self.spec.submit_time

    def as_row(self) -> dict[str, _t.Any]:
        """The job's ``cluster_jobs`` ledger row (sans run id)."""
        faults: dict[str, _t.Any] | None = None
        if self.result is not None:
            summary = self.result.stats.get("faults")
            if summary is not None:
                faults = {
                    "failures": len(summary["failures"]),
                    "joined": len(summary["joined"]),
                    "left": len(summary["left"]),
                    "tokens_reclaimed": summary["tokens_reclaimed"],
                    "tokens_reminted": summary["tokens_reminted"],
                    "tokens_invalidated": summary["tokens_invalidated"],
                    "tokens_revoked": summary["tokens_revoked"],
                    "lost_compute_seconds": summary[
                        "lost_compute_seconds"
                    ],
                }
        return {
            "job_id": self.spec.job_id,
            "model": self.spec.model,
            "total_batch": self.spec.total_batch,
            "iterations": self.spec.iterations,
            "min_workers": self.spec.min_workers,
            "max_workers": self.spec.max_workers,
            "submit_time": self.spec.submit_time,
            "start_time": self.started_at,
            "finish_time": self.finished_at,
            "jct": self.jct,
            "queue_delay": self.queue_delay,
            "initial_workers": self.initial_workers,
            "final_workers": self.final_workers,
            "resize_count": len(self.resizes),
            "resizes": json.dumps(self.resizes),
            "faults": json.dumps(faults) if faults is not None else None,
        }


def _percentile(sorted_values: _t.Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    index = min(len(sorted_values) - 1, rank - 1)
    return sorted_values[index]


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """One scheduler's complete run over one trace."""

    scheduler: str
    scheduler_display: str
    pool_size: int
    jobs: tuple[dict[str, _t.Any], ...]
    makespan: float
    mean_utilization: float
    pool_timeline: tuple[tuple[float, int], ...]
    events: tuple[TraceEvent, ...]
    #: Simulation-engine events processed (perf-lab workload measure).
    events_scheduled: int

    @property
    def jcts(self) -> list[float]:
        return sorted(job["jct"] for job in self.jobs)

    @property
    def mean_jct(self) -> float:
        jcts = self.jcts
        return sum(jcts) / len(jcts) if jcts else 0.0

    @property
    def p50_jct(self) -> float:
        return _percentile(self.jcts, 0.50)

    @property
    def p99_jct(self) -> float:
        return _percentile(self.jcts, 0.99)

    @property
    def mean_queue_delay(self) -> float:
        delays = [job["queue_delay"] for job in self.jobs]
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def total_resizes(self) -> int:
        return sum(job["resize_count"] for job in self.jobs)

    @property
    def lost_compute_seconds(self) -> float:
        total = 0.0
        for job in self.jobs:
            if job["faults"]:
                total += json.loads(job["faults"])["lost_compute_seconds"]
        return total

    def summary_row(self) -> dict[str, _t.Any]:
        """The run's ``cluster_runs`` ledger row (sans id/label/trace)."""
        return {
            "scheduler": self.scheduler,
            "pool_gpus": self.pool_size,
            "num_jobs": len(self.jobs),
            "makespan": self.makespan,
            "mean_jct": self.mean_jct,
            "p50_jct": self.p50_jct,
            "p99_jct": self.p99_jct,
            "mean_queue_delay": self.mean_queue_delay,
            "mean_utilization": self.mean_utilization,
            "total_resizes": self.total_resizes,
            "lost_compute_seconds": self.lost_compute_seconds,
            "pool_timeline": json.dumps(
                [[t, used] for t, used in self.pool_timeline]
            ),
        }


class ClusterSimulator:
    """Runs one arrival trace under one scheduler on one shared pool."""

    def __init__(
        self,
        trace: _t.Sequence[JobSpec],
        scheduler: Scheduler | str,
        pool_size: int,
        cluster_spec: ClusterSpec | None = None,
        crash_probability: float = 0.0,
        crash_seed: int = 0,
        node_headroom: int = 8,
        lease_timeout: float = 1.0,
    ) -> None:
        if not trace:
            raise ConfigurationError("trace has no jobs")
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        self.scheduler = scheduler
        self.pool = GpuPool(pool_size)
        self.base_spec = cluster_spec or ClusterSpec()
        if not 0 <= crash_probability < 1:
            raise ConfigurationError(
                f"crash probability must be in [0, 1): {crash_probability}"
            )
        if node_headroom < 0:
            raise ConfigurationError(
                f"node headroom must be >= 0: {node_headroom}"
            )
        self.crash_probability = crash_probability
        self.crash_seed = crash_seed
        self.node_headroom = node_headroom
        self.lease_timeout = lease_timeout
        self._partitions: dict[str, "Partition"] = {}
        self._states = [
            JobState(spec, self._cost_profile(spec))
            for spec in sorted(
                trace, key=lambda s: (s.submit_time, s.job_id)
            )
        ]
        self._by_id = {state.job_id: state for state in self._states}
        if len(self._by_id) != len(self._states):
            raise ConfigurationError("trace has duplicate job ids")
        for state in self._states:
            if state.spec.min_workers > pool_size:
                raise ConfigurationError(
                    f"job {state.job_id} needs {state.spec.min_workers} "
                    f"workers but the pool only has {pool_size} GPUs"
                )
        #: Admission order (running jobs keep their slot until done).
        self._admitted: list[JobState] = []
        self._targets: dict[int, int] = {}
        self._events: list[TraceEvent] = []
        self._seq = 0
        self._env: Environment | None = None

    # -- cost model -----------------------------------------------------------

    def _partition(self, model_name: str) -> "Partition":
        partition = self._partitions.get(model_name)
        if partition is None:
            model = get_model(model_name)
            try:
                partition = paper_partition(model)
            except PartitionError:
                partition = bin_partition(model)
            self._partitions[model_name] = partition
        return partition

    def _cost_profile(self, spec: JobSpec) -> CostProfile:
        partition = self._partition(spec.model)
        reference = FelaConfig(
            partition,
            total_batch=spec.total_batch,
            num_workers=1,
            weights=(1,) * len(partition),
            iterations=1,
        )
        counts = reference.token_counts()
        batches = reference.token_batches()
        gpu = self.base_spec.gpu
        compute = sum(
            counts[level] * gpu.train_time(submodel.layers, batches[level])
            for level, submodel in enumerate(partition)
        )
        return CostProfile(
            compute_seconds=compute,
            level_param_bytes=[sm.param_bytes for sm in partition],
            bandwidth=self.base_spec.effective_bandwidth,
        )

    # -- the run --------------------------------------------------------------

    def run(self) -> ClusterResult:
        """Play the whole trace; returns when the last job finishes."""
        if self._env is not None:
            raise ConfigurationError("a simulator instance runs once")
        env = Environment()
        self._env = env
        for state in self._states:
            state.done_event = env.event()
        env.process(self._arrivals())
        env.run(env.all_of([s.done_event for s in self._states]))
        makespan = max(
            _t.cast(float, state.finished_at) for state in self._states
        )
        return ClusterResult(
            scheduler=self.scheduler.name,
            scheduler_display=self.scheduler.display_name,
            pool_size=self.pool.size,
            jobs=tuple(state.as_row() for state in self._states),
            makespan=makespan,
            mean_utilization=self.pool.mean_utilization(makespan),
            pool_timeline=tuple(self.pool.timeline),
            events=tuple(self._events),
            events_scheduled=env.scheduled_events,
        )

    def _arrivals(self) -> _t.Iterator[_t.Any]:
        env = self._env
        assert env is not None
        for state in self._states:
            delay = state.spec.submit_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            state.status = STATUS_QUEUED
            self._emit(
                EV_JOB_SUBMITTED,
                state,
                {"model": state.spec.model},
            )
            self._reschedule()

    def _reschedule(self) -> None:
        """Recompute the plan; admit queued jobs the plan lets in."""
        running = [
            state
            for state in self._admitted
            if state.status == STATUS_RUNNING
        ]
        queued = [
            state
            for state in self._states
            if state.status == STATUS_QUEUED
        ]
        self._targets = self.scheduler.plan(
            self.pool.size, running, queued
        )
        for state in queued:
            target = self._targets.get(state.job_id, 0)
            if target < state.spec.min_workers:
                continue
            if self.scheduler.whole_allocation:
                # Whole allocation: wait until the full grant is free
                # (the plan reserves it; drains may lag the plan).
                if self.pool.free < target:
                    continue
                start_n = target
            else:
                start_n = min(target, self.pool.free)
                if start_n < state.spec.min_workers:
                    continue
            self._start_job(state, start_n)

    def _start_job(self, state: JobState, workers: int) -> None:
        env = self._env
        assert env is not None
        spec = state.spec
        partition = self._partition(spec.model)
        config = FelaConfig(
            partition,
            total_batch=spec.total_batch,
            num_workers=workers,
            weights=(1,) * len(partition),
            iterations=spec.iterations,
        )
        # Node budget: joins consume fresh wids forever (a drained wid
        # never rejoins), so size the job's cluster for its ceiling plus
        # headroom for shrink/regrow and crash/replace cycles.
        budget = spec.max_workers + self.node_headroom
        job_cluster = Cluster(
            dataclasses.replace(
                self.base_spec,
                num_nodes=budget,
                gpu_speed_factors=None,
            ),
            env=env,
        )
        injector: FaultInjector | None = None
        if self.crash_probability > 0:
            injector = ProbabilisticCrashes(
                probability=self.crash_probability,
                seed=self.crash_seed * 1_000_003 + spec.job_id,
            )
        director = ElasticDirector(
            self,
            spec.job_id,
            injector=injector,
            lease_timeout=self.lease_timeout,
        )
        self.pool.allocate(workers, env.now)
        state.held = workers
        state.admitted_workers = workers
        state.initial_workers = workers
        state.started_at = env.now
        state.status = STATUS_RUNNING
        state.runtime = FelaRuntime(config, job_cluster, faults=director)
        state.director = director
        self._admitted.append(state)
        self._emit(
            EV_JOB_STARTED,
            state,
            {"workers": workers, "model": spec.model},
        )
        env.process(self._job_main(state))

    def _job_main(self, state: JobState) -> _t.Iterator[_t.Any]:
        env = self._env
        assert env is not None
        runtime = state.runtime
        director = state.director
        assert runtime is not None and director is not None
        yield env.process(runtime._main())
        state.finished_at = env.now
        state.final_workers = state.held
        state.status = STATUS_DONE
        director.stop()
        assert state.started_at is not None
        state.result = runtime.finalize(started_at=state.started_at)
        # Whatever the job still holds — active workers parked after the
        # last iteration, drains that never completed — frees at once.
        released = state.held
        state.held = 0
        self.pool.release(released, env.now)
        self._emit(
            EV_JOB_FINISHED,
            state,
            {"jct": state.jct, "workers": released},
        )
        self._reschedule()
        state.done_event.succeed()

    # -- DirectorControl ------------------------------------------------------

    def target_workers(self, job_id: int) -> int:
        state = self._by_id[job_id]
        target = self._targets.get(job_id)
        if target is None:
            target = state.admitted_workers
        return target

    def grant_gpus(self, job_id: int, want: int) -> int:
        env = self._env
        assert env is not None
        state = self._by_id[job_id]
        if state.status != STATUS_RUNNING:
            return 0
        granted = min(want, self.pool.free)
        if granted <= 0:
            return 0
        self.pool.allocate(granted, env.now)
        self._record_resize(state, granted, "grow")
        return granted

    def ungrant_gpus(self, job_id: int, count: int) -> None:
        env = self._env
        assert env is not None
        state = self._by_id[job_id]
        if state.status != STATUS_RUNNING:
            return
        self.pool.release(count, env.now)
        self._record_resize(state, -count, "cancel")
        self._reschedule()

    def worker_released(self, job_id: int, reason: str) -> None:
        env = self._env
        assert env is not None
        state = self._by_id[job_id]
        if state.status != STATUS_RUNNING:
            # The job already finished and released its GPUs wholesale;
            # a straggling drain must not double-free.
            return
        self.pool.release(1, env.now)
        self._record_resize(state, -1, reason)
        self._reschedule()

    def _record_resize(
        self, state: JobState, delta: int, reason: str
    ) -> None:
        env = self._env
        assert env is not None
        state.held += delta
        state.resizes.append((env.now, delta, state.held))
        self._emit(
            EV_JOB_RESIZED,
            state,
            {"delta": delta, "workers": state.held, "reason": reason},
        )

    # -- events ---------------------------------------------------------------

    def _emit(
        self, name: str, state: JobState, args: dict[str, _t.Any]
    ) -> None:
        env = self._env
        assert env is not None
        self._events.append(
            TraceEvent(
                name=name,
                category=CAT_CLUSTER,
                start=env.now,
                duration=0.0,
                track=state.job_id,
                seq=self._seq,
                args=args,
            )
        )
        self._seq += 1
