"""The shared GPU pool: allocation bookkeeping and utilization accounting.

The pool never talks to the simulation queue — it is pure accounting.
Allocation decisions live in the schedulers; the simulator calls
:meth:`GpuPool.allocate` / :meth:`GpuPool.release` at the instants jobs
acquire or free GPUs, and the pool integrates GPU-seconds between those
instants so mean utilization falls out exactly, not from sampling.
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigurationError


class GpuPool:
    """Counting semaphore over ``size`` identical GPUs, with a timeline.

    ``timeline`` records every change as ``(time, gpus_in_use)``
    breakpoints — a right-continuous step function the dashboard renders
    directly and :meth:`mean_utilization` integrates.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"pool needs at least one GPU: {size}")
        self.size = size
        self.used = 0
        self.timeline: list[tuple[float, int]] = [(0.0, 0)]
        self._gpu_seconds = 0.0
        self._last_time = 0.0

    @property
    def free(self) -> int:
        return self.size - self.used

    def allocate(self, count: int, now: float) -> None:
        """Take ``count`` GPUs out of the free pool at time ``now``."""
        if count < 0:
            raise ConfigurationError(f"cannot allocate {count} GPUs")
        if count > self.free:
            raise CapacityError(
                f"pool has {self.free} free GPUs, not {count}"
            )
        if count:
            self._advance(now)
            self.used += count
            self._mark(now)

    def release(self, count: int, now: float) -> None:
        """Return ``count`` GPUs to the free pool at time ``now``."""
        if count < 0:
            raise ConfigurationError(f"cannot release {count} GPUs")
        if count > self.used:
            raise CapacityError(
                f"pool has {self.used} GPUs in use, not {count}"
            )
        if count:
            self._advance(now)
            self.used -= count
            self._mark(now)

    def _advance(self, now: float) -> None:
        self._gpu_seconds += self.used * (now - self._last_time)
        self._last_time = now

    def _mark(self, now: float) -> None:
        if self.timeline[-1][0] == now:
            self.timeline[-1] = (now, self.used)
        else:
            self.timeline.append((now, self.used))

    def gpu_seconds(self, until: float) -> float:
        """GPU-seconds consumed from t=0 through ``until``."""
        return self._gpu_seconds + self.used * (until - self._last_time)

    def mean_utilization(self, until: float) -> float:
        """Mean fraction of the pool in use over ``[0, until]``."""
        if until <= 0:
            return 0.0
        return self.gpu_seconds(until) / (self.size * until)
