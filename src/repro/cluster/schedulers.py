"""Cluster schedulers: who gets the next GPU.

A scheduler is a pure policy function.  Given the pool size and the
current job mix it returns a *target allocation* — ``job_id → workers``
— and never touches simulation state; the :class:`ClusterSimulator`
turns targets into reality through the membership join/drain machinery
at each job's next iteration boundary.  Jobs absent from the plan (or
targeted below their ``min_workers``) stay queued.

Three policies, in ascending sophistication:

* :class:`FifoScheduler` — strict arrival order, whole allocation,
  run-to-completion.  The head job waits until its full ``max_workers``
  fit; nothing backfills behind it.  The baseline every study beats.
* :class:`FairShareScheduler` — admit everything that fits at
  ``min_workers``, then deal remaining GPUs round-robin up to each
  job's ceiling: an equal split rebalanced on every arrival/departure.
* :class:`ThroughputElasticScheduler` — fair-share's admission, but
  surplus GPUs go one at a time to the job whose *throughput* gains
  most from one more worker, per the analytic iteration-time model in
  :class:`CostProfile` (compute shrinks ~1/w, ring-allreduce wire time
  grows with w).  Jobs past their communication knee stop bidding, so
  GPUs flow to whoever can still convert them into progress — the
  utility policy of *Elastic Deep Learning in Multi-Tenant GPU
  Clusters*, with Fela's cost model supplying the utility.
"""

from __future__ import annotations

import abc
import typing as _t

from repro.errors import ConfigurationError

if _t.TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.cluster.simulator import JobState


class CostProfile:
    """Analytic per-iteration time of one job as a function of workers.

    ``compute_seconds`` is the job's total per-iteration GPU work (every
    token of every level, from the profiler's layer timings); dividing
    by the worker count models Fela's work-stealing token pool, which
    keeps all workers busy regardless of how tokens are cut.  Sync cost
    is the ring-allreduce wire time ``2(k-1)/k · bytes / bandwidth``
    summed over sub-models — growing in ``k``, which is exactly what
    caps useful parallelism for communication-bound models.
    """

    __slots__ = ("compute_seconds", "level_param_bytes", "bandwidth")

    def __init__(
        self,
        compute_seconds: float,
        level_param_bytes: _t.Sequence[float],
        bandwidth: float,
    ) -> None:
        if compute_seconds <= 0:
            raise ConfigurationError(
                f"compute seconds must be > 0: {compute_seconds}"
            )
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be > 0: {bandwidth}")
        self.compute_seconds = compute_seconds
        self.level_param_bytes = tuple(level_param_bytes)
        self.bandwidth = bandwidth

    def iteration_seconds(self, workers: int) -> float:
        """Modelled seconds per iteration with ``workers`` workers."""
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        compute = self.compute_seconds / workers
        if workers == 1:
            return compute
        ring = 2 * (workers - 1) / workers / self.bandwidth
        sync = sum(ring * bytes_ for bytes_ in self.level_param_bytes)
        return compute + sync

    def rate(self, workers: int) -> float:
        """Modelled iterations per second with ``workers`` workers."""
        return 1.0 / self.iteration_seconds(workers)

    def marginal_gain(self, workers: int) -> float:
        """Throughput gained by the ``workers + 1``-th worker."""
        return self.rate(workers + 1) - self.rate(workers)


class Scheduler(abc.ABC):
    """Target-allocation policy; stateless and deterministic."""

    #: Canonical CLI name.
    name: str = ""
    #: Human-facing name for reports.
    display_name: str = ""
    #: Whole-allocation schedulers only admit a job when its *entire*
    #: target fits in the free pool; elastic ones start at whatever is
    #: free (≥ ``min_workers``) and grow later.
    whole_allocation: bool = False

    @abc.abstractmethod
    def plan(
        self,
        pool_size: int,
        running: _t.Sequence["JobState"],
        queued: _t.Sequence["JobState"],
    ) -> dict[int, int]:
        """Return ``job_id → target workers``.

        ``running`` is in admission order, ``queued`` in submission
        order; both orders are deterministic, and policies must iterate
        them positionally (never via unordered collections) so equal
        inputs always produce equal plans.
        """


class FifoScheduler(Scheduler):
    """Strict arrival order, whole allocation, run to completion."""

    name = "fifo"
    display_name = "FIFO"
    whole_allocation = True

    def plan(
        self,
        pool_size: int,
        running: _t.Sequence["JobState"],
        queued: _t.Sequence["JobState"],
    ) -> dict[int, int]:
        targets: dict[int, int] = {}
        free = pool_size
        for state in running:
            # Never resize a running job; its admission-time grant is
            # reserved even while a crash recovery re-grows toward it.
            targets[state.job_id] = state.admitted_workers
            free -= state.admitted_workers
        for state in queued:
            want = min(state.spec.max_workers, pool_size)
            if want > free:
                # Head-of-line blocking is the *point* of this baseline:
                # nothing backfills past a waiting head job.
                break
            targets[state.job_id] = want
            free -= want
        return targets


def _admit_at_min(
    pool_size: int,
    running: _t.Sequence["JobState"],
    queued: _t.Sequence["JobState"],
) -> tuple[dict[int, int], list["JobState"], int]:
    """Shared elastic admission: floor every admissible job at its min.

    Running jobs always keep their floor (they were admitted under it);
    queued jobs are admitted in submission order while floors fit.
    Returns the floored plan, the admitted jobs in rebalance order
    (running first, then newly admitted), and the GPUs left over.
    """
    targets: dict[int, int] = {}
    admitted: list["JobState"] = []
    free = pool_size
    for state in running:
        targets[state.job_id] = state.spec.min_workers
        free -= state.spec.min_workers
        admitted.append(state)
    for state in queued:
        if free >= state.spec.min_workers:
            targets[state.job_id] = state.spec.min_workers
            free -= state.spec.min_workers
            admitted.append(state)
    return targets, admitted, free


class FairShareScheduler(Scheduler):
    """Equal pool split, rebalanced on every arrival and departure."""

    name = "fair"
    display_name = "fair-share"

    def plan(
        self,
        pool_size: int,
        running: _t.Sequence["JobState"],
        queued: _t.Sequence["JobState"],
    ) -> dict[int, int]:
        targets, admitted, free = _admit_at_min(pool_size, running, queued)
        # Deal the surplus one GPU per job per round: everyone converges
        # to the same share modulo their [min, max] clamps, with the
        # leftover of an uneven split going to the longest-admitted.
        while free > 0:
            progressed = False
            for state in admitted:
                if free == 0:
                    break
                if targets[state.job_id] < state.spec.max_workers:
                    targets[state.job_id] += 1
                    free -= 1
                    progressed = True
            if not progressed:
                break
        return targets


class ThroughputElasticScheduler(Scheduler):
    """Marginal-throughput utility: each GPU goes where it helps most."""

    name = "elastic"
    display_name = "throughput-elastic"

    def plan(
        self,
        pool_size: int,
        running: _t.Sequence["JobState"],
        queued: _t.Sequence["JobState"],
    ) -> dict[int, int]:
        targets, admitted, free = _admit_at_min(pool_size, running, queued)
        while free > 0:
            best: "JobState | None" = None
            best_gain = 0.0
            for state in admitted:
                target = targets[state.job_id]
                if target >= state.spec.max_workers:
                    continue
                gain = state.cost.marginal_gain(target)
                # Strict > : ties (and zero/negative gains) resolve to
                # the earliest-admitted job, deterministically.
                if gain > best_gain:
                    best_gain = gain
                    best = state
            if best is None:
                # Nobody converts another GPU into throughput — leave
                # the rest free rather than burn them on sync overhead.
                break
            targets[best.job_id] += 1
            free -= 1
        return targets


#: Canonical scheduler names, in report order.
SCHEDULER_NAMES: tuple[str, ...] = ("fifo", "fair", "elastic")

_SCHEDULERS: dict[str, type[Scheduler]] = {
    "fifo": FifoScheduler,
    "fair": FairShareScheduler,
    "fair-share": FairShareScheduler,
    "elastic": ThroughputElasticScheduler,
    "throughput-elastic": ThroughputElasticScheduler,
}


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by (canonical or long) name."""
    try:
        return _SCHEDULERS[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; expected one of "
            f"{sorted(set(_SCHEDULERS))}"
        ) from None
