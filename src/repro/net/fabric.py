"""Max-min fair, flow-level network simulation.

Why flow-level?  Every communication effect the Fela paper leans on is a
bandwidth-sharing effect:

* the FC worker of the hybrid-parallel (Stanza) baseline becomes a
  *receive-side* bottleneck as the batch grows, because all other workers
  push activations into one 10 Gbps NIC;
* data-parallel synchronization moves the whole model every iteration and
  its cost is flat in the batch size;
* Fela/MP boundary-activation transfers grow with the batch size.

A fluid model — each active flow gets its max-min fair share of the
capacities it traverses (source NIC tx, destination NIC rx, optionally an
aggregate switch capacity) — captures these first-order effects without
simulating packets.

The implementation is event-driven: whenever the set of active flows
changes, the fabric *settles* the bytes transferred since the previous
change at the previous rates, recomputes the fair-share allocation by
water-filling, and schedules a wake-up at the earliest projected flow
completion.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.errors import SimulationError
from repro.sim import Environment, Event, Interrupt

#: Rates below this (bytes/second) are treated as zero to avoid scheduling
#: wake-ups astronomically far in the future due to floating-point dust.
_RATE_EPS = 1e-9

#: Remaining byte counts below this are considered complete.
_BYTES_EPS = 1e-6


@dataclasses.dataclass(slots=True)
class Flow:
    """One in-flight transfer between two nodes."""

    fid: int
    src: int
    dst: int
    size: float
    remaining: float
    rate: float = 0.0
    started_at: float = 0.0
    done: Event | None = None

    def __repr__(self) -> str:
        return (
            f"<Flow {self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.size:.0f}B @ {self.rate:.3g}B/s>"
        )


@dataclasses.dataclass
class FabricStats:
    """Aggregate accounting over the lifetime of a fabric."""

    flows_started: int = 0
    flows_completed: int = 0
    bytes_transferred: float = 0.0


class Fabric:
    """A star topology: N nodes, full-duplex NICs, non-blocking switch.

    Parameters
    ----------
    env:
        Simulation environment.
    num_nodes:
        Number of nodes attached to the switch.
    link_bandwidth:
        Per-direction NIC bandwidth in **bytes per second** (the paper's
        links are 10 Gbps = 1.25e9 B/s).
    latency:
        Fixed one-way propagation + protocol latency added to every
        transfer, in seconds.
    switch_bandwidth:
        Optional aggregate switch capacity in bytes per second; ``None``
        models a non-blocking switch (the paper's 40GE switch is
        non-blocking for 8 × 10 Gbps ports in practice).
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        link_bandwidth: float,
        latency: float = 50e-6,
        switch_bandwidth: float | None = None,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError(f"need at least one node: {num_nodes}")
        if link_bandwidth <= 0:
            raise SimulationError(
                f"link bandwidth must be positive: {link_bandwidth}"
            )
        if latency < 0:
            raise SimulationError(f"latency must be >= 0: {latency}")
        self.env = env
        self.num_nodes = num_nodes
        self.link_bandwidth = float(link_bandwidth)
        self.latency = float(latency)
        self.switch_bandwidth = (
            float(switch_bandwidth) if switch_bandwidth is not None else None
        )
        self.stats = FabricStats()
        self._flows: dict[int, Flow] = {}
        self._fid = itertools.count()
        self._last_settle = env.now
        self._waker: _t.Any = None  # Process sleeping until next completion

    # -- public API ---------------------------------------------------------

    def transfer(self, src: int, dst: int, size: float) -> Event:
        """Start a transfer of ``size`` bytes; returns its completion event.

        A transfer between a node and itself is local and completes
        immediately (zero simulated time, no bandwidth consumed): parameter
        chunks and training samples on local storage are free to read, which
        is exactly the data-locality asymmetry Fela's policies exploit.
        """
        self._check_node(src)
        self._check_node(dst)
        if size < 0:
            raise SimulationError(f"transfer size must be >= 0: {size}")
        done = self.env.event()
        if src == dst or size == 0:
            done.succeed(0.0)
            return done
        self.stats.flows_started += 1
        self._settle()
        flow = Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size),
            started_at=self.env.now,
            done=done,
        )
        self._flows[flow.fid] = flow
        self._reallocate()
        return done

    def transfer_many(
        self, requests: _t.Iterable[tuple[int, int, float]]
    ) -> list[Event]:
        """Start several transfers at once; returns their completion events.

        Equivalent to calling :meth:`transfer` once per ``(src, dst,
        size)`` request at the same instant, but settles the in-flight
        byte accounting and re-waterfills the fair shares once for the
        whole batch instead of once per flow.  All intermediate rate
        assignments of the sequential form are dead (no simulated time
        passes between the calls), so the resulting allocation — and the
        simulation — is identical; only the host-side work shrinks.
        Collectives and input fetches launch their per-peer flow sets
        through this path.
        """
        events: list[Event] = []
        env = self.env
        new_flows = False
        for src, dst, size in requests:
            self._check_node(src)
            self._check_node(dst)
            if size < 0:
                raise SimulationError(
                    f"transfer size must be >= 0: {size}"
                )
            done = env.event()
            events.append(done)
            if src == dst or size == 0:
                done.succeed(0.0)
                continue
            if not new_flows:
                # Settle once, at the instant the whole batch lands.
                self._settle()
                new_flows = True
            self.stats.flows_started += 1
            flow = Flow(
                fid=next(self._fid),
                src=src,
                dst=dst,
                size=float(size),
                remaining=float(size),
                started_at=env.now,
                done=done,
            )
            self._flows[flow.fid] = flow
        if new_flows:
            self._reallocate()
        return events

    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of flows currently in flight."""
        return list(self._flows.values())

    def utilization(self, node: int, direction: str = "tx") -> float:
        """Current fraction of a NIC direction's bandwidth in use."""
        self._check_node(node)
        if direction not in ("tx", "rx"):
            raise SimulationError(f"direction must be tx or rx: {direction}")
        used = sum(
            flow.rate
            for flow in self._flows.values()
            if (flow.src if direction == "tx" else flow.dst) == node
        )
        return used / self.link_bandwidth

    # -- internals ------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SimulationError(
                f"node index {node} outside [0, {self.num_nodes})"
            )

    def _settle(self) -> None:
        """Account bytes moved at the current rates since the last change."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        stats = self.stats
        for flow in self._flows.values():
            moved = min(flow.rate * elapsed, flow.remaining)
            flow.remaining -= moved
            stats.bytes_transferred += moved

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule the wake-up."""
        self._waterfill()
        self._schedule_wakeup()

    def _waterfill(self) -> None:
        """Assign max-min fair rates to all active flows.

        Classic progressive filling: repeatedly find the most constrained
        resource (capacity / unfrozen flows crossing it), freeze those flows
        at the fair share, subtract, and repeat.
        """
        flows = list(self._flows.values())
        for flow in flows:
            flow.rate = 0.0
        if not flows:
            return

        # Resources: ("tx", node) and ("rx", node) per node, plus optionally
        # the aggregate switch.  ``live_count`` tracks how many unfrozen
        # flows cross each resource so the share scan below is O(resources)
        # per round instead of O(resources × flows) — the arithmetic
        # (``cap / count``) and the insertion-ordered scan are unchanged,
        # so the allocation is bit-identical to the naive form.
        link_bandwidth = self.link_bandwidth
        remaining_cap: dict[tuple[str, int], float] = {}
        members: dict[tuple[str, int], list[Flow]] = {}
        live_count: dict[tuple[str, int], int] = {}
        for flow in flows:
            for key in (("tx", flow.src), ("rx", flow.dst)):
                group = members.get(key)
                if group is None:
                    remaining_cap[key] = link_bandwidth
                    members[key] = group = []
                    live_count[key] = 0
                group.append(flow)
                live_count[key] += 1
        has_switch = self.switch_bandwidth is not None
        skey = ("switch", -1)
        if has_switch:
            remaining_cap[skey] = _t.cast(float, self.switch_bandwidth)
            members[skey] = list(flows)
            live_count[skey] = len(flows)

        unfrozen: set[int] = {flow.fid for flow in flows}

        while unfrozen:
            # Fair share offered by each still-relevant resource.
            best_key: tuple[str, int] | None = None
            best_share = float("inf")
            for key, cap in remaining_cap.items():
                count = live_count[key]
                if not count:
                    continue
                share = cap / count
                if share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:
                break
            bottleneck_flows = [
                f for f in members[best_key] if f.fid in unfrozen
            ]
            for flow in bottleneck_flows:
                flow.rate = best_share
                unfrozen.discard(flow.fid)
                for key in (("tx", flow.src), ("rx", flow.dst)):
                    remaining_cap[key] = max(
                        0.0, remaining_cap[key] - best_share
                    )
                    live_count[key] -= 1
                if has_switch:
                    remaining_cap[skey] = max(
                        0.0, remaining_cap[skey] - best_share
                    )
                    live_count[skey] -= 1

    def _schedule_wakeup(self) -> None:
        """(Re)start the process that fires at the next flow completion."""
        if self._waker is not None and self._waker.is_alive:
            self._waker.interrupt("reallocate")
        self._waker = None
        if not self._flows:
            return
        next_dt = float("inf")
        for flow in self._flows.values():
            rate = flow.rate
            if rate > _RATE_EPS:
                dt = flow.remaining / rate
                if dt < next_dt:
                    next_dt = dt
        if next_dt == float("inf"):
            # No flow can progress (should not happen with positive
            # capacities); fail loudly rather than deadlock silently.
            raise SimulationError(
                "network fabric stalled: active flows but zero rates"
            )
        self._waker = self.env.process(self._wake_after(max(0.0, next_dt)))

    def _wake_after(self, delay: float):
        """Sleep ``delay``; then settle and complete any finished flows."""
        try:
            yield self.env.timeout(delay)
        except Interrupt:
            return
        self._waker = None
        self._settle()
        finished = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _BYTES_EPS
            or (
                flow.rate > _RATE_EPS
                and flow.remaining / flow.rate < 1e-9
            )
        ]
        if not finished and self._flows:
            # Floating-point dust: we woke for a completion but rounding
            # left a hair of the payload.  Force-complete the flow that was
            # due, or the wake-up loop would spin on ~zero time steps.
            due = min(
                (f for f in self._flows.values() if f.rate > _RATE_EPS),
                key=lambda f: f.remaining / f.rate,
                default=None,
            )
            if due is not None:
                finished = [due]
        tracer = self.env.tracer
        for flow in finished:
            del self._flows[flow.fid]
            self.stats.flows_completed += 1
            duration = self.env.now - flow.started_at + self.latency
            if tracer.enabled:
                # The span covers wire time up to last-byte arrival; the
                # tracer only records, so tracing never perturbs the sim.
                tracer.transfer(
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.started_at,
                    self.env.now + self.latency,
                )
            assert flow.done is not None
            # The last byte arrives ``latency`` seconds after it was put on
            # the wire; trigger the completion event with that delay.
            flow.done._ok = True
            flow.done._value = duration
            self.env.schedule(flow.done, delay=self.latency)
        self._reallocate()
