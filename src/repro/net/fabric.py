"""Max-min fair, flow-level network simulation.

Why flow-level?  Every communication effect the Fela paper leans on is a
bandwidth-sharing effect:

* the FC worker of the hybrid-parallel (Stanza) baseline becomes a
  *receive-side* bottleneck as the batch grows, because all other workers
  push activations into one 10 Gbps NIC;
* data-parallel synchronization moves the whole model every iteration and
  its cost is flat in the batch size;
* Fela/MP boundary-activation transfers grow with the batch size.

A fluid model — each active flow gets its max-min fair share of the
capacities it traverses (source NIC tx, destination NIC rx, optionally an
aggregate switch capacity) — captures these first-order effects without
simulating packets.

The implementation is event-driven: whenever the set of active flows
changes, the fabric *settles* the bytes transferred since the previous
change at the previous rates, recomputes the fair-share allocation by
water-filling, and schedules a wake-up at the earliest projected flow
completion.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.errors import SimulationError
from repro.sim import Environment, Event, Interrupt

#: Rates below this (bytes/second) are treated as zero to avoid scheduling
#: wake-ups astronomically far in the future due to floating-point dust.
_RATE_EPS = 1e-9

#: Remaining byte counts below this are considered complete.
_BYTES_EPS = 1e-6


@dataclasses.dataclass(slots=True)
class Flow:
    """One in-flight transfer between two nodes."""

    fid: int
    src: int
    dst: int
    size: float
    remaining: float
    rate: float = 0.0
    started_at: float = 0.0
    done: Event | None = None

    def __repr__(self) -> str:
        return (
            f"<Flow {self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.size:.0f}B @ {self.rate:.3g}B/s>"
        )


@dataclasses.dataclass
class FabricStats:
    """Aggregate accounting over the lifetime of a fabric."""

    flows_started: int = 0
    flows_completed: int = 0
    bytes_transferred: float = 0.0


class Fabric:
    """A star topology: N nodes, full-duplex NICs, non-blocking switch.

    Parameters
    ----------
    env:
        Simulation environment.
    num_nodes:
        Number of nodes attached to the switch.
    link_bandwidth:
        Per-direction NIC bandwidth in **bytes per second** (the paper's
        links are 10 Gbps = 1.25e9 B/s).
    latency:
        Fixed one-way propagation + protocol latency added to every
        transfer, in seconds.
    switch_bandwidth:
        Optional aggregate switch capacity in bytes per second; ``None``
        models a non-blocking switch (the paper's 40GE switch is
        non-blocking for 8 × 10 Gbps ports in practice).
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        link_bandwidth: float,
        latency: float = 50e-6,
        switch_bandwidth: float | None = None,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError(f"need at least one node: {num_nodes}")
        if link_bandwidth <= 0:
            raise SimulationError(
                f"link bandwidth must be positive: {link_bandwidth}"
            )
        if latency < 0:
            raise SimulationError(f"latency must be >= 0: {latency}")
        self.env = env
        self.num_nodes = num_nodes
        self.link_bandwidth = float(link_bandwidth)
        self.latency = float(latency)
        self.switch_bandwidth = (
            float(switch_bandwidth) if switch_bandwidth is not None else None
        )
        self.stats = FabricStats()
        self._flows: dict[int, Flow] = {}
        #: Resource → {fid: flow} index over active flows, maintained on
        #: every add/remove.  It is what makes the incremental waterfill
        #: possible: the connected component of a changed NIC can be
        #: discovered without scanning the full flow table.  Resources
        #: are keyed by small ints — ``src`` for a tx NIC, ``num_nodes +
        #: dst`` for an rx NIC, ``-1`` for the switch — because these
        #: keys are hashed on every hot-path dict operation and int
        #: hashing is far cheaper than tuple hashing.
        self._by_resource: dict[int, dict[int, Flow]] = {}
        #: The index is built lazily: workloads that never leave the
        #: full-solve regime (small flow tables, or an aggregate switch)
        #: never pay the per-add/per-remove maintenance.  The first
        #: restricted solve rebuilds it from the flow table and clears
        #: this flag; from then on add/remove keep it current.
        self._index_stale: bool = True
        #: Flow-table size at or below which a reallocation skips the
        #: dirty-component discovery and runs the full progressive fill
        #: directly.  For small tables the full solve is cheaper than the
        #: BFS that would tell us it is avoidable — on the 8-node macro
        #: workloads (≤ ~16-24 concurrent flows, usually one dense
        #: component) the traversal is pure overhead.  Both paths produce
        #: bit-identical rates, so this is a host-side knob only; tests
        #: set it to 0 to force the restricted path.
        self.incremental_cutoff: int = 24
        self._fid = itertools.count()
        self._last_settle = env.now
        self._waker: _t.Any = None  # Process sleeping until next completion

    # -- public API ---------------------------------------------------------

    def transfer(self, src: int, dst: int, size: float) -> Event:
        """Start a transfer of ``size`` bytes; returns its completion event.

        A transfer between a node and itself is local and completes
        immediately (zero simulated time, no bandwidth consumed): parameter
        chunks and training samples on local storage are free to read, which
        is exactly the data-locality asymmetry Fela's policies exploit.
        """
        self._check_node(src)
        self._check_node(dst)
        if size < 0:
            raise SimulationError(f"transfer size must be >= 0: {size}")
        done = self.env.event()
        if src == dst or size == 0:
            done.succeed(0.0)
            return done
        self.stats.flows_started += 1
        self._settle()
        flow = Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size),
            started_at=self.env.now,
            done=done,
        )
        self._flows[flow.fid] = flow
        if not self._index_stale:
            self._index_flow(flow)
        self._reallocate((src, self.num_nodes + dst))
        return done

    def transfer_many(
        self, requests: _t.Iterable[tuple[int, int, float]]
    ) -> list[Event]:
        """Start several transfers at once; returns their completion events.

        Equivalent to calling :meth:`transfer` once per ``(src, dst,
        size)`` request at the same instant, but settles the in-flight
        byte accounting and re-waterfills the fair shares once for the
        whole batch instead of once per flow.  All intermediate rate
        assignments of the sequential form are dead (no simulated time
        passes between the calls), so the resulting allocation — and the
        simulation — is identical; only the host-side work shrinks.
        Collectives and input fetches launch their per-peer flow sets
        through this path.
        """
        events: list[Event] = []
        env = self.env
        new_flows = False
        dirty: list[int] = []
        for src, dst, size in requests:
            self._check_node(src)
            self._check_node(dst)
            if size < 0:
                raise SimulationError(
                    f"transfer size must be >= 0: {size}"
                )
            done = env.event()
            events.append(done)
            if src == dst or size == 0:
                done.succeed(0.0)
                continue
            if not new_flows:
                # Settle once, at the instant the whole batch lands.
                self._settle()
                new_flows = True
            self.stats.flows_started += 1
            flow = Flow(
                fid=next(self._fid),
                src=src,
                dst=dst,
                size=float(size),
                remaining=float(size),
                started_at=env.now,
                done=done,
            )
            self._flows[flow.fid] = flow
            if not self._index_stale:
                self._index_flow(flow)
            dirty.append(src)
            dirty.append(self.num_nodes + dst)
        if new_flows:
            self._reallocate(dirty)
        return events

    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of flows currently in flight."""
        return list(self._flows.values())

    def utilization(self, node: int, direction: str = "tx") -> float:
        """Current fraction of a NIC direction's bandwidth in use."""
        self._check_node(node)
        if direction not in ("tx", "rx"):
            raise SimulationError(f"direction must be tx or rx: {direction}")
        used = sum(
            flow.rate
            for flow in self._flows.values()
            if (flow.src if direction == "tx" else flow.dst) == node
        )
        return used / self.link_bandwidth

    # -- internals ------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SimulationError(
                f"node index {node} outside [0, {self.num_nodes})"
            )

    def _settle(self) -> None:
        """Account bytes moved at the current rates since the last change."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        stats = self.stats
        for flow in self._flows.values():
            moved = min(flow.rate * elapsed, flow.remaining)
            flow.remaining -= moved
            stats.bytes_transferred += moved

    def _index_flow(self, flow: Flow) -> None:
        by_resource = self._by_resource
        for key in (flow.src, self.num_nodes + flow.dst):
            group = by_resource.get(key)
            if group is None:
                by_resource[key] = {flow.fid: flow}
            else:
                group[flow.fid] = flow

    def _unindex_flow(self, flow: Flow) -> None:
        by_resource = self._by_resource
        for key in (flow.src, self.num_nodes + flow.dst):
            group = by_resource.get(key)
            if group is not None:
                group.pop(flow.fid, None)
                if not group:
                    del by_resource[key]

    def _reallocate(
        self, dirty: _t.Iterable[int] | None = None
    ) -> None:
        """Recompute max-min fair rates and reschedule the wake-up.

        ``dirty`` names the NIC resources touched by the flow add/remove
        that triggered the call.  When given (no aggregate switch couples
        every flow to every other, and the flow table is large enough for
        the discovery to pay for itself — see ``incremental_cutoff``),
        only the connected component of flows reachable from those
        resources is re-solved; flows in untouched components keep their
        rates, which the full progressive fill would reproduce
        bit-for-bit anyway because disjoint components never share a
        capacity term.
        """
        if (
            dirty is None
            or self.switch_bandwidth is not None
            or len(self._flows) <= self.incremental_cutoff
        ):
            self._waterfill()
        else:
            if self._index_stale:
                self._rebuild_index()
            self._waterfill(self._dirty_component(dirty))
        self._schedule_wakeup()

    def _rebuild_index(self) -> None:
        """Build ``_by_resource`` from the flow table (first restricted
        solve only; afterwards add/remove maintain it incrementally)."""
        self._by_resource.clear()
        for flow in self._flows.values():
            self._index_flow(flow)
        self._index_stale = False

    def _dirty_component(
        self, dirty: _t.Iterable[int]
    ) -> list[Flow] | None:
        """Flows (ascending fid) connected to the dirty resources.

        Returns ``None`` to request a full solve: with an aggregate
        switch every flow shares one capacity (the dirty set always
        spans it), and once the component covers more than half the
        active flows the restricted solve can no longer win — the
        traversal bails out rather than finish discovering a component
        it will not use.
        """
        if self.switch_bandwidth is not None:
            return None
        by_resource = self._by_resource
        num_nodes = self.num_nodes
        bail = len(self._flows) // 2
        seen_keys: set[int] = set()
        component: set[int] = set()
        frontier: list[int] = []
        for key in dirty:
            if key not in seen_keys:
                seen_keys.add(key)
                frontier.append(key)
        while frontier:
            key = frontier.pop()
            flows_here = by_resource.get(key)
            if not flows_here:
                continue
            # Ascending-fid traversal: the discovered component is a set
            # (order-independent), but walking a sorted snapshot keeps
            # the bail-out point a function of the component alone, not
            # of the index dict's insertion history.
            for fid in sorted(flows_here):
                if fid in component:
                    continue
                flow = flows_here[fid]
                component.add(fid)
                if len(component) > bail:
                    return None
                tx = flow.src
                if tx not in seen_keys:
                    seen_keys.add(tx)
                    frontier.append(tx)
                rx = num_nodes + flow.dst
                if rx not in seen_keys:
                    seen_keys.add(rx)
                    frontier.append(rx)
        flows = self._flows
        return [flows[fid] for fid in sorted(component)]

    def _waterfill(self, component: list[Flow] | None = None) -> None:
        """Assign max-min fair rates to active flows.

        Classic progressive filling: repeatedly find the most constrained
        resource (capacity / unfrozen flows crossing it), freeze those flows
        at the fair share, subtract, and repeat.  When ``component`` is
        given it must be a union of whole connected components in
        ascending-fid order; the fill then touches only those flows and
        their resources.  Each component's arithmetic — key insertion
        order, ``cap / count`` sequence, tie-breaks — is identical to its
        slice of the full solve, because resources never span components,
        so the resulting rates are bit-identical.
        """
        flows = (
            list(self._flows.values()) if component is None else component
        )
        for flow in flows:
            flow.rate = 0.0
        if not flows:
            return

        # Resources: tx NIC (key ``node``) and rx NIC (key ``num_nodes +
        # node``) per node, plus optionally the aggregate switch (key
        # ``-1``).  Each resource holds one fused ``[remaining capacity,
        # live (unfrozen) flow count, member flows]`` entry.  A round's
        # share scan walks ``entries``, an explicit list in resource
        # first-seen order — the same order the dict view used to yield,
        # now pinned by construction instead of by dict internals.  The
        # arithmetic — the ``cap / count`` sequence, the strict ``<``
        # tie-break, the clamp at zero — matches the naive per-flow form
        # exactly, so the allocation is bit-identical to it.
        link_bandwidth = self.link_bandwidth
        num_nodes = self.num_nodes
        state: dict[int, list[_t.Any]] = {}
        entries: list[list[_t.Any]] = []
        for flow in flows:
            for key in (flow.src, num_nodes + flow.dst):
                entry = state.get(key)
                if entry is None:
                    entry = [link_bandwidth, 1, [flow]]
                    state[key] = entry
                    entries.append(entry)
                else:
                    entry[1] += 1
                    entry[2].append(flow)
        has_switch = self.switch_bandwidth is not None
        skey = -1
        if has_switch:
            entry = [
                _t.cast(float, self.switch_bandwidth),
                len(flows),
                list(flows),
            ]
            state[skey] = entry
            entries.append(entry)

        unfrozen: set[int] = {flow.fid for flow in flows}
        infinity = float("inf")

        while unfrozen:
            # Fair share offered by each still-relevant resource.
            best_entry: list[_t.Any] | None = None
            best_share = infinity
            for entry in entries:
                count = entry[1]
                if not count:
                    continue
                share = entry[0] / count
                if share < best_share:
                    best_share = share
                    best_entry = entry
            if best_entry is None:
                break
            for flow in best_entry[2]:
                fid = flow.fid
                if fid not in unfrozen:
                    continue
                flow.rate = best_share
                unfrozen.discard(fid)
                for key in (flow.src, num_nodes + flow.dst):
                    entry = state[key]
                    cap = entry[0] - best_share
                    entry[0] = cap if cap > 0.0 else 0.0
                    entry[1] -= 1
                if has_switch:
                    entry = state[skey]
                    cap = entry[0] - best_share
                    entry[0] = cap if cap > 0.0 else 0.0
                    entry[1] -= 1

    def _schedule_wakeup(self) -> None:
        """(Re)start the process that fires at the next flow completion."""
        if self._waker is not None and self._waker.is_alive:
            self._waker.interrupt("reallocate")
        self._waker = None
        if not self._flows:
            return
        next_dt = float("inf")
        for flow in self._flows.values():
            rate = flow.rate
            if rate > _RATE_EPS:
                dt = flow.remaining / rate
                if dt < next_dt:
                    next_dt = dt
        if next_dt == float("inf"):
            # No flow can progress (should not happen with positive
            # capacities); fail loudly rather than deadlock silently.
            raise SimulationError(
                "network fabric stalled: active flows but zero rates"
            )
        self._waker = self.env.process(self._wake_after(max(0.0, next_dt)))

    def _wake_after(self, delay: float):
        """Sleep ``delay``; then settle and complete any finished flows."""
        try:
            yield self.env.timeout(delay)
        except Interrupt:
            return
        self._waker = None
        self._settle()
        finished = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _BYTES_EPS
            or (
                flow.rate > _RATE_EPS
                and flow.remaining / flow.rate < 1e-9
            )
        ]
        if not finished and self._flows:
            # Floating-point dust: we woke for a completion but rounding
            # left a hair of the payload.  Force-complete the flow that was
            # due, or the wake-up loop would spin on ~zero time steps.
            due = min(
                (f for f in self._flows.values() if f.rate > _RATE_EPS),
                key=lambda f: f.remaining / f.rate,
                default=None,
            )
            if due is not None:
                finished = [due]
        tracer = self.env.tracer
        dirty: list[int] = []
        for flow in finished:
            del self._flows[flow.fid]
            if not self._index_stale:
                self._unindex_flow(flow)
            dirty.append(flow.src)
            dirty.append(self.num_nodes + flow.dst)
            self.stats.flows_completed += 1
            duration = self.env.now - flow.started_at + self.latency
            if tracer.enabled:
                # The span covers wire time up to last-byte arrival; the
                # tracer only records, so tracing never perturbs the sim.
                tracer.transfer(
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.started_at,
                    self.env.now + self.latency,
                )
            assert flow.done is not None
            # The last byte arrives ``latency`` seconds after it was put on
            # the wire; trigger the completion event with that delay.
            flow.done._ok = True
            flow.done._value = duration
            self.env.schedule(flow.done, delay=self.latency)
        self._reallocate(dirty)
