"""Max-min fair, flow-level network simulation.

Why flow-level?  Every communication effect the Fela paper leans on is a
bandwidth-sharing effect:

* the FC worker of the hybrid-parallel (Stanza) baseline becomes a
  *receive-side* bottleneck as the batch grows, because all other workers
  push activations into one 10 Gbps NIC;
* data-parallel synchronization moves the whole model every iteration and
  its cost is flat in the batch size;
* Fela/MP boundary-activation transfers grow with the batch size.

A fluid model — each active flow gets its max-min fair share of the
capacities it traverses (source NIC tx, destination NIC rx, optionally an
aggregate switch capacity) — captures these first-order effects without
simulating packets.

The implementation is event-driven: whenever the set of active flows
changes, the fabric *settles* the bytes transferred since the previous
change at the previous rates, recomputes the fair-share allocation by
water-filling, and schedules a wake-up at the earliest projected flow
completion.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush

from repro.errors import SimulationError
from repro.sim import Environment, Event

#: Rates below this (bytes/second) are treated as zero to avoid scheduling
#: wake-ups astronomically far in the future due to floating-point dust.
_RATE_EPS = 1e-9

#: Remaining byte counts below this are considered complete.
_BYTES_EPS = 1e-6


@dataclasses.dataclass(slots=True)
class Flow:
    """One in-flight transfer between two nodes."""

    fid: int
    src: int
    dst: int
    size: float
    remaining: float
    rate: float = 0.0
    started_at: float = 0.0
    done: Event | None = None

    def __repr__(self) -> str:
        return (
            f"<Flow {self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.size:.0f}B @ {self.rate:.3g}B/s>"
        )


@dataclasses.dataclass
class FabricStats:
    """Aggregate accounting over the lifetime of a fabric."""

    flows_started: int = 0
    flows_completed: int = 0
    bytes_transferred: float = 0.0
    #: Waterfills over the whole flow table / over one dirty component.
    solves_full: int = 0
    solves_restricted: int = 0
    #: Single-flow add/remove churn absorbed by the rate-reuse path
    #: without re-solving, and churn that was eligible (single flow,
    #: record present) but failed the proof obligation and fell back.
    reuse_hits: int = 0
    reuse_fallbacks: int = 0


class _ReuseState:
    """The frozen cascade of the last full-table waterfill.

    ``res``/``members`` hold, per resource key, the residual capacity
    after every flow froze and the total number of member flows;
    ``s_max`` is the largest frozen share.  ``stack`` records flows
    admitted by the add-reuse proof afterwards, LIFO, each with the
    exact pre-add values of everything the add mutated — popping the
    stack on removal restores the record bit-for-bit, so no
    floating-point drift can accumulate across add/remove cycles.
    """

    __slots__ = ("res", "members", "s_max", "stack")

    def __init__(
        self,
        res: dict[int, float],
        members: dict[int, int],
        s_max: float,
    ) -> None:
        self.res = res
        self.members = members
        self.s_max = s_max
        self.stack: list[tuple[_t.Any, ...]] = []


class Fabric:
    """A star topology: N nodes, full-duplex NICs, non-blocking switch.

    Parameters
    ----------
    env:
        Simulation environment.
    num_nodes:
        Number of nodes attached to the switch.
    link_bandwidth:
        Per-direction NIC bandwidth in **bytes per second** (the paper's
        links are 10 Gbps = 1.25e9 B/s).
    latency:
        Fixed one-way propagation + protocol latency added to every
        transfer, in seconds.
    switch_bandwidth:
        Optional aggregate switch capacity in bytes per second; ``None``
        models a non-blocking switch (the paper's 40GE switch is
        non-blocking for 8 × 10 Gbps ports in practice).
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        link_bandwidth: float,
        latency: float = 50e-6,
        switch_bandwidth: float | None = None,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError(f"need at least one node: {num_nodes}")
        if link_bandwidth <= 0:
            raise SimulationError(
                f"link bandwidth must be positive: {link_bandwidth}"
            )
        if latency < 0:
            raise SimulationError(f"latency must be >= 0: {latency}")
        self.env = env
        self.num_nodes = num_nodes
        self.link_bandwidth = float(link_bandwidth)
        self.latency = float(latency)
        self.switch_bandwidth = (
            float(switch_bandwidth) if switch_bandwidth is not None else None
        )
        self.stats = FabricStats()
        self._flows: dict[int, Flow] = {}
        #: Resource → {fid: flow} index over active flows, maintained on
        #: every add/remove.  It is what makes the incremental waterfill
        #: possible: the connected component of a changed NIC can be
        #: discovered without scanning the full flow table.  Resources
        #: are keyed by small ints — ``src`` for a tx NIC, ``num_nodes +
        #: dst`` for an rx NIC, ``-1`` for the switch — because these
        #: keys are hashed on every hot-path dict operation and int
        #: hashing is far cheaper than tuple hashing.
        self._by_resource: dict[int, dict[int, Flow]] = {}
        #: The index is built lazily: workloads that never leave the
        #: full-solve regime (small flow tables, or an aggregate switch)
        #: never pay the per-add/per-remove maintenance.  The first
        #: restricted solve rebuilds it from the flow table and clears
        #: this flag; from then on add/remove keep it current.
        self._index_stale: bool = True
        #: Flow-table size at or below which a reallocation skips the
        #: dirty-component discovery and runs the full progressive fill
        #: directly.  For small tables the full solve is cheaper than the
        #: BFS that would tell us it is avoidable — on the 8-node macro
        #: workloads (≤ ~16-24 concurrent flows, usually one dense
        #: component) the traversal is pure overhead.  Both paths produce
        #: bit-identical rates, so this is a host-side knob only; tests
        #: set it to 0 to force the restricted path.
        self.incremental_cutoff: int = 24
        #: Entry count above which a waterfill switches from the linear
        #: per-round scan to the lazy-invalidation min-heap.  Both paths
        #: compute bit-identical rates (same ``cap / count`` sequence,
        #: same first-seen tie-break); the heap only wins once the
        #: rounds-times-entries product outgrows its bookkeeping, so
        #: small solves keep the scan.  Host-side knob; tests sweep it.
        self.waterfill_heap_cutoff: int = 48
        #: Flow-table size from which a full solve records its cascade
        #: for the single-flow add/remove reuse path.  Below it the
        #: record's upkeep costs more than the solve it might save.
        self.reuse_cutoff: int = 128
        #: Cascade record of the last full-table solve (``None`` when no
        #: valid record exists; any non-reuse mutation invalidates it).
        self._reuse: _ReuseState | None = None
        self._fid = itertools.count()
        self._last_settle = env.now
        #: Timeout armed for the next flow completion.  Cancellation is
        #: a callback removal — the orphaned timeout stays on the heap as
        #: a dead event for the run loop's fast-forward to elide — so a
        #: reallocation storm costs one Timeout each, not a full
        #: process interrupt/respawn cycle.
        self._waker: _t.Any = None
        self._wake_cb = self._on_wake  # one bound method for the lifetime

    # -- public API ---------------------------------------------------------

    def transfer(self, src: int, dst: int, size: float) -> Event:
        """Start a transfer of ``size`` bytes; returns its completion event.

        A transfer between a node and itself is local and completes
        immediately (zero simulated time, no bandwidth consumed): parameter
        chunks and training samples on local storage are free to read, which
        is exactly the data-locality asymmetry Fela's policies exploit.
        """
        self._check_node(src)
        self._check_node(dst)
        if size < 0:
            raise SimulationError(f"transfer size must be >= 0: {size}")
        done = self.env.event()
        if src == dst or size == 0:
            done.succeed(0.0)
            return done
        self.stats.flows_started += 1
        self._settle()
        flow = Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size),
            started_at=self.env.now,
            done=done,
        )
        self._flows[flow.fid] = flow
        if not self._index_stale:
            self._index_flow(flow)
        self._reallocate((src, self.num_nodes + dst), added=flow)
        return done

    def transfer_many(
        self, requests: _t.Iterable[tuple[int, int, float]]
    ) -> list[Event]:
        """Start several transfers at once; returns their completion events.

        Equivalent to calling :meth:`transfer` once per ``(src, dst,
        size)`` request at the same instant, but settles the in-flight
        byte accounting and re-waterfills the fair shares once for the
        whole batch instead of once per flow.  All intermediate rate
        assignments of the sequential form are dead (no simulated time
        passes between the calls), so the resulting allocation — and the
        simulation — is identical; only the host-side work shrinks.
        Collectives and input fetches launch their per-peer flow sets
        through this path.
        """
        events: list[Event] = []
        env = self.env
        new_flows = False
        started: Flow | None = None
        count = 0
        dirty: list[int] = []
        for src, dst, size in requests:
            self._check_node(src)
            self._check_node(dst)
            if size < 0:
                raise SimulationError(
                    f"transfer size must be >= 0: {size}"
                )
            done = env.event()
            events.append(done)
            if src == dst or size == 0:
                done.succeed(0.0)
                continue
            if not new_flows:
                # Settle once, at the instant the whole batch lands.
                self._settle()
                new_flows = True
            self.stats.flows_started += 1
            flow = Flow(
                fid=next(self._fid),
                src=src,
                dst=dst,
                size=float(size),
                remaining=float(size),
                started_at=env.now,
                done=done,
            )
            self._flows[flow.fid] = flow
            if not self._index_stale:
                self._index_flow(flow)
            started = flow
            count += 1
            dirty.append(src)
            dirty.append(self.num_nodes + dst)
        if new_flows:
            # A batch of one is the same event sequence as transfer():
            # let it ride the single-add reuse proof.
            self._reallocate(dirty, added=started if count == 1 else None)
        return events

    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of flows currently in flight."""
        return list(self._flows.values())

    def utilization(self, node: int, direction: str = "tx") -> float:
        """Current fraction of a NIC direction's bandwidth in use."""
        self._check_node(node)
        if direction not in ("tx", "rx"):
            raise SimulationError(f"direction must be tx or rx: {direction}")
        used = sum(
            flow.rate
            for flow in self._flows.values()
            if (flow.src if direction == "tx" else flow.dst) == node
        )
        return used / self.link_bandwidth

    # -- internals ------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SimulationError(
                f"node index {node} outside [0, {self.num_nodes})"
            )

    def _settle(self) -> None:
        """Account bytes moved at the current rates since the last change."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0:
            return
        stats = self.stats
        for flow in self._flows.values():
            moved = min(flow.rate * elapsed, flow.remaining)
            flow.remaining -= moved
            stats.bytes_transferred += moved

    def _settle_and_find_due(self) -> list[Flow] | None:
        """One pass: account bytes *and* collect completion candidates.

        Same arithmetic as :meth:`_settle` (``min`` spelled as a branch),
        with the wake-up's completion predicate evaluated on each flow in
        the same iteration — the flow table is walked once instead of
        twice per completion event.  Returns ``None`` when no time has
        passed since the last settle: nothing moved in this call, but an
        *earlier* settle at the same instant may already have driven
        flows to zero, so the caller must fall back to the full scan.
        """
        now = self.env.now
        elapsed = now - self._last_settle
        if elapsed <= 0:
            return None
        self._last_settle = now
        stats = self.stats
        due: list[Flow] = []
        for flow in self._flows.values():
            remaining = flow.remaining
            moved = flow.rate * elapsed
            if moved > remaining:
                moved = remaining
            remaining -= moved
            flow.remaining = remaining
            stats.bytes_transferred += moved
            if remaining <= _BYTES_EPS or (
                flow.rate > _RATE_EPS and remaining / flow.rate < 1e-9
            ):
                due.append(flow)
        return due

    def _index_flow(self, flow: Flow) -> None:
        by_resource = self._by_resource
        for key in (flow.src, self.num_nodes + flow.dst):
            group = by_resource.get(key)
            if group is None:
                by_resource[key] = {flow.fid: flow}
            else:
                group[flow.fid] = flow

    def _unindex_flow(self, flow: Flow) -> None:
        by_resource = self._by_resource
        for key in (flow.src, self.num_nodes + flow.dst):
            group = by_resource.get(key)
            if group is not None:
                group.pop(flow.fid, None)
                if not group:
                    del by_resource[key]

    def _reallocate(
        self,
        dirty: _t.Iterable[int] | None = None,
        added: Flow | None = None,
        removed: Flow | None = None,
    ) -> None:
        """Recompute max-min fair rates and reschedule the wake-up.

        ``dirty`` names the NIC resources touched by the flow add/remove
        that triggered the call.  When given (no aggregate switch couples
        every flow to every other, and the flow table is large enough for
        the discovery to pay for itself — see ``incremental_cutoff``),
        only the connected component of flows reachable from those
        resources is re-solved; flows in untouched components keep their
        rates, which the full progressive fill would reproduce
        bit-for-bit anyway because disjoint components never share a
        capacity term.

        ``added``/``removed`` name the single flow when exactly one was
        added or removed; with a valid cascade record the rate-reuse
        proof (:meth:`_try_reuse_add` / :meth:`_try_reuse_remove`) may
        then absorb the churn without any solve at all.  Whenever the
        proof obligation fails, the normal solve path runs.
        """
        if self._reuse is not None:
            if added is not None and removed is None:
                if self._try_reuse_add(added):
                    self.stats.reuse_hits += 1
                    self._schedule_wakeup()
                    return
                self.stats.reuse_fallbacks += 1
            elif removed is not None and added is None:
                if self._try_reuse_remove(removed):
                    self.stats.reuse_hits += 1
                    self._schedule_wakeup()
                    return
                self.stats.reuse_fallbacks += 1
        if (
            dirty is None
            or self.switch_bandwidth is not None
            or len(self._flows) <= self.incremental_cutoff
        ):
            self._waterfill()
        else:
            if self._index_stale:
                self._rebuild_index()
            self._waterfill(self._dirty_component(dirty))
        self._schedule_wakeup()

    def _rebuild_index(self) -> None:
        """Build ``_by_resource`` from the flow table (first restricted
        solve only; afterwards add/remove maintain it incrementally)."""
        self._by_resource.clear()
        for flow in self._flows.values():
            self._index_flow(flow)
        self._index_stale = False

    def _try_reuse_add(self, flow: Flow) -> bool:
        """Admit one new flow on top of the recorded cascade, if provable.

        Sufficient condition, checked per entry ``e`` of the flow: the
        entry's recorded residual capacity split across its member count
        plus the newcomer still beats the cascade's largest frozen share
        — ``res_e / (members_e + 1) > s_max``.  Then at every round of a
        from-scratch solve the entry's offer would exceed that round's
        share (caps only shrink toward the residual, counts only grow
        toward the total, float division is monotone), so the newcomer
        never preempts the recorded freeze order and simply freezes
        alone in one extra final round at ``min(res_tx, res_rx)`` — the
        exact rate a full re-solve would assign it, with every other
        rate untouched.  Resources absent from the record carry a full
        idle link.  The strict ``>`` also rules out ties, which the
        linear scan would otherwise break by entry seniority.
        """
        rec = self._reuse
        assert rec is not None
        bandwidth = self.link_bandwidth
        res = rec.res
        members = rec.members
        s_max = rec.s_max
        tx = flow.src
        rx = self.num_nodes + flow.dst
        res_tx = res.get(tx, bandwidth)
        mem_tx = members.get(tx, 0)
        if res_tx / (mem_tx + 1) <= s_max:
            return False
        res_rx = res.get(rx, bandwidth)
        mem_rx = members.get(rx, 0)
        if res_rx / (mem_rx + 1) <= s_max:
            return False
        share = res_tx if res_tx <= res_rx else res_rx
        flow.rate = share
        rec.stack.append(
            (flow.fid, tx, rx, res_tx, mem_tx, res_rx, mem_rx, s_max)
        )
        cap = res_tx - share
        res[tx] = cap if cap > 0.0 else 0.0
        cap = res_rx - share
        res[rx] = cap if cap > 0.0 else 0.0
        members[tx] = mem_tx + 1
        members[rx] = mem_rx + 1
        rec.s_max = share  # provably > the old maximum
        return True

    def _try_reuse_remove(self, flow: Flow) -> bool:
        """Retire a reuse-added flow by unwinding its stack frame.

        Only the most recent reuse-added flow qualifies: its round is
        the cascade's last, it froze alone, and the frame holds the
        exact pre-add residuals/counts/``s_max`` — restoring them yields
        the record a full solve of the remaining flows would rebuild,
        bit for bit, with no other rate touched.  Anything else (a flow
        that froze inside the cascade, out-of-order removals, batched
        completions) falls back to a real solve.
        """
        rec = self._reuse
        assert rec is not None
        if not rec.stack or rec.stack[-1][0] != flow.fid:
            return False
        _, tx, rx, res_tx, mem_tx, res_rx, mem_rx, s_max = rec.stack.pop()
        res = rec.res
        members = rec.members
        if mem_tx:
            res[tx] = res_tx
            members[tx] = mem_tx
        else:
            del res[tx]
            del members[tx]
        if mem_rx:
            res[rx] = res_rx
            members[rx] = mem_rx
        else:
            del res[rx]
            del members[rx]
        rec.s_max = s_max
        return True

    def _dirty_component(
        self, dirty: _t.Iterable[int]
    ) -> list[Flow] | None:
        """Flows (ascending fid) connected to the dirty resources.

        Returns ``None`` to request a full solve: with an aggregate
        switch every flow shares one capacity (the dirty set always
        spans it), and once the component covers more than half the
        active flows the restricted solve can no longer win — the
        traversal bails out rather than finish discovering a component
        it will not use.
        """
        if self.switch_bandwidth is not None:
            return None
        by_resource = self._by_resource
        num_nodes = self.num_nodes
        bail = len(self._flows) // 2
        seen_keys: set[int] = set()
        component: set[int] = set()
        frontier: list[int] = []
        for key in dirty:
            if key not in seen_keys:
                seen_keys.add(key)
                frontier.append(key)
        while frontier:
            key = frontier.pop()
            flows_here = by_resource.get(key)
            if not flows_here:
                continue
            # Walk the index dict directly: its insertion order is a
            # deterministic function of the (deterministic) simulation,
            # so the bail-out point is reproducible run-to-run, and the
            # discovered component is a set — order-independent — so the
            # solve itself cannot see the traversal order.  Sorting a
            # snapshot per visited resource (the previous form) was the
            # single largest cost of the discovery at scale.
            for fid, flow in flows_here.items():
                if fid in component:
                    continue
                component.add(fid)
                if len(component) > bail:
                    return None
                tx = flow.src
                if tx not in seen_keys:
                    seen_keys.add(tx)
                    frontier.append(tx)
                rx = num_nodes + flow.dst
                if rx not in seen_keys:
                    seen_keys.add(rx)
                    frontier.append(rx)
        flows = self._flows
        return [flows[fid] for fid in sorted(component)]

    def _waterfill(self, component: list[Flow] | None = None) -> None:
        """Assign max-min fair rates to active flows.

        Classic progressive filling: repeatedly find the most constrained
        resource (capacity / unfrozen flows crossing it), freeze those flows
        at the fair share, subtract, and repeat.  When ``component`` is
        given it must be a union of whole connected components in
        ascending-fid order; the fill then touches only those flows and
        their resources.  Each component's arithmetic — key insertion
        order, ``cap / count`` sequence, tie-breaks — is identical to its
        slice of the full solve, because resources never span components,
        so the resulting rates are bit-identical.
        """
        # Any solve invalidates the cascade record: a restricted solve
        # leaves the record describing a table that no longer exists,
        # and a full solve rebuilds it below when worthwhile.
        self._reuse = None
        if component is None:
            self.stats.solves_full += 1
            flows: list[Flow] | _t.Any = list(self._flows.values())
        else:
            self.stats.solves_restricted += 1
            flows = component
        for flow in flows:
            flow.rate = 0.0
        if not flows:
            return

        # Resources: tx NIC (key ``node``) and rx NIC (key ``num_nodes +
        # node``) per node, plus optionally the aggregate switch (key
        # ``-1``).  Each resource holds one fused ``[remaining capacity,
        # live (unfrozen) flow count, member flows]`` entry.  A round's
        # share scan walks ``entries``, an explicit list in resource
        # first-seen order — the same order the dict view used to yield,
        # now pinned by construction instead of by dict internals.  The
        # arithmetic — the ``cap / count`` sequence, the strict ``<``
        # tie-break, the clamp at zero — matches the naive per-flow form
        # exactly, so the allocation is bit-identical to it.
        link_bandwidth = self.link_bandwidth
        num_nodes = self.num_nodes
        state: dict[int, list[_t.Any]] = {}
        entries: list[list[_t.Any]] = []
        for flow in flows:
            for key in (flow.src, num_nodes + flow.dst):
                entry = state.get(key)
                if entry is None:
                    entry = [link_bandwidth, 1, [flow], len(entries)]
                    state[key] = entry
                    entries.append(entry)
                else:
                    entry[1] += 1
                    entry[2].append(flow)
        has_switch = self.switch_bandwidth is not None
        skey = -1
        if has_switch:
            entry = [
                _t.cast(float, self.switch_bandwidth),
                len(flows),
                list(flows),
                len(entries),
            ]
            state[skey] = entry
            entries.append(entry)

        unfrozen: set[int] = {flow.fid for flow in flows}
        infinity = float("inf")

        if len(entries) > self.waterfill_heap_cutoff:
            # Sub-quadratic fill: a lazy-invalidation min-heap of
            # ``(share, seq, entry)`` candidates replaces the per-round
            # scan.  Every time an entry's ``cap``/``count`` changes a
            # fresh candidate is pushed with the new ``cap / count``, so
            # the heap always holds each live entry's current share;
            # stale candidates are recognized on pop (the stored share
            # no longer equals the entry's current quotient) and
            # dropped.  The first valid pop is therefore the exact
            # ``(share, seq)`` minimum — the same entry the strict-``<``
            # first-seen scan selects, computing the same ``cap /
            # count`` float — so the freeze order, the arithmetic
            # sequence, and the resulting rates are bit-identical to
            # the scan's.  Cost drops from rounds × entries to
            # O((entries + flows) log entries).
            heap = [
                (entry[0] / entry[1], entry[3], entry) for entry in entries
            ]
            _heapify(heap)
            while unfrozen and heap:
                best_share, _, best_entry = _heappop(heap)
                count = best_entry[1]
                if not count or best_entry[0] / count != best_share:
                    continue
                for flow in best_entry[2]:
                    fid = flow.fid
                    if fid not in unfrozen:
                        continue
                    flow.rate = best_share
                    unfrozen.discard(fid)
                    for key in (flow.src, num_nodes + flow.dst):
                        entry = state[key]
                        cap = entry[0] - best_share
                        entry[0] = cap if cap > 0.0 else 0.0
                        count = entry[1] - 1
                        entry[1] = count
                        if count:
                            _heappush(
                                heap, (entry[0] / count, entry[3], entry)
                            )
                    if has_switch:
                        entry = state[skey]
                        cap = entry[0] - best_share
                        entry[0] = cap if cap > 0.0 else 0.0
                        count = entry[1] - 1
                        entry[1] = count
                        if count:
                            _heappush(
                                heap, (entry[0] / count, entry[3], entry)
                            )
        else:
            while unfrozen:
                # Fair share offered by each still-relevant resource.
                best_entry = None
                best_share = infinity
                for entry in entries:
                    count = entry[1]
                    if not count:
                        continue
                    share = entry[0] / count
                    if share < best_share:
                        best_share = share
                        best_entry = entry
                if best_entry is None:
                    break
                for flow in best_entry[2]:
                    fid = flow.fid
                    if fid not in unfrozen:
                        continue
                    flow.rate = best_share
                    unfrozen.discard(fid)
                    for key in (flow.src, num_nodes + flow.dst):
                        entry = state[key]
                        cap = entry[0] - best_share
                        entry[0] = cap if cap > 0.0 else 0.0
                        entry[1] -= 1
                    if has_switch:
                        entry = state[skey]
                        cap = entry[0] - best_share
                        entry[0] = cap if cap > 0.0 else 0.0
                        entry[1] -= 1

        if (
            component is None
            and not has_switch
            and len(flows) >= self.reuse_cutoff
        ):
            # Record the cascade for the single-flow reuse proof: final
            # residual capacity and total member count per resource,
            # plus the largest frozen share (every rate IS its round's
            # share, so the max rate is the max share).
            s_max = 0.0
            for flow in flows:
                if flow.rate > s_max:
                    s_max = flow.rate
            self._reuse = _ReuseState(
                res={key: entry[0] for key, entry in state.items()},
                members={
                    key: len(entry[2]) for key, entry in state.items()
                },
                s_max=s_max,
            )

    def _schedule_wakeup(self) -> None:
        """(Re)arm the timer that fires at the next flow completion.

        The timer is a bare :class:`Timeout` with :meth:`_on_wake` as its
        only callback — no process, no generator.  Rearming cancels the
        previous timer by *removing the callback*: the old timeout stays
        scheduled but dead, which costs nothing at dispatch and is
        exactly the shape the run loop's analytical fast-forward elides
        when it sits at the head of a steady interval.
        """
        waker = self._waker
        if waker is not None:
            callbacks = waker.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._wake_cb)
                except ValueError:  # pragma: no cover - already fired
                    pass
            self._waker = None
        if not self._flows:
            return
        next_dt = float("inf")
        for flow in self._flows.values():
            rate = flow.rate
            if rate > _RATE_EPS:
                dt = flow.remaining / rate
                if dt < next_dt:
                    next_dt = dt
        if next_dt == float("inf"):
            # No flow can progress (should not happen with positive
            # capacities); fail loudly rather than deadlock silently.
            raise SimulationError(
                "network fabric stalled: active flows but zero rates"
            )
        waker = self.env.timeout(max(0.0, next_dt))
        waker.callbacks.append(self._wake_cb)
        self._waker = waker

    def _on_wake(self, _event: Event) -> None:
        """Timer callback: settle and complete any finished flows."""
        self._waker = None
        finished = self._settle_and_find_due()
        if finished is None:
            # Zero elapsed time: the bytes were already accounted by an
            # earlier settle at this instant, so scan the table for the
            # completions that settle may have produced.
            finished = [
                flow
                for flow in self._flows.values()
                if flow.remaining <= _BYTES_EPS
                or (
                    flow.rate > _RATE_EPS
                    and flow.remaining / flow.rate < 1e-9
                )
            ]
        if not finished and self._flows:
            # Floating-point dust: we woke for a completion but rounding
            # left a hair of the payload.  Force-complete the flow that was
            # due, or the wake-up loop would spin on ~zero time steps.
            due = min(
                (f for f in self._flows.values() if f.rate > _RATE_EPS),
                key=lambda f: f.remaining / f.rate,
                default=None,
            )
            if due is not None:
                finished = [due]
        tracer = self.env.tracer
        dirty: list[int] = []
        for flow in finished:
            del self._flows[flow.fid]
            if not self._index_stale:
                self._unindex_flow(flow)
            dirty.append(flow.src)
            dirty.append(self.num_nodes + flow.dst)
            self.stats.flows_completed += 1
            duration = self.env.now - flow.started_at + self.latency
            if tracer.enabled:
                # The span covers wire time up to last-byte arrival; the
                # tracer only records, so tracing never perturbs the sim.
                tracer.transfer(
                    flow.src,
                    flow.dst,
                    flow.size,
                    flow.started_at,
                    self.env.now + self.latency,
                )
            assert flow.done is not None
            # The last byte arrives ``latency`` seconds after it was put on
            # the wire; trigger the completion event with that delay.
            flow.done._ok = True
            flow.done._value = duration
            self.env.schedule(flow.done, delay=self.latency)
        self._reallocate(
            dirty, removed=finished[0] if len(finished) == 1 else None
        )
