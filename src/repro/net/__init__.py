"""Flow-level network fabric.

Models the paper's testbed network — every node connected to a single
(non-blocking, 40GE) switch through a 10 Gbps full-duplex NIC — as a fluid
max-min fair bandwidth-sharing system.  See :mod:`repro.net.fabric`.
"""

from repro.net.fabric import Fabric, FabricStats, Flow

__all__ = ["Fabric", "FabricStats", "Flow"]
