"""Cluster assembly: nodes (GPU + NIC + local storage) on a shared fabric.

A :class:`Cluster` owns the simulation environment, the network fabric and
one :class:`Node` per machine, mirroring the paper's testbed: 8 servers,
one Tesla K40c each, 10 Gbps full-duplex links into a 40GE switch.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ConfigurationError
from repro.hardware.gpu import GpuSpec
from repro.net import Fabric
from repro.sim import Environment, Event, Resource


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Static description of a homogeneous cluster.

    Defaults reproduce the paper's testbed.
    """

    num_nodes: int = 8
    #: Per-direction NIC line rate in bytes/second (10 Gbps).
    link_bandwidth: float = 1.25e9
    #: Fraction of the line rate an application transfer actually gets.
    #: TCP/IP framing, Gloo's chunking, and PyTorch (de)serialization all
    #: eat into the 10 Gbps; ~55% effective goodput is typical for
    #: Gloo-over-TCP on this class of hardware and is what makes
    #: data-parallel VGG training communication-bound in practice.
    network_efficiency: float = 0.55
    #: One-way network latency in seconds.
    latency: float = 50e-6
    gpu: GpuSpec = dataclasses.field(default_factory=GpuSpec)
    #: Optional per-node GPU speed multipliers (1.0 = the nominal GPU).
    #: A factor of 0.5 makes that node's computations take twice as long
    #: — a *permanent* straggler, as opposed to the injected transient
    #: ones.  ``None`` means a homogeneous cluster.
    gpu_speed_factors: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(
                f"cluster needs at least one node: {self.num_nodes}"
            )
        if self.link_bandwidth <= 0:
            raise ConfigurationError(
                f"link bandwidth must be > 0: {self.link_bandwidth}"
            )
        if not 0 < self.network_efficiency <= 1:
            raise ConfigurationError(
                f"network efficiency must be in (0, 1]: "
                f"{self.network_efficiency}"
            )
        if self.gpu_speed_factors is not None:
            if len(self.gpu_speed_factors) != self.num_nodes:
                raise ConfigurationError(
                    f"{len(self.gpu_speed_factors)} speed factors for "
                    f"{self.num_nodes} nodes"
                )
            if any(factor <= 0 for factor in self.gpu_speed_factors):
                raise ConfigurationError(
                    f"speed factors must be > 0: {self.gpu_speed_factors}"
                )

    def speed_factor(self, node_id: int) -> float:
        """GPU speed multiplier of one node (1.0 when homogeneous)."""
        if self.gpu_speed_factors is None:
            return 1.0
        return self.gpu_speed_factors[node_id]

    @property
    def effective_bandwidth(self) -> float:
        """Application-level goodput per NIC direction, bytes/second."""
        return self.link_bandwidth * self.network_efficiency


class Node:
    """One machine: a GPU (exclusive-use resource) and fabric endpoints."""

    def __init__(self, cluster: "Cluster", node_id: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.gpu_spec = cluster.spec.gpu
        #: Relative GPU speed; compute durations are divided by this.
        self.speed_factor = cluster.spec.speed_factor(node_id)
        #: Kernels execute one at a time per GPU.
        self._gpu = Resource(cluster.env, capacity=1)
        #: Cumulative seconds the GPU spent computing (for utilization).
        self.busy_time: float = 0.0
        #: Extra seconds added to the *next* computations on this node;
        #: consumed by straggler injectors.
        self._pending_delay: float = 0.0

    def __repr__(self) -> str:
        return f"<Node {self.node_id}>"

    @property
    def env(self) -> Environment:
        return self.cluster.env

    # -- straggler hook -------------------------------------------------------

    def add_delay(self, seconds: float) -> None:
        """Inject a straggler delay consumed by the next GPU computation.

        This mirrors the paper's methodology ("add sleeping delays to
        workers, so as to prolong their computation time").
        """
        if seconds < 0:
            raise ConfigurationError(f"delay must be >= 0: {seconds}")
        self._pending_delay += seconds

    def take_pending_delay(self) -> float:
        """Consume and return any injected delay (used by ``compute``)."""
        delay, self._pending_delay = self._pending_delay, 0.0
        return delay

    # -- compute ----------------------------------------------------------------

    def compute(self, seconds: float):
        """Process generator: occupy the GPU for ``seconds`` (+ any injected
        straggler delay).  Yields until the computation finishes.
        """
        if seconds < 0:
            raise ConfigurationError(f"compute time must be >= 0: {seconds}")
        with self._gpu.request() as req:
            yield req
            total = seconds / self.speed_factor + self.take_pending_delay()
            self.busy_time += total
            started = self.env.now
            try:
                yield self.env.timeout(total)
            except BaseException:
                # Interrupted mid-kernel (worker crash): only the time
                # actually spent counts toward GPU utilization.
                self.busy_time -= total - (self.env.now - started)
                raise

    # -- network ------------------------------------------------------------------

    def send(self, dst: int, size: float) -> Event:
        """Start a transfer to node ``dst``; returns its completion event."""
        return self.cluster.fabric.transfer(self.node_id, dst, size)


class Cluster:
    """Environment + fabric + nodes for one simulated experiment."""

    def __init__(
        self,
        spec: ClusterSpec | None = None,
        env: Environment | None = None,
    ) -> None:
        self.spec = spec or ClusterSpec()
        #: A cluster normally owns its environment; ``repro.cluster``
        #: passes a shared one so many job clusters tick on one clock.
        self.env = env if env is not None else Environment()
        self.fabric = Fabric(
            self.env,
            num_nodes=self.spec.num_nodes,
            link_bandwidth=self.spec.effective_bandwidth,
            latency=self.spec.latency,
        )
        self.nodes = [Node(self, i) for i in range(self.spec.num_nodes)]

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} t={self.env.now:.3f}>"

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> _t.Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def utilization(self) -> list[float]:
        """Per-node GPU busy fraction since time zero."""
        if self.env.now == 0:
            return [0.0] * len(self.nodes)
        return [node.busy_time / self.env.now for node in self.nodes]
