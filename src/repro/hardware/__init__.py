"""Hardware models: GPU saturation/memory model, nodes, clusters."""

from repro.hardware.cluster import Cluster, ClusterSpec, Node
from repro.hardware.gpu import GpuSpec

__all__ = ["Cluster", "ClusterSpec", "GpuSpec", "Node"]
