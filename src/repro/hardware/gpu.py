"""Analytic GPU model with batch-size saturation and a memory envelope.

The model reproduces the paper's central hardware observation (Fig. 1):
training throughput rises roughly linearly with batch size up to a
layer-shape-dependent *threshold batch size*, then flattens.  We model a
layer's kernels as saturating the GPU once the launch carries enough work,
where "enough" is the earlier of two conditions:

* **FLOP saturation** — the launch performs at least ``saturation_flops``
  of forward work (large-k convolutions hit this first);
* **element saturation** — the launch produces at least
  ``saturation_elements`` output elements to parallelize over (input-stem
  convolutions with few channels hit this first).

The per-layer *threshold batch size* (the knee of the throughput curve) is

    b*(layer) = min(saturation_flops / fwd_flops_per_sample,
                    saturation_elements / out_elements_per_sample)

and the forward+backward time at batch ``b`` is

    time(layer, b) = kernel_overhead
                   + 3 * fwd_flops_per_sample * max(b, b*) / peak_flops.

One pair of constants reproduces every anchor the paper publishes for the
Tesla K40c (Fig. 1 / Fig. 5 / footnotes 12-14):

======================  =================  ===============  ==========
layer (paper)           fwd FLOPs/sample   out elements     paper knee
======================  =================  ===============  ==========
CONV (64,64,224,224)    3.70 GFLOP         3.21 M           16
CONV (128,128,112,112)  3.70 GFLOP         1.61 M           ~16
CONV (512,512,14,14)    0.925 GFLOP        0.10 M           64
FC (4096,4096)          0.0336 GFLOP       4096             ~2048
======================  =================  ===============  ==========

With ``saturation_flops = 60 GFLOP`` and ``saturation_elements = 50 M``
the power-of-two profiled thresholds land exactly on 16 / 16 / 64 / 2048.

The memory envelope reproduces the paper's footnote 3 ("while training a
complete VGG19 model ... the batch size larger than 32 has exceeded the
GPU memory" on a 12 GB K40c): parameters are held three times (weights,
gradients, optimizer state) and activations three times (forward
activations kept for backward, their gradients, and scratch).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import CapacityError, ConfigurationError
from repro.models import BYTES_PER_FLOAT, LayerProfile

#: Forward+backward work as a multiple of forward work.
_TRAIN_FLOP_FACTOR = 3.0

#: Copies of the parameter tensor resident during training
#: (weights + gradients + SGD momentum).
_PARAM_RESIDENCY = 3.0

#: Copies of each activation tensor resident during training
#: (forward value + gradient + scratch).
_ACTIVATION_RESIDENCY = 3.0


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU.

    Defaults model the paper's NVIDIA Tesla K40c (12 GB).
    ``peak_flops`` is the *sustained* training throughput, not the
    datasheet peak; ~1.5 TFLOP/s is a typical convnet-sustained figure for
    the K40c's 4.29 TFLOP/s peak.
    """

    name: str = "tesla-k40c"
    peak_flops: float = 1.5e12
    memory_bytes: float = 12e9
    saturation_flops: float = 60e9
    saturation_elements: float = 50e6
    #: Fixed launch/framework overhead per layer kernel, seconds.  Also
    #: absorbs the paper's "virtual layer" hook overhead.
    kernel_overhead: float = 2e-4
    #: Memory reserved for the framework/cuDNN workspace, bytes.
    workspace_bytes: float = 0.5e9

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.memory_bytes <= 0:
            raise ConfigurationError(
                f"GPU {self.name!r}: peak_flops and memory_bytes must be > 0"
            )
        if (
            self.saturation_flops < 0
            or self.saturation_elements < 0
            or self.kernel_overhead < 0
        ):
            raise ConfigurationError(
                f"GPU {self.name!r}: saturation/overhead must be >= 0"
            )

    # -- saturation ---------------------------------------------------------

    def knee_batch(
        self, fwd_flops_per_sample: float, out_elements_per_sample: int
    ) -> float:
        """Continuous threshold batch size for a layer shape."""
        knee = float("inf")
        if fwd_flops_per_sample > 0 and self.saturation_flops > 0:
            knee = self.saturation_flops / fwd_flops_per_sample
        if out_elements_per_sample > 0 and self.saturation_elements > 0:
            knee = min(
                knee, self.saturation_elements / out_elements_per_sample
            )
        return max(1.0, knee) if knee != float("inf") else 1.0

    # -- compute ---------------------------------------------------------------

    def layer_train_time(self, profile: LayerProfile, batch: int) -> float:
        """Seconds to run forward+backward for one layer at ``batch``."""
        return self._layer_time(profile, batch, _TRAIN_FLOP_FACTOR)

    def layer_forward_time(self, profile: LayerProfile, batch: int) -> float:
        """Seconds to run only the forward pass of one layer."""
        return self._layer_time(profile, batch, 1.0)

    def layer_backward_time(self, profile: LayerProfile, batch: int) -> float:
        """Seconds to run only the backward pass of one layer."""
        return self._layer_time(profile, batch, _TRAIN_FLOP_FACTOR - 1.0)

    def _layer_time(
        self, profile: LayerProfile, batch: int, flop_factor: float
    ) -> float:
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1: {batch}")
        knee = self.knee_batch(
            profile.forward_flops, profile.activation_floats
        )
        effective_batch = max(float(batch), knee)
        return (
            self.kernel_overhead
            + flop_factor
            * profile.forward_flops
            * effective_batch
            / self.peak_flops
        )

    def train_time(
        self, profiles: _t.Sequence[LayerProfile], batch: int
    ) -> float:
        """Seconds to train (fwd+bwd) a stack of layers at ``batch``.

        Saturation applies per layer kernel, which is what makes deep
        narrow layers need large batches while wide early layers saturate
        at small ones.
        """
        return sum(self.layer_train_time(p, batch) for p in profiles)

    def forward_time(
        self, profiles: _t.Sequence[LayerProfile], batch: int
    ) -> float:
        """Seconds for only the forward pass of a stack of layers."""
        return sum(self.layer_forward_time(p, batch) for p in profiles)

    def backward_time(
        self, profiles: _t.Sequence[LayerProfile], batch: int
    ) -> float:
        """Seconds for only the backward pass of a stack of layers."""
        return sum(self.layer_backward_time(p, batch) for p in profiles)

    def layer_throughput(self, profile: LayerProfile, batch: int) -> float:
        """Training throughput (samples/s) for a single layer — Fig. 1."""
        return batch / self.layer_train_time(profile, batch)

    # -- memory -------------------------------------------------------------------

    def memory_required(
        self,
        profiles: _t.Sequence[LayerProfile],
        batch: int,
        input_floats: int = 0,
    ) -> float:
        """Bytes of GPU memory needed to train ``profiles`` at ``batch``."""
        param_bytes = sum(p.param_bytes for p in profiles)
        act_bytes = sum(p.activation_bytes for p in profiles)
        return (
            self.workspace_bytes
            + _PARAM_RESIDENCY * param_bytes
            + _ACTIVATION_RESIDENCY * act_bytes * batch
            + input_floats * BYTES_PER_FLOAT * batch
        )

    def fits(
        self,
        profiles: _t.Sequence[LayerProfile],
        batch: int,
        input_floats: int = 0,
    ) -> bool:
        """Whether training ``profiles`` at ``batch`` fits in GPU memory."""
        return (
            self.memory_required(profiles, batch, input_floats)
            <= self.memory_bytes
        )

    def max_batch(
        self,
        profiles: _t.Sequence[LayerProfile],
        input_floats: int = 0,
        limit: int = 1 << 20,
    ) -> int:
        """Largest batch that fits in memory (0 if even batch 1 does not)."""
        if not self.fits(profiles, 1, input_floats):
            return 0
        high = 1
        while high < limit and self.fits(profiles, high * 2, input_floats):
            high *= 2
        low = high
        high = min(high * 2, limit)
        while low < high:
            mid = (low + high + 1) // 2
            if self.fits(profiles, mid, input_floats):
                low = mid
            else:
                high = mid - 1
        return low

    def require_fits(
        self,
        profiles: _t.Sequence[LayerProfile],
        batch: int,
        input_floats: int = 0,
    ) -> None:
        """Raise :class:`CapacityError` unless the workload fits."""
        needed = self.memory_required(profiles, batch, input_floats)
        if needed > self.memory_bytes:
            raise CapacityError(
                f"GPU {self.name!r}: batch {batch} needs "
                f"{needed / 1e9:.2f} GB > {self.memory_bytes / 1e9:.2f} GB"
            )
