"""Deterministic discrete-event simulation kernel.

This package is the substrate for every experiment in the Fela
reproduction: the token server, the workers, and all baselines run as
generator-based :class:`Process` objects on an :class:`Environment`.

Quick example::

    from repro.sim import Environment

    def clock(env, results):
        while env.now < 3:
            results.append(env.now)
            yield env.timeout(1)

    env = Environment()
    ticks = []
    env.process(clock(env, ticks))
    env.run()
    assert ticks == [0, 1, 2]
"""

from repro.sim.core import Environment, Infinity
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import (
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Infinity",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
