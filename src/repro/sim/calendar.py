"""Calendar event queue: a "now" bucket plus an overflow heap.

The environment's scheduling workload is sharply bimodal.  Positive-delay
events (timeouts, transfer completions) arrive in essentially random time
order and genuinely need a priority queue.  Delay-zero events (process
resumptions, ``succeed``/``fail`` triggers, condition firings) are appended
at the *current* simulation time with a strictly increasing sequence
number, which means they already arrive in sorted ``(time, priority, seq)``
order — pushing them through a binary heap pays ``O(log n)`` twice for
entries that a plain FIFO would serve in ``O(1)``.

:class:`CalendarQueue` therefore keeps a degenerate calendar: one
zero-width "today" bucket for delay-zero events — split into an URGENT and
a NORMAL lane so each lane stays lexicographically monotone — and a binary
heap for everything in the future.  Popping takes the minimum of the three
heads under the usual ``(time, priority, seq)`` tuple order.

Correctness rests on two invariants, both enforced by the environment:

* simulation time never decreases, and sequence numbers strictly
  increase, so appends to each lane are monotone non-decreasing and the
  lane head is always the lane minimum;
* every pending entry lives in exactly one of the three structures, so
  the minimum of the three heads is the global minimum.

Under that ordering the pop sequence is *identical* to a single global
binary heap (see ``tests/sim/test_calendar_queue.py`` for the randomized
differential proof), which is what keeps the repository's bit-identical
determinism pins intact.

On bucket width: a classic calendar queue sizes buckets to the mean
inter-event gap and sorts within a bucket on demand.  Profiling the perf
lab's scenarios shows the same-time cascade (delay ``== 0``) is the only
bucket dense enough to matter — macro scenarios schedule ~30% of their
events at the current instant — while positive delays are spread thinly
enough that any bucket wider than zero would just re-implement the heap
inside each bucket.  Hence the width-zero heuristic: *today* is a FIFO,
*tomorrow* is a heap.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from heapq import heappop, heappush

#: Entries are ``(time, priority, sequence, payload)`` — the exact tuple
#: shape the environment has always heap-ordered.
Entry = _t.Tuple[float, int, int, _t.Any]

_INFINITY = float("inf")


class CalendarQueue:
    """Priority queue with an O(1) fast lane for current-time events.

    ``urgent``/``normal`` are the delay-zero lanes (priority 0 and 1);
    ``future`` is a binary heap of positive-delay entries.  Hot paths in
    the kernel append/pop these attributes directly; this class is the
    reference interface and the home of the non-inlined operations.
    """

    __slots__ = ("urgent", "normal", "future")

    def __init__(self) -> None:
        self.urgent: _t.Deque[Entry] = deque()
        self.normal: _t.Deque[Entry] = deque()
        self.future: list[Entry] = []

    def __len__(self) -> int:
        return len(self.urgent) + len(self.normal) + len(self.future)

    def __bool__(self) -> bool:
        return bool(self.urgent or self.normal or self.future)

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue urgent={len(self.urgent)} "
            f"normal={len(self.normal)} future={len(self.future)}>"
        )

    def push(self, entry: Entry, immediate: bool = False) -> None:
        """Add ``entry`` to the queue.

        ``immediate`` routes the entry to its priority lane; the caller
        guarantees lane appends are monotone non-decreasing (true for the
        environment, whose clock never runs backwards and whose sequence
        numbers strictly increase).  Non-immediate entries go to the heap,
        which accepts any order.
        """
        if immediate:
            lane = self.normal if entry[1] else self.urgent
            if lane and entry < lane[-1]:
                # A non-monotone append would corrupt the lane-head-is-min
                # invariant; fall back to the always-correct heap.
                heappush(self.future, entry)
            else:
                lane.append(entry)
        else:
            heappush(self.future, entry)

    def peek_time(self) -> float:
        """Time of the next entry, or ``inf`` when empty."""
        time = _INFINITY
        if self.urgent:
            time = self.urgent[0][0]
        if self.normal and self.normal[0][0] < time:
            time = self.normal[0][0]
        if self.future and self.future[0][0] < time:
            time = self.future[0][0]
        return time

    def pop(self) -> Entry:
        """Remove and return the smallest entry; ``IndexError`` if empty."""
        urgent, normal, future = self.urgent, self.normal, self.future
        best: Entry | None = urgent[0] if urgent else None
        source: _t.Any = urgent
        if normal and (best is None or normal[0] < best):
            best = normal[0]
            source = normal
        if future and (best is None or future[0] < best):
            best = future[0]
            source = future
        if best is None:
            raise IndexError("pop from an empty CalendarQueue")
        if source is future:
            return heappop(future)
        return source.popleft()  # type: ignore[no-any-return]
