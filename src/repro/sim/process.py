"""Generator-based simulation processes.

A *process function* is a generator function that yields
:class:`~repro.sim.events.Event` objects.  Wrapping it in :class:`Process`
registers it with the environment; the process runs until its generator
returns (the return value becomes the process's event value) or raises.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.events import (
    PENDING,
    URGENT,
    Event,
    Initialize,
    Interrupt,
    Interruption,
    Timeout,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

#: Type alias for the generators accepted by :class:`Process`.
ProcessGenerator = _t.Generator[Event, _t.Any, _t.Any]


class Process(Event):
    """An event-yielding generator registered with an environment.

    A ``Process`` is itself an :class:`Event` that triggers when the
    generator terminates, so processes can wait for each other simply by
    yielding the other process.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator; did you forget to call "
                "the process function?"
            )
        super().__init__(env)
        self._generator = generator
        #: One bound method reused for every subscription this process
        #: ever makes (binding ``self._resume`` afresh per wait is pure
        #: allocator churn on the hottest path).
        self._resume_cb = self._resume
        #: The event this process currently waits on (``None`` while active).
        self._target: Event | None = Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process({self.name}) at {hex(id(self))}>"

    @property
    def name(self) -> str:
        """The name of the wrapped generator function."""
        return getattr(self._generator, "__name__", str(self._generator))

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event the process currently waits on, if any."""
        return self._target

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered as an urgent event, so it takes effect at
        the current simulation time but not re-entrantly.  Interrupting a
        terminated process is an error.
        """
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``.

        This is the hottest frame in every simulation (it runs once per
        process wake-up), so the generator, environment, and resume
        callback are cached in locals, and process termination appends
        straight to the calendar queue's URGENT lane — the same entry
        ``env.schedule(self, priority=URGENT)`` would push, minus the
        call overhead.
        """
        env = self.env
        generator = self._generator
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The exception is now being handed to the process; the
                    # process becomes responsible for it.
                    event._defused = True
                    next_event = generator.throw(
                        _t.cast(BaseException, event._value)
                    )
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                eid = env._eid
                env._eid = eid + 1
                env._queue.urgent.append((env._now, URGENT, eid, self))
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                # Attach a hint about which process died for debuggability.
                if not getattr(exc, "__repro_process__", None):
                    exc.__repro_process__ = self.name  # type: ignore[attr-defined]
                eid = env._eid
                env._eid = eid + 1
                env._queue.urgent.append((env._now, URGENT, eid, self))
                break

            # ``__class__ is Event/Timeout`` catches the overwhelmingly
            # common yields without the full isinstance scan.
            cls = next_event.__class__
            if cls is not Event and cls is not Timeout and not isinstance(
                next_event, Event
            ):
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                try:
                    generator.throw(error)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                    env.schedule(self, priority=URGENT)
                    break
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    env.schedule(self, priority=URGENT)
                    break
                continue

            callbacks = next_event.callbacks
            if callbacks is not None:
                # The event has not been processed yet: subscribe and pause.
                callbacks.append(self._resume_cb)
                self._target = next_event
                break

            # The event was already processed; feed its value immediately.
            event = next_event

        self._target = None if self._value is not PENDING else self._target
        env._active_proc = None
