"""Shared-resource primitives for the simulation kernel.

Three families are provided, mirroring the classic DES toolkit:

* :class:`Resource` / :class:`PriorityResource` — a server with limited
  capacity; processes ``yield resource.request()`` and later ``release()``.
* :class:`Store` / :class:`FilterStore` — an unbounded-or-bounded buffer of
  Python objects with ``put`` / ``get`` events.
* :class:`Container` — a continuous quantity (e.g. bytes of GPU memory) with
  amount-based ``put`` / ``get``.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment


class _BaseRequest(Event):
    """Common machinery for resource/store/container request events."""

    def __init__(self, owner: "_BaseFacility") -> None:
        super().__init__(owner.env)
        self.owner = owner

    def cancel(self) -> None:
        """Withdraw an unfulfilled request from its wait queue."""
        if not self.triggered:
            self.owner._remove_waiter(self)


class _BaseFacility:
    """Base class handling the put/get trigger loop shared by facilities."""

    def __init__(self, env: "Environment") -> None:
        self.env = env

    def _remove_waiter(self, request: _BaseRequest) -> None:
        raise NotImplementedError

    def _trigger_waiters(self) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Resource


class Request(_BaseRequest):
    """Request event for :class:`Resource`; usable as a context manager."""

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        self.priority = priority
        #: Insertion order, for FIFO tie-breaking within a priority level.
        self.seq = resource._next_seq()
        super().__init__(resource)
        resource._queue_request(self)
        resource._trigger_waiters()

    @property
    def resource(self) -> "Resource":
        return _t.cast("Resource", self.owner)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()

    def _sort_key(self) -> tuple[float, int]:
        return (self.priority, self.seq)


class Resource(_BaseFacility):
    """A server pool with fixed integer capacity and FIFO admission."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        super().__init__(env)
        self._capacity = capacity
        self._users: set[Request] = set()
        self._waiters: list[tuple[tuple[float, int], Request]] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for admission."""
        return len(self._waiters)

    def request(self, priority: float = 0.0) -> Request:
        """Request one unit of capacity.

        Lower ``priority`` values are admitted first; ties are FIFO.
        """
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a previously granted request."""
        if request not in self._users:
            raise SimulationError(
                f"{request!r} does not hold {self!r} and cannot release it"
            )
        self._users.remove(request)
        self._trigger_waiters()

    def _queue_request(self, request: Request) -> None:
        heappush(self._waiters, (request._sort_key(), request))

    def _remove_waiter(self, request: _BaseRequest) -> None:
        self._waiters = [
            (key, req) for key, req in self._waiters if req is not request
        ]
        import heapq

        heapq.heapify(self._waiters)

    def _trigger_waiters(self) -> None:
        while self._waiters and len(self._users) < self._capacity:
            _, request = heappop(self._waiters)
            self._users.add(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose ``request(priority=…)`` is the main API.

    Functionally identical to :class:`Resource`; exists for expressiveness at
    call sites that schedule by priority.
    """


# ---------------------------------------------------------------------------
# Store


class StorePut(_BaseRequest):
    """Put event for :class:`Store`."""

    def __init__(self, store: "Store", item: _t.Any) -> None:
        self.item = item
        super().__init__(store)
        store._put_queue.append(self)
        store._trigger_waiters()


class StoreGet(_BaseRequest):
    """Get event for :class:`Store`; the event value is the item."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store)
        store._get_queue.append(self)
        store._trigger_waiters()


class FilterStoreGet(StoreGet):
    """Get event for :class:`FilterStore` with an item predicate."""

    def __init__(
        self,
        store: "Store",
        predicate: _t.Callable[[_t.Any], bool],
    ) -> None:
        self.predicate = predicate
        super().__init__(store)


class Store(_BaseFacility):
    """A FIFO buffer of arbitrary items with optional capacity."""

    def __init__(
        self, env: "Environment", capacity: float = float("inf")
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be > 0: {capacity}")
        super().__init__(env)
        self._capacity = capacity
        self.items: list[_t.Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: _t.Any) -> StorePut:
        """Queue ``item`` for insertion; fires when space is available."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request the oldest available item."""
        return StoreGet(self)

    def _remove_waiter(self, request: _BaseRequest) -> None:
        if isinstance(request, StorePut):
            self._put_queue = [r for r in self._put_queue if r is not request]
        else:
            self._get_queue = [
                r for r in self._get_queue if r is not request
            ]

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if isinstance(event, FilterStoreGet):
            for index, item in enumerate(self.items):
                if event.predicate(item):
                    del self.items[index]
                    event.succeed(item)
                    return True
            return False
        if self.items:
            event.succeed(self.items.pop(0))
            return True
        return False

    def _trigger_waiters(self) -> None:
        # Alternate put/get passes until neither side can make progress, so
        # a put that frees a blocked get (and vice versa) resolves in one
        # call, at one simulation time.
        progress = True
        while progress:
            progress = False
            for put_event in list(self._put_queue):
                if put_event.triggered:
                    self._put_queue.remove(put_event)
                elif self._do_put(put_event):
                    self._put_queue.remove(put_event)
                    progress = True
                else:
                    break
            for get_event in list(self._get_queue):
                if get_event.triggered:
                    self._get_queue.remove(get_event)
                elif self._do_get(get_event):
                    self._get_queue.remove(get_event)
                    progress = True
                elif not isinstance(get_event, FilterStoreGet):
                    break


class FilterStore(Store):
    """A :class:`Store` whose ``get`` can select items by predicate."""

    def get(  # type: ignore[override]
        self, predicate: _t.Callable[[_t.Any], bool] = lambda item: True
    ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)


# ---------------------------------------------------------------------------
# Container


class ContainerPut(_BaseRequest):
    """Put event for :class:`Container`."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"put amount must be > 0: {amount}")
        self.amount = amount
        super().__init__(container)
        container._put_queue.append(self)
        container._trigger_waiters()


class ContainerGet(_BaseRequest):
    """Get event for :class:`Container`."""

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise SimulationError(f"get amount must be > 0: {amount}")
        self.amount = amount
        super().__init__(container)
        container._get_queue.append(self)
        container._trigger_waiters()


class Container(_BaseFacility):
    """A homogeneous, divisible quantity (fuel-tank semantics)."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"container capacity must be > 0: {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(
                f"initial level {init} outside [0, {capacity}]"
            )
        super().__init__(env)
        self._capacity = capacity
        self._level = init
        self._put_queue: list[ContainerPut] = []
        self._get_queue: list[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; fires when it fits under capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; fires when the level covers it."""
        return ContainerGet(self, amount)

    def _remove_waiter(self, request: _BaseRequest) -> None:
        if isinstance(request, ContainerPut):
            self._put_queue = [r for r in self._put_queue if r is not request]
        else:
            self._get_queue = [r for r in self._get_queue if r is not request]

    def _trigger_waiters(self) -> None:
        progress = True
        while progress:
            progress = False
            for put_event in list(self._put_queue):
                if self._level + put_event.amount <= self._capacity:
                    self._level += put_event.amount
                    self._put_queue.remove(put_event)
                    put_event.succeed()
                    progress = True
                else:
                    break
            for get_event in list(self._get_queue):
                if self._level >= get_event.amount:
                    self._level -= get_event.amount
                    self._get_queue.remove(get_event)
                    get_event.succeed()
                    progress = True
                else:
                    break
