"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation activity is expressed as generator functions that
``yield`` :class:`Event` objects; the :class:`~repro.sim.core.Environment`
drives the event loop and resumes processes when the events they wait on are
processed.

Events move through three states:

``pending``
    Created but not yet scheduled; may still be triggered.
``triggered``
    Given a value (or an exception) and placed on the event queue.
``processed``
    Popped from the queue; all callbacks have run.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush as _heappush

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Environment
    from repro.sim.process import Process

#: Event scheduling priorities.  Lower values are popped first at equal
#: simulation times.  ``URGENT`` is used internally for process resumption
#: so that a process observes the effects of the event that woke it before
#: any same-time ``NORMAL`` events fire.
URGENT: int = 0
NORMAL: int = 1

#: Sentinel for "the event has not been assigned a value yet".
PENDING = object()


class Event:
    """An event that may happen at some point in simulation time.

    Callbacks are plain callables taking the event as the sole argument and
    are invoked in registration order when the event is processed.
    """

    # Events are the single hottest allocation in a run (every timeout,
    # transfer, token hand-off, and process termination mints at least
    # one), so the whole hierarchy is slotted: no per-instance __dict__.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: _t.Any = PENDING
        self._ok: bool = True
        #: Set to ``True`` by :meth:`defused` accessors; a failed event whose
        #: exception is never retrieved is re-raised when processed, so that
        #: errors never pass silently.
        self._defused: bool = False

    def __repr__(self) -> str:
        detail = "" if self._value is PENDING else f" value={self._value!r}"
        return f"<{type(self).__name__}{detail} at {hex(id(self))}>"

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value and is (or was) queued."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The value of the event, or the exception of a failed event."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def defused(self) -> None:
        """Mark a failed event's exception as handled out-of-band."""
        self._defused = True

    # -- triggering -------------------------------------------------------

    # Triggering appends straight to the calendar queue's delay-zero
    # NORMAL lane instead of going through ``env.schedule``: identical
    # entries, identical order (the clock never runs backwards and the
    # sequence number strictly increases, so lane appends stay monotone),
    # one less function call on the hottest mutation in the kernel.

    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._normal.append((env._now, NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() requires an exception, not {exception!r}"
            )
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._normal.append((env._now, NORMAL, eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state (ok/value) of ``event``.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._normal.append((env._now, NORMAL, eid, self))

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay of simulation time."""

    __slots__ = ("_delay",)

    # Timeouts are minted once per simulated wait — the single hottest
    # allocation in the kernel — so ``__init__`` flattens the
    # ``Event.__init__`` + ``env.schedule`` call chain into direct slot
    # assignments and a direct queue insert (same entry tuple, same
    # order; see ``Event.succeed`` for the monotonicity argument).

    def __init__(
        self, env: "Environment", delay: float, value: _t.Any = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        eid = env._eid
        env._eid = eid + 1
        if delay == 0.0:
            env._normal.append((env._now, NORMAL, eid, self))
        else:
            _heappush(env._future, (env._now + delay, NORMAL, eid, self))

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay!r} at {hex(id(self))}>"


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._defused = False
        eid = env._eid
        env._eid = eid + 1
        env._urgent.append((env._now, URGENT, eid, self))


class Interruption(Event):
    """Internal event that throws an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: _t.Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError(
                f"{process!r} has terminated and cannot be interrupted"
            )
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.callbacks = [self._interrupt]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.process = process
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        env._urgent.append((env._now, URGENT, eid, self))

    def _interrupt(self, event: "Event") -> None:
        if self.process.triggered:
            return  # the process terminated before the interrupt fired
        # Unsubscribe the process from whatever it currently waits on; the
        # interrupt supersedes that wait.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume_cb)
            except ValueError:
                pass
        self.process._resume(self)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> _t.Any:
        """The cause passed to ``interrupt()``."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"


class ConditionValue:
    """Result of a :class:`Condition`: an ordered event → value mapping."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> _t.Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self) -> _t.Iterator[Event]:
        return iter(self.events)

    def keys(self) -> list[Event]:
        return list(self.events)

    def values(self) -> list[_t.Any]:
        return [event._value for event in self.events]

    def items(self) -> list[tuple[Event, _t.Any]]:
        return [(event, event._value) for event in self.events]

    def todict(self) -> dict[Event, _t.Any]:
        return dict(self.items())


class Condition(Event):
    """A compound event that triggers when ``evaluate(events, count)`` holds.

    The condition value is a :class:`ConditionValue` of the sub-events that
    had triggered by the time the condition fired, in creation order.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: _t.Callable[[list[Event], int], bool],
        events: _t.Iterable[Event],
    ) -> None:
        # Inlined ``Event.__init__``: conditions are minted once per
        # any_of/all_of round, a hot path in collective-heavy runs.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError(
                    "cannot mix events from different environments"
                )

        # Immediately check already-processed events, then subscribe
        # (one bound method shared across the subscriptions).
        check = self._check
        for event in self._events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)

        # An empty condition is trivially satisfied.
        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue([]))

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defused()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Only events that have actually been processed belong in the
            # value: a Timeout carries its value from creation, so testing
            # ``triggered`` would wrongly include future timeouts.
            fired = [e for e in self._events if e.processed]
            self.succeed(ConditionValue(fired))
        else:
            return
        # The condition just fired (or failed): unsubscribe from the
        # sub-events still in flight.  A leftover ``any_of`` timeout with
        # this callback removed carries no work at all, which is what lets
        # the run loop's analytical fast-forward elide it instead of
        # dispatching an empty pop far in the future.
        check = self._check
        for leftover in self._events:
            callbacks = leftover.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(check)
                except ValueError:
                    pass

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: every sub-event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: at least one sub-event has triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires once all ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once any of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: _t.Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
