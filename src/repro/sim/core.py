"""The discrete-event simulation environment (event loop).

The environment orders events by ``(time, priority, sequence)``.  Ties at
equal time and priority are broken by insertion order, which makes every
simulation in this package fully deterministic.  Storage is a
:class:`~repro.sim.calendar.CalendarQueue`: delay-zero events ride O(1)
FIFO lanes, positive delays go through a binary heap — the pop order is
identical to the single global heap this environment used to keep.
"""

from __future__ import annotations

import typing as _t
from functools import partial as _partial
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.sim.calendar import CalendarQueue
from repro.sim.events import (
    NORMAL,
    PENDING,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

Infinity: float = float("inf")


class EmptySchedule(Exception):
    """Internal signal: the event queue is empty (simulation has ended)."""


class StopSimulation(Exception):
    """Internal signal: the ``until`` event of :meth:`Environment.run` fired."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that ends the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        raise _t.cast(BaseException, event.value)


class Environment:
    """Execution environment for a deterministic discrete-event simulation."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: CalendarQueue = CalendarQueue()
        #: Aliases to the calendar queue's three structures.  The queue
        #: never replaces them, so hot paths (Timeout, succeed, resume)
        #: save one attribute hop per insert by going through these.
        self._urgent = self._queue.urgent
        self._normal = self._queue.normal
        self._future = self._queue.future
        self._eid: int = 0
        self._active_proc: Process | None = None
        # Per-instance C-level constructors shadowing the factory
        # methods below: ``env.timeout(...)`` resolves to a
        # ``functools.partial`` and skips one Python frame per call —
        # measurable, because timeouts dominate every workload.  The
        # class-level methods remain as the documented interface.
        self.timeout = _partial(Timeout, self)
        self.event = _partial(Event, self)
        self.process = _partial(Process, self)
        self.all_of = _partial(AllOf, self)
        self.any_of = _partial(AnyOf, self)
        #: Step monitors (e.g. the invariant checker's clock-monotonicity
        #: probe); called as ``monitor(now, event)`` after each pop.
        self._monitors: list[_t.Callable[[float, Event], None]] = []
        #: Fast-forward gating (see :meth:`run` and :meth:`attach_monitor`).
        #: A monitor attached without a ``next_due`` horizon turns
        #: fast-forward off for the whole environment; monitors that do
        #: declare one contribute a callable to ``_ff_gates`` and dead
        #: events are only elided strictly before the earliest horizon.
        self._ff_enabled: bool = True
        self._ff_gates: list[_t.Callable[[], float]] = []
        #: The tracer observing this environment.  Components (fabric,
        #: token server, workers, collectives) emit through this one
        #: attribute; the default null tracer makes every emission a
        #: no-op, so an untraced simulation pays nothing.
        self.tracer: NullTracer = NULL_TRACER
        #: Analytical fast-forward accounting (see :meth:`run`):
        #: ``ff_intervals`` maximal drain runs, ``ff_elided`` dead events
        #: skipped, ``ff_seconds`` simulated seconds crossed while
        #: draining.  All deterministic for a seeded run.
        self.ff_intervals: int = 0
        self.ff_elided: int = 0
        self.ff_seconds: float = 0.0

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def scheduled_events(self) -> int:
        """Total number of events ever scheduled on this environment.

        Monotonic and deterministic for a seeded run, which makes it the
        natural "work done" figure for benchmark throughput (events/sec).
        """
        return self._eid

    def attach_monitor(
        self,
        monitor: _t.Callable[[float, Event], None],
        next_due: _t.Callable[[], float] | None = None,
    ) -> None:
        """Register a step monitor called as ``monitor(now, event)``.

        Monitors observe every processed event (the invariant checker
        uses one to assert timestamp monotonicity).  They run before the
        event's callbacks and must not mutate simulation state.

        ``next_due`` declares the monitor's *observation horizon*: a
        zero-argument callable returning the earliest simulation time the
        monitor still needs to observe.  The analytical fast-forward in
        :meth:`run` only elides dead events strictly before every
        attached horizon, so a sampler that only acts every ``interval``
        seconds loses nothing.  Omitting ``next_due`` (the conservative
        default) disables fast-forward for this environment entirely —
        the monitor then observes every single pop, exactly as before.
        """
        self._monitors.append(monitor)
        if next_due is None:
            self._ff_enabled = False
        else:
            self._ff_gates.append(next_due)

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """Create a :class:`Timeout` firing after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Register ``generator`` as a new :class:`Process`."""
        return Process(self, generator)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """An event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """An event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` time units."""
        eid = self._eid
        self._eid = eid + 1
        if delay == 0.0:
            self._queue.push((self._now, priority, eid, event), True)
        else:
            heappush(
                self._queue.future, (self._now + delay, priority, eid, event)
            )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when no events remain.
        """
        try:
            self._now, _, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule() from None

        if self._monitors:
            for monitor in self._monitors:
                monitor(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waits on: surface the error loudly.
            exc = _t.cast(BaseException, event._value)
            raise exc

    def run(self, until: Event | float | None = None) -> _t.Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until simulation time reaches that value;
        * an :class:`Event` — run until that event is processed and return
          its value.
        """
        stop_event: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    return stop_event.value
                stop_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at <= self._now:
                    raise SimulationError(
                        f"until ({at}) must be greater than the current "
                        f"simulation time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(StopSimulation.callback)
                self.schedule(stop_event, priority=NORMAL, delay=at - self._now)

        # Inlined form of repeated ``step()`` calls: the run loop is the
        # single hottest frame in every experiment, so the pop/dispatch
        # cycle avoids one method call, one try/except, and repeated
        # attribute loads per event.  Semantics — pop order, monitor
        # hooks, callback handling, failed-event re-raise — are identical
        # to :meth:`step`.  The three-way head compare below is
        # ``CalendarQueue.pop`` unrolled: each lane is internally sorted,
        # so the smallest of the three heads is the global minimum, and
        # when both lanes are empty the only cost over a bare heap is two
        # truthiness checks.
        queue = self._queue
        urgent = queue.urgent
        normal = queue.normal
        future = queue.future
        pop_urgent = urgent.popleft
        pop_normal = normal.popleft
        monitors = self._monitors
        # Analytical fast-forward state, read once per run() call (attach
        # monitors before running).  ``ff_enabled`` is False as soon as
        # any monitor without a horizon is attached.
        ff_enabled = self._ff_enabled
        ff_gates = self._ff_gates
        try:
            while True:
                if urgent:
                    entry = urgent[0]
                    if normal and normal[0] < entry:
                        if future and future[0] < normal[0]:
                            entry = heappop(future)
                        else:
                            entry = pop_normal()
                    elif future and future[0] < entry:
                        entry = heappop(future)
                    else:
                        entry = pop_urgent()
                elif normal:
                    if future and future[0] < normal[0]:
                        entry = heappop(future)
                    else:
                        entry = pop_normal()
                elif future:
                    # Analytical fast-forward.  With both FIFO lanes
                    # empty, the heap head is the entire near future.  A
                    # *dead* head — an event with no callbacks left and
                    # nothing to re-raise (``ok`` or defused) — is pure
                    # bookkeeping: dispatching it runs no user code and
                    # only advances the clock.  Interrupted fabric-waker
                    # timeouts and leftover ``any_of`` timers are the two
                    # producers.  Drain every consecutive dead head in
                    # one pass, advancing ``_now`` through each elided
                    # timestamp so end times and every later timestamp
                    # are bit-identical to the event-by-event schedule.
                    # Monitors with a declared horizon cap the drain at
                    # their earliest ``next_due()``; the interval is
                    # steady (no lane entries, dead head), so horizons
                    # cannot move while draining.
                    entry = heappop(future)
                    if ff_enabled:
                        event = entry[3]
                        if not event.callbacks and (
                            event._ok or event._defused
                        ):
                            limit = Infinity
                            for gate in ff_gates:
                                due = gate()
                                if due < limit:
                                    limit = due
                            if entry[0] < limit:
                                start = self._now
                                self._now = entry[0]
                                event.callbacks = None
                                elided = 1
                                while future:
                                    head = future[0]
                                    event = head[3]
                                    if (
                                        head[0] < limit
                                        and not event.callbacks
                                        and (event._ok or event._defused)
                                    ):
                                        heappop(future)
                                        self._now = head[0]
                                        event.callbacks = None
                                        elided += 1
                                    else:
                                        break
                                self.ff_intervals += 1
                                self.ff_elided += elided
                                self.ff_seconds += self._now - start
                                if future:
                                    continue
                                break
                else:
                    break
                self._now, _, _, event = entry

                if monitors:
                    now = self._now
                    for monitor in monitors:
                        monitor(now, event)

                callbacks = event.callbacks
                event.callbacks = None
                assert callbacks is not None, "event processed twice"
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    # A failed event nobody waits on: surface it loudly.
                    raise _t.cast(BaseException, event._value)
        except StopSimulation as stop:
            return stop.args[0]
        if stop_event is not None and stop_event._value is PENDING:
            raise SimulationError(
                f"no scheduled events left but {stop_event!r} was not "
                "triggered; the simulation deadlocked"
            )
        return None
