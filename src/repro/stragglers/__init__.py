"""Straggler injection (paper Section V-C2)."""

from repro.stragglers.injector import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
    StragglerInjector,
    TransientStraggler,
)

__all__ = [
    "NoStraggler",
    "ProbabilityStraggler",
    "RoundRobinStraggler",
    "StragglerInjector",
    "TransientStraggler",
]
