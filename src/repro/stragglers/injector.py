"""Straggler injectors, following the paper's methodology (Section V-C2).

"We follow the method in [10], [11] to generate straggler effect and add
sleeping delays to workers, so as to prolong their computation time."

A delay of ``d`` seconds for worker ``w`` in iteration ``k`` means the
worker may not *start computing* until ``d`` seconds into the iteration —
its inputs may still arrive meanwhile.  This matches the paper's analysis
of MP under stragglers ("the sleeping delay just overlaps with the
original idle time").

Two published scenarios plus one for the transient-straggler discussion:

* :class:`RoundRobinStraggler` — worker ``k mod N`` is slowed by ``d``
  seconds in iteration ``k``.
* :class:`ProbabilityStraggler` — every worker is independently slowed by
  ``d`` seconds with probability ``p``, per iteration (seeded RNG).
* :class:`TransientStraggler` — stragglers switch rapidly: a random subset
  is hit each iteration, with hit lengths of only 1-2 iterations, the
  regime where proactive periodic re-partitioning misfires (III-C).
"""

from __future__ import annotations

import abc
import random

from repro.errors import ConfigurationError


class StragglerInjector(abc.ABC):
    """Produces per-worker start delays for each iteration."""

    @abc.abstractmethod
    def delays(self, iteration: int, num_workers: int) -> list[float]:
        """Start delays (seconds) per worker for ``iteration``."""

    @property
    def name(self) -> str:
        return type(self).__name__


class NoStraggler(StragglerInjector):
    """The non-straggler scenario."""

    def delays(self, iteration: int, num_workers: int) -> list[float]:
        return [0.0] * num_workers


class RoundRobinStraggler(StragglerInjector):
    """Worker ``k mod N`` is slowed by ``d`` seconds in iteration ``k``."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0: {delay}")
        self.delay = float(delay)

    def delays(self, iteration: int, num_workers: int) -> list[float]:
        result = [0.0] * num_workers
        result[iteration % num_workers] = self.delay
        return result


class ProbabilityStraggler(StragglerInjector):
    """Each worker straggles with probability ``p`` each iteration."""

    def __init__(self, probability: float, delay: float, seed: int = 0) -> None:
        if not 0 <= probability <= 1:
            raise ConfigurationError(
                f"probability must be in [0, 1]: {probability}"
            )
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0: {delay}")
        self.probability = float(probability)
        self.delay = float(delay)
        self.seed = seed

    def delays(self, iteration: int, num_workers: int) -> list[float]:
        # Deterministic per (seed, iteration): comparative runs of
        # different runtimes see the *same* straggler pattern, which is
        # what makes AT comparisons meaningful.
        rng = random.Random(self.seed * 1_000_003 + iteration)
        return [
            self.delay if rng.random() < self.probability else 0.0
            for _ in range(num_workers)
        ]


class TransientStraggler(StragglerInjector):
    """Rapidly switching stragglers (the paper's transient regime).

    Each iteration, ``hits`` distinct workers are slowed; the afflicted
    set is re-drawn every ``persistence`` iterations, so a straggler
    rarely stays a straggler — the case where delayed proactive
    re-distribution backfires (Section III-C).
    """

    def __init__(
        self,
        delay: float,
        hits: int = 1,
        persistence: int = 1,
        seed: int = 0,
    ) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0: {delay}")
        if hits < 0:
            raise ConfigurationError(f"hits must be >= 0: {hits}")
        if persistence < 1:
            raise ConfigurationError(
                f"persistence must be >= 1: {persistence}"
            )
        self.delay = float(delay)
        self.hits = hits
        self.persistence = persistence
        self.seed = seed

    def delays(self, iteration: int, num_workers: int) -> list[float]:
        epoch = iteration // self.persistence
        rng = random.Random(self.seed * 1_000_003 + epoch)
        afflicted = rng.sample(
            range(num_workers), min(self.hits, num_workers)
        )
        result = [0.0] * num_workers
        for wid in afflicted:
            result[wid] = self.delay
        return result
