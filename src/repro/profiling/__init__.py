"""Threshold-batch-size profiling (paper Fig. 1 / Fig. 5)."""

from repro.profiling.profiler import (
    DEFAULT_BATCH_SWEEP,
    DEFAULT_SATURATION_FRACTION,
    ShapeProfile,
    SweepPoint,
    ThroughputProfiler,
)

__all__ = [
    "DEFAULT_BATCH_SWEEP",
    "DEFAULT_SATURATION_FRACTION",
    "ShapeProfile",
    "SweepPoint",
    "ThroughputProfiler",
]
