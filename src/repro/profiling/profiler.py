"""Threshold-batch-size profiling (paper Fig. 1 and Fig. 5).

The paper measures, per layer *shape*, the training throughput at a sweep
of batch sizes and extracts the smallest batch that reaches the maximum
throughput — the *threshold batch size*.  The measurement is "executed
once and for all" and stored in a repository keyed by shape, so other
tasks reuse it (paper footnote 11).  :class:`ThroughputProfiler` is that
repository, backed by the analytic GPU model instead of a physical K40c.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from repro.errors import ConfigurationError
from repro.hardware import GpuSpec
from repro.models import LayerProfile, ModelGraph

#: Default batch sweep: powers of two, the granularity the paper profiles at.
DEFAULT_BATCH_SWEEP: tuple[int, ...] = tuple(2**i for i in range(14))  # 1..8192

#: A layer is "saturated" at the smallest batch whose throughput reaches
#: this fraction of the sweep's maximum.
DEFAULT_SATURATION_FRACTION: float = 0.95


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One measurement of a throughput-vs-batch sweep."""

    batch: int
    throughput: float  # samples / second
    train_time: float  # seconds per batch


@dataclasses.dataclass(frozen=True)
class ShapeProfile:
    """Profiling result for one layer shape."""

    signature: tuple
    sweep: tuple[SweepPoint, ...]
    threshold_batch: int
    max_throughput: float


class ThroughputProfiler:
    """Per-shape throughput profiler with a memoizing repository."""

    def __init__(
        self,
        gpu: GpuSpec | None = None,
        batch_sweep: _t.Sequence[int] = DEFAULT_BATCH_SWEEP,
        saturation_fraction: float = DEFAULT_SATURATION_FRACTION,
    ) -> None:
        if not batch_sweep:
            raise ConfigurationError("batch sweep must not be empty")
        if sorted(batch_sweep) != list(batch_sweep):
            raise ConfigurationError("batch sweep must be ascending")
        if not 0 < saturation_fraction <= 1:
            raise ConfigurationError(
                f"saturation fraction must be in (0, 1]: {saturation_fraction}"
            )
        self.gpu = gpu or GpuSpec()
        self.batch_sweep = tuple(int(b) for b in batch_sweep)
        self.saturation_fraction = saturation_fraction
        self._repository: dict[tuple, ShapeProfile] = {}

    # -- profiling ------------------------------------------------------------

    def profile_layer(self, profile: LayerProfile) -> ShapeProfile:
        """Profile one layer, reusing the repository when the shape is known.

        Ignores GPU memory limits on purpose: the paper profiles layers in
        isolation, where even large batches of a single layer fit.
        """
        cached = self._repository.get(profile.shape_signature)
        if cached is not None:
            return cached

        sweep = tuple(
            SweepPoint(
                batch=batch,
                throughput=self.gpu.layer_throughput(profile, batch),
                train_time=self.gpu.layer_train_time(profile, batch),
            )
            for batch in self.batch_sweep
        )
        max_throughput = max(point.throughput for point in sweep)
        threshold = sweep[-1].batch
        for point in sweep:
            if point.throughput >= self.saturation_fraction * max_throughput:
                threshold = point.batch
                break
        result = ShapeProfile(
            signature=profile.shape_signature,
            sweep=sweep,
            threshold_batch=threshold,
            max_throughput=max_throughput,
        )
        self._repository[profile.shape_signature] = result
        return result

    def threshold_batch(self, profile: LayerProfile) -> int:
        """Threshold batch size for one layer (repository-cached)."""
        return self.profile_layer(profile).threshold_batch

    def model_thresholds(
        self, model: ModelGraph, trainable_only: bool = True
    ) -> list[tuple[LayerProfile, int]]:
        """Per-layer thresholds in location order (paper Fig. 5)."""
        layers = model.trainable_layers if trainable_only else model.layers
        return [(p, self.threshold_batch(p)) for p in layers]

    # -- repository ---------------------------------------------------------------

    @property
    def repository_size(self) -> int:
        """Number of distinct shapes profiled so far."""
        return len(self._repository)

    def repository_signatures(self) -> list[tuple]:
        """Shapes profiled so far (insertion order)."""
        return list(self._repository)

    # -- persistence ---------------------------------------------------------------

    #: On-disk repository format version.
    _FORMAT_VERSION = 1

    def save(self, path: str | pathlib.Path) -> int:
        """Write the shape repository to ``path`` as JSON.

        The paper's measurement is "executed once and for all"; saving
        the repository lets later runs (and other tasks) reuse it without
        re-profiling.  Returns the number of profiles written.
        """
        payload = {
            "version": self._FORMAT_VERSION,
            "saturation_fraction": self.saturation_fraction,
            "batch_sweep": list(self.batch_sweep),
            "profiles": [
                {
                    "signature": list(profile.signature),
                    "threshold_batch": profile.threshold_batch,
                    "max_throughput": profile.max_throughput,
                    "sweep": [
                        {
                            "batch": point.batch,
                            "throughput": point.throughput,
                            "train_time": point.train_time,
                        }
                        for point in profile.sweep
                    ],
                }
                for profile in self._repository.values()
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
        pathlib.Path(path).write_text(text + "\n")
        return len(self._repository)

    def load(self, path: str | pathlib.Path) -> int:
        """Merge a saved shape repository from ``path`` into this one.

        The file's batch sweep and saturation fraction must match this
        profiler's configuration — thresholds are only comparable when
        measured the same way.  Existing in-memory profiles win over the
        file's (they were computed by *this* GPU model).  Returns the
        number of profiles actually added.
        """
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read profiler repository {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"profiler repository {path} is not a JSON object"
            )
        version = payload.get("version")
        if version != self._FORMAT_VERSION:
            raise ConfigurationError(
                f"profiler repository {path} has format version "
                f"{version!r}; expected {self._FORMAT_VERSION}"
            )
        if tuple(payload.get("batch_sweep", ())) != self.batch_sweep:
            raise ConfigurationError(
                f"profiler repository {path} was measured with a "
                f"different batch sweep"
            )
        if payload.get("saturation_fraction") != self.saturation_fraction:
            raise ConfigurationError(
                f"profiler repository {path} was measured with a "
                f"different saturation fraction"
            )
        added = 0
        for entry in payload.get("profiles", []):
            signature = _freeze(entry["signature"])
            if signature in self._repository:
                continue
            self._repository[signature] = ShapeProfile(
                signature=signature,
                sweep=tuple(
                    SweepPoint(
                        batch=int(point["batch"]),
                        throughput=float(point["throughput"]),
                        train_time=float(point["train_time"]),
                    )
                    for point in entry["sweep"]
                ),
                threshold_batch=int(entry["threshold_batch"]),
                max_throughput=float(entry["max_throughput"]),
            )
            added += 1
        return added


def _freeze(value: _t.Any) -> _t.Any:
    """Rebuild the nested-tuple shape signatures JSON turned into lists."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value
