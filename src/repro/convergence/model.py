"""Iteration-quality model: why the paper stays with BSP.

The paper's central argument for BSP (Sections II-C, V-A footnote 18) is
that Fela "makes no changes to the training algorithm and does not affect
the iteration quality", whereas ASP "spoils the iteration quality and may
cause convergence failure" and SSP "makes some trade-off between
iteration speed and iteration quality".  The throughput experiments
deliberately hold iteration count fixed; this module supplies the other
axis so the trade-off can be *measured* end-to-end: simulated time to a
target loss = (seconds per iteration) x (iterations to target under the
staleness in use).

The model is the standard one from the SSP literature (Ho et al.,
NeurIPS'13; Cui et al., ATC'14): SGD on a smooth convex objective with
gradients delayed by up to ``s`` iterations behaves like gradient descent
whose effective progress per step shrinks with the staleness-induced
gradient error.  We model per-iteration loss contraction as

    L_{t+1} - L* = rho(s) * (L_t - L*),
    rho(s) = rho_bsp ** (1 / (1 + beta * E[age]))

where ``E[age]`` is the mean effective gradient age and ``beta`` the
staleness sensitivity (workload-dependent; default calibrated so that
s = 4 roughly halves per-iteration progress, the regime LazyTable
reports).  BSP has age 0, SSP with bound ``s`` has mean age ``s/2`` under
steady pipelining, ASP's age is unbounded — modelled by its runtime lead
over the slowest synchronization.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ConvergenceModel:
    """Loss-trajectory model for stale-gradient SGD."""

    #: Per-iteration contraction of the excess loss under BSP (0 < rho < 1).
    rho_bsp: float = 0.97
    #: Sensitivity of the contraction to mean gradient age.
    staleness_beta: float = 0.5
    #: Initial excess loss L_0 - L*.
    initial_excess: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.rho_bsp < 1:
            raise ConfigurationError(
                f"rho_bsp must be in (0, 1): {self.rho_bsp}"
            )
        if self.staleness_beta < 0:
            raise ConfigurationError(
                f"staleness_beta must be >= 0: {self.staleness_beta}"
            )
        if self.initial_excess <= 0:
            raise ConfigurationError(
                f"initial excess loss must be > 0: {self.initial_excess}"
            )

    # -- per-mode contraction ----------------------------------------------------

    def mean_age(self, staleness_bound: int) -> float:
        """Mean effective gradient age under an SSP bound (BSP = 0)."""
        if staleness_bound < 0:
            raise ConfigurationError(
                f"staleness bound must be >= 0: {staleness_bound}"
            )
        return staleness_bound / 2.0

    def contraction(self, mean_age: float) -> float:
        """rho(s): per-iteration excess-loss contraction factor."""
        if mean_age < 0:
            raise ConfigurationError(f"mean age must be >= 0: {mean_age}")
        exponent = 1.0 / (1.0 + self.staleness_beta * mean_age)
        return self.rho_bsp**exponent

    # -- trajectories ---------------------------------------------------------------

    def excess_loss(self, iterations: int, mean_age: float = 0.0) -> float:
        """Excess loss after ``iterations`` steps at constant ``mean_age``."""
        if iterations < 0:
            raise ConfigurationError(
                f"iterations must be >= 0: {iterations}"
            )
        return self.initial_excess * self.contraction(mean_age) ** iterations

    def iterations_to_target(
        self, target_excess: float, mean_age: float = 0.0
    ) -> int:
        """Iterations needed to bring the excess loss to ``target_excess``."""
        if not 0 < target_excess < self.initial_excess:
            raise ConfigurationError(
                f"target excess must be in (0, {self.initial_excess}): "
                f"{target_excess}"
            )
        rho = self.contraction(mean_age)
        needed = math.log(target_excess / self.initial_excess) / math.log(rho)
        return int(math.ceil(needed))

    def time_to_target(
        self,
        target_excess: float,
        seconds_per_iteration: float,
        mean_age: float = 0.0,
    ) -> float:
        """Wall-clock seconds to the target: the speed-quality product.

        This is the quantity that decides whether SSP's faster iterations
        pay for their degraded quality on a given cluster.
        """
        if seconds_per_iteration <= 0:
            raise ConfigurationError(
                f"seconds/iteration must be > 0: {seconds_per_iteration}"
            )
        iterations = self.iterations_to_target(target_excess, mean_age)
        return iterations * seconds_per_iteration
