"""Iteration-quality (convergence) modelling for the BSP/SSP/ASP trade-off."""

from repro.convergence.model import ConvergenceModel

__all__ = ["ConvergenceModel"]
