"""Command-line interface: ``python -m repro <command> ...``.

Commands map onto the library's public API:

``list-models``
    Models available in the zoo.
``profile MODEL``
    Per-layer threshold batch sizes (Fig. 5 for any model).
``partition MODEL [--bin-width W]``
    Offline bin-partitioned method output (and the paper's published
    partition when one exists).
``run MODEL --runtime {fela,dp,mp,hp,proactive}``
    One training run; optional straggler injection.  ``--trace-out F``
    additionally writes a Chrome trace (Fela runtime only).
``trace MODEL``
    A traced Fela run: Chrome trace JSON (open in Perfetto or
    ``chrome://tracing``), optional metrics CSV, and a plain-text run
    report with critical-path and straggler-attribution analysis.
``compare MODEL --batches 64,128,...``
    Fig. 8-style comparison across all runtimes.
``tune MODEL --batch B``
    The two-phase configuration tuning (Fig. 6 diagnostics).
    Phase 1 prunes with successive halving by default;
    ``--exhaustive`` restores the full sweep.
``cache {stats,ls,clear}``
    Inspect or empty the persistent result cache.
``analyze [PATHS...]``
    The FELA determinism lint pass (see :mod:`repro.analysis`).
``bench [--compare BASELINE --fail-on-regress PCT] [--profile]``
    The performance lab (see :mod:`repro.perf`): run deterministic
    benchmark scenarios, append them to a regression store, compare
    against a committed baseline, print cProfile hotspot reports, or
    (``--history SCENARIO``) report one scenario's full-store trend.
``dashboard LEDGER [--out FILE]``
    Render a run ledger (see :mod:`repro.store`) as a plain-text or
    self-contained HTML dashboard: per-run utilization heatmaps,
    throughput/buffer curves with fault markers, sweep progress, bench
    trends, and cluster-run Gantt/utilization/JCT sections.
``cluster {run,compare} [--trace-kind K --jobs N --seed S --pool P]``
    The multi-tenant cluster service (see :mod:`repro.cluster`): play a
    seeded arrival trace of training jobs onto a shared GPU pool under
    a FIFO / fair-share / throughput-elastic scheduler (``run``), or
    report JCT/makespan/utilization across several schedulers on the
    same trace (``compare``).  ``--ledger`` lands ``cluster_runs`` and
    ``cluster_jobs`` rows.

Observability flags shared by several commands: ``--sample SECONDS``
attaches the gauge sampler, ``--ledger FILE`` lands runs / sweep
heartbeats / bench records in a run ledger, and ``--progress`` mirrors
sweep heartbeats to stderr without changing stdout.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.errors import ConfigurationError, ReproError
from repro.faults import parse_faults
from repro.harness import (
    ExperimentRunner,
    ExperimentSpec,
    fig8,
    render_table,
)
from repro.models import available_models, get_model
from repro.partition import bin_partition, paper_partition
from repro.profiling import ThroughputProfiler
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
    StragglerInjector,
)


def parse_straggler(text: str | None) -> StragglerInjector:
    """Parse ``--straggler`` values: ``none``, ``rr:D``, or ``prob:P:D``.

    >>> parse_straggler("rr:6").delay
    6.0
    """
    if not text or text == "none":
        return NoStraggler()
    parts = text.split(":")
    try:
        if parts[0] == "rr" and len(parts) == 2:
            return RoundRobinStraggler(float(parts[1]))
        if parts[0] == "prob" and len(parts) == 3:
            return ProbabilityStraggler(float(parts[1]), float(parts[2]))
    except ValueError:
        pass
    raise ConfigurationError(
        f"cannot parse straggler spec {text!r}; expected 'none', 'rr:D', "
        "or 'prob:P:D'"
    )


def _open_ledger(args: argparse.Namespace) -> _t.Any:
    """The ``--ledger`` run ledger, or None when the flag is absent."""
    path = getattr(args, "ledger", None)
    if not path:
        return None
    from repro.store import RunLedger

    return RunLedger(path)


def _sweep_executor(args: argparse.Namespace) -> _t.Any:
    """Build the SweepExecutor the ``--jobs``/cache flags describe.

    ``--no-cache`` keeps a memory-only cache (results are still shared
    within the invocation); otherwise the persistent cache lives in
    ``--cache-dir``, ``$REPRO_CACHE_DIR``, or ``~/.cache/fela-repro``.
    A ``--jobs`` value above the host's CPU count is capped with a
    warning on stderr.  ``--ledger`` streams per-job heartbeat rows
    into a run ledger and ``--progress`` mirrors them as stderr lines;
    neither changes a byte of the stdout report.
    """
    from repro.exec import (
        ResultCache,
        SweepExecutor,
        default_cache_dir,
        resolve_jobs,
    )

    jobs, warning = resolve_jobs(getattr(args, "jobs", 1))
    if warning:
        print(f"warning: {warning}", file=sys.stderr)
    if getattr(args, "no_cache", False):
        directory = None
    else:
        directory = getattr(args, "cache_dir", None) or default_cache_dir()
    return SweepExecutor(
        jobs=jobs,
        cache=ResultCache(directory),
        ledger=_open_ledger(args),
        sweep_label=getattr(args, "command", "sweep") or "sweep",
        progress=getattr(args, "progress", False),
    )


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent simulations out over N processes "
        "(capped at the CPU count)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache for this invocation",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/fela-repro)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="stream per-job sweep heartbeats into this run ledger "
        "(SQLite, or JSONL when FILE ends in .jsonl)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-job progress lines to stderr (stdout output "
        "stays byte-identical)",
    )


def parse_batches(text: str) -> list[int]:
    """Parse a comma-separated batch list ("64,128,256")."""
    try:
        batches = [int(part) for part in text.split(",") if part]
    except ValueError:
        raise ConfigurationError(
            f"cannot parse batch list {text!r}"
        ) from None
    if not batches:
        raise ConfigurationError("empty batch list")
    return batches


def _cmd_list_models(_args: argparse.Namespace) -> str:
    return "\n".join(available_models())


def _cmd_profile(args: argparse.Namespace) -> str:
    model = get_model(args.model)
    profiler = ThroughputProfiler()
    rows = [
        [profile.name, str(profile.shape_signature), threshold]
        for profile, threshold in profiler.model_thresholds(model)
    ]
    return render_table(
        ["Layer", "Shape", "Threshold batch"],
        rows,
        title=f"Threshold batch sizes for {model.name}",
    )


def _cmd_partition(args: argparse.Namespace) -> str:
    model = get_model(args.model)
    lines = []
    try:
        lines.append("Paper partition:")
        lines.append(paper_partition(model).describe())
    except ReproError:
        lines.append(f"(no published partition for {model.name})")
    lines.append("")
    lines.append(f"Bin-partitioned method (bin width {args.bin_width}):")
    lines.append(bin_partition(model, bin_width=args.bin_width).describe())
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> str:
    from repro.obs import Sampler, Tracer, write_chrome_trace

    runner = ExperimentRunner()
    spec = ExperimentSpec(
        model_name=args.model,
        total_batch=args.batch,
        num_workers=args.workers,
        iterations=args.iterations,
    )
    tracer = Tracer() if args.trace_out else None
    sampler = Sampler(args.sample) if args.sample else None
    faults = None
    injector = parse_faults(args.faults)
    if injector is not None:
        from repro.faults import FaultController

        faults = FaultController(injector)
    invariants = None
    if args.check_invariants:
        from repro.analysis.invariants import InvariantChecker

        invariants = InvariantChecker()
    result = runner.run(
        args.runtime,
        spec,
        parse_straggler(args.straggler),
        tracer=tracer,
        faults=faults,
        invariants=invariants,
        sampler=sampler,
    )
    rows = [
        ["runtime", result.runtime_name],
        ["model", result.model_name],
        ["total batch", result.total_batch],
        ["iterations", result.iterations],
        ["total time (s)", result.total_time],
        ["AT (samples/s)", result.average_throughput],
        ["s/iteration", result.mean_iteration_time],
    ]
    summary = result.stats.get("faults")
    if summary is not None:
        rows += [
            ["workers failed", len(summary["failures"])],
            ["workers joined", len(summary["joined"])],
            ["workers left", len(summary["left"])],
            ["tokens reclaimed", summary["tokens_reclaimed"]],
            ["tokens re-minted", summary["tokens_reminted"]],
            ["lost compute (s)", summary["lost_compute_seconds"]],
        ]
    table = render_table(["Metric", "Value"], rows)
    if sampler is not None:
        table += f"\nsampled {len(sampler.samples)} gauge points"
    if tracer is not None:
        count = write_chrome_trace(
            args.trace_out,
            tracer.events,
            samples=sampler.samples if sampler is not None else (),
        )
        table += f"\nwrote {count} trace events to {args.trace_out}"
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.store import run_row_from_result

        with ledger:
            run_id = ledger.record_run(
                command="run",
                kind=args.runtime,
                result=result,
                label=args.model,
                config=run_row_from_result(result),
                samples=sampler.samples if sampler is not None else (),
                events=tracer.events if tracer is not None else (),
            )
        table += f"\nrecorded run {run_id} in {args.ledger}"
    return table


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs import (
        MetricsRegistry,
        Sampler,
        Tracer,
        render_run_report,
        write_chrome_trace,
        write_metrics_csv,
    )

    runner = ExperimentRunner()
    spec = ExperimentSpec(
        model_name=args.model,
        total_batch=args.batch,
        num_workers=args.workers,
        iterations=args.iterations,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    sampler = Sampler(args.sample) if args.sample else None
    result = runner.run(
        "fela",
        spec,
        parse_straggler(args.straggler),
        tracer=tracer,
        metrics=metrics,
        sampler=sampler,
    )
    lines = []
    count = write_chrome_trace(
        args.out,
        tracer.events,
        samples=sampler.samples if sampler is not None else (),
    )
    lines.append(f"wrote {count} trace events to {args.out}")
    if args.metrics_csv:
        write_metrics_csv(args.metrics_csv, metrics)
        lines.append(f"wrote metrics CSV to {args.metrics_csv}")
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.store import run_row_from_result

        with ledger:
            run_id = ledger.record_run(
                command="trace",
                kind="fela",
                result=result,
                label=args.model,
                config=run_row_from_result(result),
                samples=sampler.samples if sampler is not None else (),
                events=tracer.events,
            )
        lines.append(f"recorded run {run_id} in {args.ledger}")
    lines.append("")
    lines.append(render_run_report(result, tracer.events, metrics))
    return "\n".join(lines)


def _cmd_compare(args: argparse.Namespace) -> str:
    runner = ExperimentRunner(executor=_sweep_executor(args))
    result = fig8(
        args.model,
        batches=parse_batches(args.batches),
        iterations=args.iterations,
        runner=runner,
    )
    return result.render()


def _cmd_figures(args: argparse.Namespace) -> str:
    from repro.harness.registry import REGISTRY, generate_artifacts

    if args.list:
        rows = [
            [a.artifact_id, "paper" if a.from_paper else "extension",
             a.title, a.benchmark]
            for a in REGISTRY
        ]
        return render_table(
            ["Id", "Source", "Title", "Benchmark"], rows
        )
    if not args.ids:
        raise ConfigurationError(
            "pass artifact ids (see --list) or --list"
        )
    runner = ExperimentRunner(executor=_sweep_executor(args))
    return "\n\n".join(
        generate_artifacts(
            args.ids, runner=runner, iterations=args.iterations
        )
    )


def _cmd_analyze(args: argparse.Namespace) -> tuple[str, int]:
    from repro.analysis.linter import format_rules, run_lint

    if args.list_rules:
        lines = [format_rules()]
        from repro.analysis.flow.rules import FLOW_RULES

        for rule_id in sorted(FLOW_RULES):
            lines.append(f"{rule_id}  {FLOW_RULES[rule_id]}")
        return "\n".join(lines), 0
    if args.flow:
        from repro.analysis.flow.cli import run_flow
        from repro.exec.cache import ResultCache, default_cache_dir

        cache = None
        if not args.no_cache:
            cache = ResultCache(args.cache_dir or default_cache_dir())
        return run_flow(
            args.paths,
            output_format=args.format,
            baseline_path=args.baseline,
            write_baseline_file=args.write_baseline,
            fail_on_new=args.fail_on_new,
            sarif_out=args.sarif_out,
            cache=cache,
        )
    return run_lint(
        args.paths, output_format=args.format, select=args.select
    )


def _cmd_bench(args: argparse.Namespace) -> str | tuple[str, int]:
    import repro.perf as perf

    if args.list:
        rows = [
            [scenario.name, scenario.kind, scenario.description]
            for scenario in perf.scenarios()
        ]
        return render_table(
            ["Scenario", "Kind", "Description"],
            rows,
            title="Registered benchmark scenarios",
        )

    if args.history:
        store = args.compare or args.out or "BENCH_core.json"
        return perf.render_history(
            perf.load_store(store), args.history
        )

    if args.scenarios:
        names = [
            part for part in args.scenarios.split(",") if part
        ]
        for name in names:
            perf.get_scenario(name)  # fail fast on typos
    else:
        kind = None if args.kind == "all" else args.kind
        names = perf.scenario_names(kind)

    ctx = perf.ScenarioContext()

    if args.profile:
        reports = [
            perf.profile_scenario(name, ctx, top=args.top)
            for name in names
        ]
        return "\n\n".join(reports)

    run = perf.run_benchmarks(
        names,
        label=args.label,
        ctx=ctx,
        repeats=args.repeats,
        warmup=args.warmup,
        executor=_sweep_executor(args),
    )
    rows = [
        [
            record.name,
            record.kind,
            f"{record.wall_seconds_median:.4f}",
            f"{record.wall_seconds_iqr:.4f}",
            f"{record.sim_seconds_per_wall_second:.1f}",
            f"{record.events_per_second:.0f}"
            + ("*" if record.events_elided else ""),
            f"{record.peak_rss_kb / 1024.0:.1f}",
        ]
        for record in run.records
    ]
    text = render_table(
        ["Scenario", "Kind", "Wall med (s)", "IQR (s)", "Sim s/s",
         "Events/s", "RSS (MiB)"],
        rows,
        title=f"Benchmark run {run.label!r} "
        f"({args.repeats} repeats, {args.warmup} warmup)",
    )
    elided = [r for r in run.records if r.events_elided]
    if elided:
        # Keep sim-s-per-wall-s honest: part of the counted events were
        # drained analytically, never dispatched.
        detail = ", ".join(
            f"{record.name}={record.events_elided}" for record in elided
        )
        text += f"\n* events fast-forwarded (scheduled, not dispatched): {detail}"

    # Resolve the baseline before --out appends, so that comparing and
    # appending to the same store measures against the previous run.
    baseline = None
    if args.compare:
        baseline_runs = perf.load_store(args.compare)
        if not baseline_runs:
            raise ConfigurationError(
                f"baseline store {args.compare} holds no runs"
            )
        if args.baseline:
            baseline = perf.run_for_label(baseline_runs, args.baseline)
        else:
            baseline = baseline_runs[-1]
    elif args.baseline:
        raise ConfigurationError(
            "--baseline names a run inside the --compare store; "
            "pass --compare as well"
        )

    if args.out:
        perf.append_run(args.out, run)
        text += f"\nappended run {run.label!r} to {args.out}"

    if args.ledger:
        from repro.store import RunLedger

        with RunLedger(args.ledger) as ledger:
            bench_id = ledger.record_bench_run(run)
        text += f"\nrecorded bench run {bench_id} in {args.ledger}"

    if baseline is not None:
        comparison = perf.compare_runs(
            run, baseline, threshold_pct=args.fail_on_regress
        )
        text += "\n\n" + comparison.render()
        if comparison.regressions:
            return text, 1

    return text


def _cmd_tune(args: argparse.Namespace) -> str:
    from repro.tuning import (
        PHASE1_EXHAUSTIVE,
        PHASE1_HALVING,
        ConfigurationTuner,
    )

    executor = _sweep_executor(args)
    partition = ExperimentRunner(executor=executor).partition(args.model)
    tuner = ConfigurationTuner(
        partition,
        total_batch=args.batch,
        num_workers=args.workers,
        profile_iterations=args.profile_iterations,
        executor=executor,
    )
    strategy = (
        PHASE1_EXHAUSTIVE if args.exhaustive else PHASE1_HALVING
    )
    result = tuner.tune(phase1=strategy)
    rows = [
        [case.index, case.phase, str(case.weights), case.subset_size,
         case.per_iteration_time]
        for case in result.cases
    ]
    table = render_table(
        ["Case", "Phase", "Weights", "Subset", "s/iter"],
        rows,
        title=(
            f"Tuning {args.model} at batch {args.batch} "
            f"({strategy} phase 1)"
        ),
    )
    summary = (
        f"best: weights={result.best_weights} "
        f"subset={result.best_subset_size}; gaps: "
        f"phase1={result.phase1_gap() * 100:.2f}% "
        f"phase2={result.phase2_gap() * 100:.2f}% "
        f"overall={result.overall_gap() * 100:.2f}%"
    )
    diagnostics = (
        f"search: {result.cases_profiled} case measurements, "
        f"{result.warmup_iterations} warm-up iterations, "
        f"{result.cases_pruned} candidates pruned, "
        f"{result.cache_hits} cache hits, "
        f"wall {result.wall_seconds:.2f}s"
    )
    return f"{table}\n{summary}\n{diagnostics}"


def _cmd_dashboard(args: argparse.Namespace) -> str:
    import pathlib

    from repro.store import (
        RunLedger,
        load_dashboard,
        render_html_dashboard,
        render_text_dashboard,
    )

    if not pathlib.Path(args.ledger).exists():
        raise ConfigurationError(f"no run ledger at {args.ledger}")
    with RunLedger(args.ledger) as ledger:
        data = load_dashboard(ledger)
    if args.out:
        pathlib.Path(args.out).write_text(
            render_html_dashboard(data), encoding="utf-8"
        )
        return (
            f"wrote dashboard for {len(data['runs'])} runs, "
            f"{len(data['sweeps'])} sweeps, "
            f"{len(data['bench'])} bench scenarios, "
            f"{len(data['cluster'])} cluster runs to {args.out}"
        )
    return render_text_dashboard(data)


def _cluster_trace_spec(args: argparse.Namespace) -> _t.Any:
    from repro.cluster import DEFAULT_MODELS, TraceSpec

    models = (
        tuple(name.strip() for name in args.models.split(",") if name.strip())
        if args.models
        else DEFAULT_MODELS
    )
    return TraceSpec(
        kind=args.trace_kind,
        num_jobs=args.jobs,
        seed=args.seed,
        mean_interarrival=args.mean_interarrival,
        models=models,
    )


def _cluster_summary_rows(results: _t.Sequence[_t.Any]) -> list[list]:
    rows = []
    for result in results:
        rows.append([
            result.scheduler_display,
            f"{result.makespan:.1f}",
            f"{result.mean_jct:.2f}",
            f"{result.p50_jct:.2f}",
            f"{result.p99_jct:.2f}",
            f"{result.mean_queue_delay:.2f}",
            f"{100 * result.mean_utilization:.1f}%",
            result.total_resizes,
            f"{result.lost_compute_seconds:.2f}",
        ])
    return rows


_CLUSTER_SUMMARY_HEADER = [
    "Scheduler", "Makespan", "Mean JCT", "p50 JCT", "p99 JCT",
    "Mean queue", "Util", "Resizes", "Lost compute",
]


def _cmd_cluster(args: argparse.Namespace) -> str:
    from repro.cluster import ClusterSimulator, generate_trace

    spec = _cluster_trace_spec(args)
    trace = generate_trace(spec)
    trace_desc = (
        f"{spec.kind}/jobs={spec.num_jobs}/seed={spec.seed}"
    )

    def simulate(scheduler: str) -> _t.Any:
        return ClusterSimulator(
            trace,
            scheduler,
            pool_size=args.pool,
            crash_probability=args.crash_probability,
            crash_seed=args.crash_seed,
        ).run()

    schedulers = (
        [args.scheduler]
        if args.cluster_command == "run"
        else [
            name.strip()
            for name in args.schedulers.split(",")
            if name.strip()
        ]
    )
    results = [simulate(name) for name in schedulers]
    lines = []
    ledger = _open_ledger(args)
    if ledger is not None:
        with ledger:
            for result in results:
                run_id = ledger.record_cluster_run(
                    result,
                    label=args.label or trace_desc,
                    trace=trace_desc,
                )
                lines.append(
                    f"recorded cluster run {run_id} "
                    f"({result.scheduler}) in {args.ledger}"
                )
    if getattr(args, "trace_out", None):
        from repro.obs import write_chrome_trace

        count = write_chrome_trace(args.trace_out, results[0].events)
        lines.append(
            f"wrote {count} job lifecycle events to {args.trace_out}"
        )
    title = (
        f"Cluster trace {trace_desc} on {args.pool} GPUs"
        + (
            f", crash p={args.crash_probability}"
            if args.crash_probability
            else ""
        )
    )
    lines.append(render_table(
        _CLUSTER_SUMMARY_HEADER,
        _cluster_summary_rows(results),
        title=title,
    ))
    if args.cluster_command == "run" and args.per_job:
        job_rows = [
            [
                job["job_id"], job["model"], job["iterations"],
                f"{job['submit_time']:.1f}", f"{job['start_time']:.1f}",
                f"{job['finish_time']:.1f}", f"{job['jct']:.2f}",
                f"{job['queue_delay']:.2f}",
                f"{job['initial_workers']}->{job['final_workers']}",
                job["resize_count"],
            ]
            for job in results[0].jobs
        ]
        lines.append(render_table(
            ["Job", "Model", "Iters", "Submit", "Start", "Finish",
             "JCT", "Queue", "Workers", "Resizes"],
            job_rows,
            title="Per-job accounting",
        ))
    if args.cluster_command == "compare" and len(results) > 1:
        best = min(results, key=lambda r: r.mean_jct)
        lines.append(
            f"best mean JCT: {best.scheduler_display} "
            f"({best.mean_jct:.2f}s)"
        )
    return "\n".join(lines)


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.exec import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        stats = cache.stats()
        rows = [[name, stats[name]] for name in
                ("directory", "entries", "bytes")]
        return render_table(["Field", "Value"], rows,
                            title="Persistent result cache")
    if args.action == "ls":
        entries = cache.entries()
        if not entries:
            return "(cache is empty)"
        return render_table(
            ["Key", "Bytes"],
            [[key, size] for key, size in entries],
        )
    removed = cache.clear()
    return f"removed {removed} cache files from {cache.directory}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fela (ICDE 2020) reproduction on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="models available in the zoo")

    profile = sub.add_parser("profile", help="per-layer threshold batches")
    profile.add_argument("model")

    partition = sub.add_parser("partition", help="offline model partition")
    partition.add_argument("model")
    partition.add_argument("--bin-width", type=int, default=16)

    run = sub.add_parser("run", help="one training run")
    run.add_argument("model")
    run.add_argument(
        "--runtime",
        default="fela",
        choices=("fela", "dp", "mp", "hp", "proactive"),
    )
    run.add_argument("--batch", type=int, default=256)
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--iterations", type=int, default=10)
    run.add_argument(
        "--straggler",
        default="none",
        help="'none', 'rr:D' (round-robin, D s) or 'prob:P:D'",
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also write a Chrome trace JSON (fela runtime only)",
    )
    run.add_argument(
        "--faults",
        default="none",
        help="'none', 'crash:W@T', 'leave:W@T', 'join@T', "
        "'crashp:P[:SEED]', or several joined with ','"
        " (fela runtime only)",
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help="attach the runtime invariant checker (fela runtime only)",
    )
    run.add_argument(
        "--sample", type=float, default=None, metavar="SECONDS",
        help="sample gauge time-series every SECONDS of simulated time "
        "(fela runtime only)",
    )
    run.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="record the run (config, stats, samples, trace events) in "
        "this run ledger",
    )

    trace = sub.add_parser(
        "trace", help="traced Fela run: Chrome trace + run report"
    )
    trace.add_argument("model")
    trace.add_argument("--batch", type=int, default=256)
    trace.add_argument("--workers", type=int, default=8)
    trace.add_argument("--iterations", type=int, default=3)
    trace.add_argument(
        "--straggler",
        default="none",
        help="'none', 'rr:D' (round-robin, D s) or 'prob:P:D'",
    )
    trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="Chrome trace JSON output path",
    )
    trace.add_argument(
        "--metrics-csv", default=None, metavar="FILE",
        help="also dump the metrics registry as CSV",
    )
    trace.add_argument(
        "--sample", type=float, default=None, metavar="SECONDS",
        help="sample gauge time-series every SECONDS of simulated time "
        "(exported as Chrome counter tracks)",
    )
    trace.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="record the traced run (config, stats, samples, events) "
        "in this run ledger",
    )

    compare = sub.add_parser("compare", help="compare all runtimes")
    compare.add_argument("model")
    compare.add_argument("--batches", default="64,128,256,512,1024")
    compare.add_argument("--iterations", type=int, default=10)
    _add_sweep_flags(compare)

    tune = sub.add_parser("tune", help="two-phase configuration tuning")
    tune.add_argument("model")
    tune.add_argument("--batch", type=int, default=256)
    tune.add_argument("--workers", type=int, default=8)
    tune.add_argument("--profile-iterations", type=int, default=5)
    tune.add_argument(
        "--exhaustive", action="store_true",
        help="profile every phase-1 candidate at full depth instead of "
        "pruning with successive halving",
    )
    _add_sweep_flags(tune)

    figures = sub.add_parser(
        "figures", help="regenerate the paper's tables/figures"
    )
    figures.add_argument("ids", nargs="*", help="artifact ids (see --list)")
    figures.add_argument("--list", action="store_true")
    figures.add_argument("--iterations", type=int, default=8)
    _add_sweep_flags(figures)

    cache = sub.add_parser(
        "cache", help="inspect or empty the persistent result cache"
    )
    cache.add_argument("action", choices=("stats", "ls", "clear"))
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/fela-repro)",
    )

    analyze = sub.add_parser(
        "analyze", help="run the FELA determinism lint rules"
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    analyze.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    analyze.add_argument(
        "--select", default=None, help="comma-separated rule ids"
    )
    analyze.add_argument("--list-rules", action="store_true")
    analyze.add_argument(
        "--flow", action="store_true",
        help="run the whole-program FELA1xx flow rules instead of the "
        "per-file syntactic rules",
    )
    analyze.add_argument(
        "--baseline", default="analysis-baseline.json",
        help="accepted flow findings (default: analysis-baseline.json)",
    )
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current flow finding into --baseline",
    )
    analyze.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 when a flow finding is missing from the baseline",
    )
    analyze.add_argument(
        "--sarif-out", default=None, metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental per-file facts cache",
    )
    analyze.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="facts cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/fela-repro)",
    )

    bench = sub.add_parser(
        "bench", help="deterministic performance benchmarks"
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit",
    )
    bench.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario names (default: all of --kind)",
    )
    bench.add_argument(
        "--kind", choices=("macro", "micro", "all"), default="all"
    )
    bench.add_argument("--repeats", type=int, default=5)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument(
        "--label", default="local",
        help="label stored with this run (e.g. 'optimized')",
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="append this run to the given regression store",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against the latest run in BASELINE "
        "(exit 1 on regression)",
    )
    bench.add_argument(
        "--fail-on-regress", type=float, default=20.0, metavar="PCT",
        help="regression gate for --compare (median wall-clock %%)",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="LABEL",
        help="with --compare: gate against the latest run stored under "
        "LABEL instead of the last run in the store",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="print cProfile hotspot reports instead of timing",
    )
    bench.add_argument(
        "--top", type=int, default=15,
        help="functions per hotspot report (with --profile)",
    )
    bench.add_argument(
        "--history", default=None, metavar="SCENARIO",
        help="print the full-store trend of one scenario and exit "
        "(store: --compare, --out, or BENCH_core.json)",
    )
    _add_sweep_flags(bench)

    dashboard = sub.add_parser(
        "dashboard", help="render run-ledger dashboards (text or HTML)"
    )
    dashboard.add_argument("ledger", help="run ledger file to render")
    dashboard.add_argument(
        "--out", default=None, metavar="FILE",
        help="write a self-contained HTML dashboard to FILE "
        "(default: print the plain-text dashboard)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="multi-tenant cluster service: job streams on a shared "
        "GPU pool",
    )
    cluster_sub = cluster.add_subparsers(
        dest="cluster_command", required=True
    )

    def _add_cluster_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--trace-kind", default="poisson",
            choices=("poisson", "diurnal", "bursty"),
            help="arrival process of the job stream",
        )
        parser.add_argument(
            "--jobs", type=int, default=20,
            help="number of jobs in the trace",
        )
        parser.add_argument(
            "--seed", type=int, default=0, help="trace seed"
        )
        parser.add_argument(
            "--mean-interarrival", type=float, default=30.0,
            metavar="SECONDS",
            help="mean simulated seconds between arrivals",
        )
        parser.add_argument(
            "--models", default=None, metavar="A,B,...",
            help="comma-separated model mix (default: the zoo minus "
            "resnet152 and lenet5)",
        )
        parser.add_argument(
            "--pool", type=int, default=16,
            help="GPUs in the shared pool",
        )
        parser.add_argument(
            "--crash-probability", type=float, default=0.0,
            metavar="P",
            help="per-worker per-iteration crash probability",
        )
        parser.add_argument(
            "--crash-seed", type=int, default=0,
            help="seed for crash injection (independent of the trace)",
        )
        parser.add_argument(
            "--ledger", default=None, metavar="FILE",
            help="record cluster_runs/cluster_jobs rows in a run ledger",
        )
        parser.add_argument(
            "--label", default="", help="ledger label for this run"
        )

    cluster_run = cluster_sub.add_parser(
        "run", help="run one trace under one scheduler"
    )
    _add_cluster_flags(cluster_run)
    cluster_run.add_argument(
        "--scheduler", default="elastic",
        choices=("fifo", "fair", "elastic"),
        help="allocation policy",
    )
    cluster_run.add_argument(
        "--per-job", action="store_true",
        help="also print the per-job accounting table",
    )
    cluster_run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write job lifecycle events as a Chrome trace",
    )

    cluster_compare = cluster_sub.add_parser(
        "compare", help="run one trace under several schedulers"
    )
    _add_cluster_flags(cluster_compare)
    cluster_compare.add_argument(
        "--schedulers", default="fifo,fair,elastic", metavar="A,B,...",
        help="comma-separated schedulers to compare",
    )

    return parser


#: Handlers return the report text, optionally with an explicit exit
#: code (the ``analyze`` command exits 1 when violations are found).
_COMMANDS: dict[
    str, _t.Callable[[argparse.Namespace], str | tuple[str, int]]
] = {
    "list-models": _cmd_list_models,
    "profile": _cmd_profile,
    "partition": _cmd_partition,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "tune": _cmd_tune,
    "cache": _cmd_cache,
    "figures": _cmd_figures,
    "analyze": _cmd_analyze,
    "bench": _cmd_bench,
    "dashboard": _cmd_dashboard,
    "cluster": _cmd_cluster,
}


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    code = 0
    if isinstance(output, tuple):
        output, code = output
    try:
        print(output, file=sys.stderr if code == 2 else sys.stdout)
    except BrokenPipeError:  # e.g. `repro figures --list | head`
        return 0
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
