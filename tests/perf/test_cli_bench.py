"""The ``repro bench`` command: listing, measuring, comparing, gating."""

import json

import pytest

from repro.cli import main
from repro.perf import SCHEMA_VERSION


SCENARIO = "micro.object_churn"
FAST_ARGS = ["--scenarios", SCENARIO, "--repeats", "1", "--warmup", "0"]


class TestBenchCommand:
    def test_list_scenarios(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "macro.vgg19_fela" in out
        assert "micro.token_lifecycle" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["bench", "--scenarios", "micro.nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err

    def test_measure_and_write_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", *FAST_ARGS, "--out", "bench.json"]) == 0
        out = capsys.readouterr().out
        assert SCENARIO in out
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["runs"][0]["results"][0]["name"] == SCENARIO

    def test_compare_without_regression_exits_zero(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", *FAST_ARGS, "--out", "bench.json"]) == 0
        capsys.readouterr()
        # A generous gate: back-to-back runs of the same build only
        # differ by host noise, which must not flip the exit code.
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--compare",
                    "bench.json",
                    "--fail-on-regress",
                    "200",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "vs baseline" in out

    def test_injected_regression_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", *FAST_ARGS, "--out", "bench.json"]) == 0
        capsys.readouterr()
        # Doctor the baseline to claim the scenario used to be 10x
        # faster: the fresh measurement must trip the gate.
        payload = json.loads((tmp_path / "bench.json").read_text())
        rec = payload["runs"][-1]["results"][0]
        rec["wall_seconds_median"] /= 10.0
        (tmp_path / "bench.json").write_text(json.dumps(payload))
        assert main(["bench", *FAST_ARGS, "--compare", "bench.json"]) == 1
        out = capsys.readouterr().out
        assert f"REGRESSION: {SCENARIO}" in out

    def test_missing_baseline_is_an_error(self, capsys, tmp_path):
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--compare",
                    str(tmp_path / "absent.json"),
                ]
            )
            == 2
        )
        assert "no benchmark baseline" in capsys.readouterr().err

    def test_profile_report(self, capsys):
        assert main(["bench", *FAST_ARGS, "--profile", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hotspots for" in out


class TestBaselineLabel:
    """``--baseline LABEL``: gate against a named run, not just the last."""

    def _record(self, label):
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--label",
                    label,
                    "--out",
                    "bench.json",
                ]
            )
            == 0
        )

    def test_gates_against_the_named_run(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self._record("before")
        capsys.readouterr()
        # Doctor the *last* run to be absurdly fast; gating against the
        # honest "before" label must ignore it and pass.
        self._record("doctored")
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["runs"][-1]["label"] == "doctored"
        payload["runs"][-1]["results"][0]["wall_seconds_median"] /= 100.0
        (tmp_path / "bench.json").write_text(json.dumps(payload))
        capsys.readouterr()
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--compare",
                    "bench.json",
                    "--baseline",
                    "before",
                    "--fail-on-regress",
                    "400",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "vs baseline 'before'" in out

    def test_latest_occurrence_of_a_repeated_label_wins(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self._record("before")
        self._record("before")
        payload = json.loads((tmp_path / "bench.json").read_text())
        # Doctor the *older* duplicate: it must not be the one compared.
        payload["runs"][0]["results"][0]["wall_seconds_median"] /= 1e6
        (tmp_path / "bench.json").write_text(json.dumps(payload))
        capsys.readouterr()
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--compare",
                    "bench.json",
                    "--baseline",
                    "before",
                    "--fail-on-regress",
                    "400",
                ]
            )
            == 0
        )

    def test_unknown_label_is_a_clean_error(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self._record("before")
        capsys.readouterr()
        assert (
            main(
                [
                    "bench",
                    *FAST_ARGS,
                    "--compare",
                    "bench.json",
                    "--baseline",
                    "no-such-label",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "no benchmark run labelled 'no-such-label'" in err
        assert "before" in err  # the stored labels are listed

    def test_baseline_without_compare_is_an_error(self, capsys):
        assert (
            main(["bench", *FAST_ARGS, "--baseline", "before"]) == 2
        )
        err = capsys.readouterr().err
        assert "--compare" in err
