"""Scenario registry: lookup, kinds, and repeat determinism."""

import pytest

from repro.errors import BenchmarkError
from repro.perf import ScenarioContext, get_scenario, scenario_names, scenarios
from repro.perf.scenarios import MACRO, MICRO, _REGISTRY, register


class TestRegistry:
    def test_unknown_scenario(self):
        with pytest.raises(BenchmarkError, match="unknown scenario"):
            get_scenario("macro.unheard_of")

    def test_names_are_sorted_and_kinded(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "macro.vgg19_fela" in scenario_names(MACRO)
        assert "micro.token_lifecycle" in scenario_names(MICRO)
        assert not set(scenario_names(MACRO)) & set(scenario_names(MICRO))
        assert {s.kind for s in scenarios(MACRO)} == {MACRO}

    def test_bad_kind_rejected(self):
        with pytest.raises(BenchmarkError, match="kind"):
            register("meso.x", "meso", "neither macro nor micro")

    def test_duplicate_name_rejected(self):
        name = "micro.test_duplicate_probe"
        register(name, MICRO, "probe")(lambda ctx: None)
        try:
            with pytest.raises(BenchmarkError, match="duplicate"):
                register(name, MICRO, "probe again")(lambda ctx: None)
        finally:
            _REGISTRY.pop(name, None)


class TestScenarioDeterminism:
    def test_repeat_runs_produce_identical_stats(self):
        scenario = get_scenario("micro.sim_event_churn")
        run_once = scenario.build(ScenarioContext())
        assert run_once() == run_once()
