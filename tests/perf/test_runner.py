"""Benchmark runner: timing summary + the determinism tripwire."""

import pytest

from repro.errors import BenchmarkError
from repro.perf import measure_scenario, run_benchmarks
from repro.perf.scenarios import Scenario, ScenarioStats


def make_scenario(builder, name="test.scenario", kind="micro"):
    return Scenario(
        name=name, kind=kind, description="test-only", _builder=builder
    )


def constant_scenario():
    def build(_ctx):
        def run_once():
            return ScenarioStats(simulated_seconds=4.0, events=200)

        return run_once

    return make_scenario(build)


class TestMeasureScenario:
    def test_summary_fields(self):
        m = measure_scenario(constant_scenario(), repeats=3, warmup=1)
        assert m.name == "test.scenario"
        assert m.kind == "micro"
        assert m.repeats == 3 and m.warmup == 1
        assert len(m.wall_seconds) == 3
        assert m.wall_seconds_median > 0
        assert m.wall_seconds_iqr >= 0
        assert m.simulated_seconds == 4.0
        assert m.events == 200
        assert m.sim_seconds_per_wall_second > 0
        assert m.events_per_second > 0
        assert m.peak_rss_kb > 0
        # The stored record carries the same figures.
        rec = m.to_record()
        assert rec.name == m.name
        assert rec.wall_seconds_median == m.wall_seconds_median

    def test_nondeterministic_scenario_raises(self):
        def build(_ctx):
            counter = iter(range(100))

            def run_once():
                return ScenarioStats(
                    simulated_seconds=1.0, events=next(counter)
                )

            return run_once

        with pytest.raises(BenchmarkError, match="nondeterministic"):
            measure_scenario(make_scenario(build), repeats=2, warmup=0)

    def test_single_repeat_has_zero_iqr(self):
        m = measure_scenario(constant_scenario(), repeats=1, warmup=0)
        assert m.wall_seconds_iqr == 0.0

    def test_bad_repeats_and_warmup(self):
        with pytest.raises(BenchmarkError, match="repeat"):
            measure_scenario(constant_scenario(), repeats=0)
        with pytest.raises(BenchmarkError, match="warmup"):
            measure_scenario(constant_scenario(), warmup=-1)

    def test_unknown_scenario_name(self):
        with pytest.raises(BenchmarkError, match="unknown scenario"):
            measure_scenario("micro.does_not_exist")


class TestRunBenchmarks:
    def test_empty_selection_rejected(self):
        with pytest.raises(BenchmarkError, match="no scenarios"):
            run_benchmarks([], label="x")

    def test_real_micro_scenario_end_to_end(self):
        run = run_benchmarks(
            ["micro.object_churn"], label="t", repeats=1, warmup=0
        )
        assert run.label == "t"
        (rec,) = run.records
        assert rec.name == "micro.object_churn"
        assert rec.kind == "micro"
        assert rec.events > 0
