"""The optimized engine reproduces the pre-fault ``total_time`` pins.

Every hot-path optimization in this package (slotted events, the inlined
run loop, count-based water-filling, batched ``transfer_many``, the
distributor's cached CTD levels) claims bit-identical simulation.  This
test holds that claim against the five pinned values recorded before the
fault layer existed — byte-for-byte, via ``repr`` equality — and repeats
the runs with the tracer attached, because observability must never
perturb the schedule either.
"""

import pytest

from repro.obs import Tracer
from tests.faults.test_zero_perturbation import CASES, PINNED, _config


def _total_time(partition, cls, straggler, tracer, **kwargs):
    from repro.hardware import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = cls(
        _config(partition, **kwargs),
        cluster,
        straggler=straggler,
        tracer=tracer,
    )
    return runtime.run().total_time


@pytest.mark.parametrize("traced", [False, True], ids=["untraced", "traced"])
@pytest.mark.parametrize("name", sorted(CASES))
def test_optimized_engine_matches_pins(name, traced, vgg19_partition):
    cls, make_straggler, kwargs = CASES[name]
    tracer = Tracer() if traced else None
    total = _total_time(
        vgg19_partition, cls, make_straggler(), tracer, **kwargs
    )
    assert repr(total) == PINNED[name]
