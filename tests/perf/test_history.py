"""Bench trend reporting over the full regression-store history."""

import pytest

from repro.errors import BenchmarkError
from repro.perf import (
    append_run,
    load_store,
    render_history,
    save_store,
    scenario_history,
)

from tests.store.test_ledger import _bench_run


def _record(run, median):
    import dataclasses

    return dataclasses.replace(
        run, records=tuple(
            dataclasses.replace(record, wall_seconds_median=median)
            for record in run.records
        )
    )


@pytest.fixture()
def store(tmp_path):
    path = tmp_path / "bench.json"
    for label, median in (("v0", 0.4), ("v1", 0.2), ("v2", 0.3)):
        append_run(path, _record(_bench_run(label), median))
    return path


class TestScenarioHistory:
    def test_one_point_per_run_in_order(self, store):
        history = scenario_history(load_store(store), "micro.example")
        assert history == [("v0", 0.4), ("v1", 0.2), ("v2", 0.3)]

    def test_unknown_scenario_names_the_known_ones(self, store):
        with pytest.raises(BenchmarkError, match="micro.example"):
            scenario_history(load_store(store), "nope")


class TestRenderHistory:
    def test_summary_and_sparkline(self, store):
        text = render_history(load_store(store), "micro.example")
        assert "History of 'micro.example' (3 runs)" in text
        assert "first 0.4000s" in text
        assert "min 0.2000s" in text
        assert "last 0.3000s" in text
        assert "trend " in text
        # Percent-vs-first column: v1 halved the wall clock.
        assert "-50.0%" in text

    def test_cli_history_flag(self, store, capsys):
        from repro.cli import main

        assert main(
            ["bench", "--history", "micro.example",
             "--compare", str(store)]
        ) == 0
        out = capsys.readouterr().out
        assert "History of 'micro.example'" in out

    def test_cli_history_missing_store(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["bench", "--history", "x",
             "--compare", str(tmp_path / "none.json")]
        ) == 2
        assert "no benchmark baseline" in capsys.readouterr().err

    def test_even_length_history_averages_the_middles(self, store):
        # Sorted walls 0.2 / 0.3 / 0.4 / 0.8: the median must be the
        # mean of the two middles (0.35), not the upper one (0.4).
        append_run(store, _record(_bench_run("v3"), 0.8))
        text = render_history(load_store(store), "micro.example")
        assert "median 0.3500s" in text

    def test_odd_length_history_keeps_exact_middle(self, store):
        text = render_history(load_store(store), "micro.example")
        assert "median 0.3000s" in text

    def test_cli_unknown_scenario_is_a_clean_error(self, store, capsys):
        from repro.cli import main

        assert main(
            ["bench", "--history", "micro.nope",
             "--compare", str(store)]
        ) == 2
        err = capsys.readouterr().err
        assert "no recorded runs measure scenario 'micro.nope'" in err
        assert "Traceback" not in err

    def test_cli_empty_store_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.json"
        save_store(path, [])
        assert main(
            ["bench", "--history", "micro.example",
             "--compare", str(path)]
        ) == 2
        err = capsys.readouterr().err
        assert "no recorded runs measure" in err
        assert "Traceback" not in err

    def test_render_history_empty_walls_raises_cleanly(self):
        with pytest.raises(BenchmarkError, match="no recorded runs"):
            render_history([], "micro.example")
