"""Regression store + comparator coverage.

The comparator is a CI gate: a corrupt or stale baseline must raise, a
real regression must be classified as one, and noise inside the
threshold must not.
"""

import json

import pytest

from repro.errors import BenchmarkError
from repro.perf import (
    SCHEMA_VERSION,
    BenchRun,
    ScenarioRecord,
    append_run,
    compare_runs,
    load_store,
    save_store,
)


def record(name: str, wall: float) -> ScenarioRecord:
    return ScenarioRecord(
        name=name,
        kind="micro",
        repeats=3,
        warmup=1,
        wall_seconds=(wall, wall, wall),
        wall_seconds_median=wall,
        wall_seconds_iqr=0.0,
        simulated_seconds=2.0,
        events=100,
        sim_seconds_per_wall_second=2.0 / wall if wall else 0.0,
        events_per_second=100 / wall if wall else 0.0,
        peak_rss_kb=1000.0,
    )


def run(label: str, walls: dict[str, float]) -> BenchRun:
    return BenchRun(
        label=label,
        records=tuple(record(name, wall) for name, wall in walls.items()),
    )


class TestStoreFormat:
    def test_missing_baseline_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="no benchmark baseline"):
            load_store(tmp_path / "absent.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError, match="malformed"):
            load_store(path)

    def test_top_level_must_be_object(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("[]")
        with pytest.raises(BenchmarkError, match="top level"):
            load_store(path)

    def test_old_schema_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": 0, "runs": []}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_store(path)

    def test_missing_schema_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"runs": []}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_store(path)

    def test_runs_must_be_list(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_VERSION, "runs": "oops"})
        )
        with pytest.raises(BenchmarkError, match="'runs' must be a list"):
            load_store(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        broken = run("r", {"micro.a": 1.0}).to_dict()
        del broken["results"][0]["wall_seconds_median"]
        path.write_text(
            json.dumps({"schema": SCHEMA_VERSION, "runs": [broken]})
        )
        with pytest.raises(BenchmarkError, match="malformed scenario"):
            load_store(path)

    def test_roundtrip_and_append(self, tmp_path):
        path = tmp_path / "bench.json"
        first = run("before", {"micro.a": 1.0, "macro.b": 2.0})
        append_run(path, first)  # creates the file
        second = run("after", {"micro.a": 0.5})
        runs = append_run(path, second)
        assert [r.label for r in runs] == ["before", "after"]
        reloaded = load_store(path)
        assert reloaded == [first, second]

    def test_committed_store_loads(self):
        # The repo-root baseline must always be readable by the tool.
        runs = load_store("BENCH_core.json")
        assert len(runs) >= 2
        names = {rec.name for rec in runs[-1].records}
        assert "macro.vgg19_fela" in names


class TestComparator:
    def test_regression_above_threshold(self):
        cmp = compare_runs(
            run("now", {"micro.a": 1.3}),
            run("base", {"micro.a": 1.0}),
            threshold_pct=20.0,
        )
        (row,) = cmp.rows
        assert row.status == "regression"
        assert row.delta_pct == pytest.approx(30.0)
        assert cmp.regressions == [row]
        assert "REGRESSION: micro.a" in cmp.render()

    def test_slowdown_below_threshold_is_ok(self):
        cmp = compare_runs(
            run("now", {"micro.a": 1.1}),
            run("base", {"micro.a": 1.0}),
            threshold_pct=20.0,
        )
        assert cmp.rows[0].status == "ok"
        assert not cmp.regressions
        assert "REGRESSION" not in cmp.render()

    def test_exactly_at_threshold_is_ok(self):
        cmp = compare_runs(
            run("now", {"micro.a": 1.2}),
            run("base", {"micro.a": 1.0}),
            threshold_pct=20.0,
        )
        assert cmp.rows[0].status == "ok"

    def test_improvement(self):
        cmp = compare_runs(
            run("now", {"micro.a": 0.5}),
            run("base", {"micro.a": 1.0}),
            threshold_pct=20.0,
        )
        (row,) = cmp.rows
        assert row.status == "improvement"
        assert row.speedup == pytest.approx(2.0)
        assert cmp.improvements == [row]

    def test_scenario_missing_from_baseline_is_new(self):
        cmp = compare_runs(
            run("now", {"micro.a": 1.0, "micro.b": 1.0}),
            run("base", {"micro.a": 1.0}),
        )
        by_name = {row.scenario: row for row in cmp.rows}
        assert by_name["micro.b"].status == "new"
        assert by_name["micro.b"].baseline_wall is None
        assert not cmp.regressions

    def test_negative_threshold_rejected(self):
        with pytest.raises(BenchmarkError, match="threshold"):
            compare_runs(
                run("now", {"micro.a": 1.0}),
                run("base", {"micro.a": 1.0}),
                threshold_pct=-1.0,
            )

    def test_non_positive_baseline_rejected(self):
        with pytest.raises(BenchmarkError, match="non-positive"):
            compare_runs(
                run("now", {"micro.a": 1.0}),
                run("base", {"micro.a": 0.0}),
            )
