"""Run ledger: both backends, append-only history, determinism, checks."""

import json

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.errors import LedgerError
from repro.faults import FaultController, parse_faults
from repro.hardware import Cluster, ClusterSpec
from repro.obs import Sampler, Tracer
from repro.perf.store import BenchRun, ScenarioRecord
from repro.store import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    run_row_from_result,
)
from repro.store.ledger import TABLES, WALL_COLUMNS

BACKENDS = ("ledger.sqlite", "ledger.jsonl")


def _run(partition, *, sampler=None, tracer=None, faults=None):
    config = FelaConfig(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    return FelaRuntime(
        config,
        Cluster(ClusterSpec(num_nodes=4)),
        sampler=sampler,
        tracer=tracer,
        faults=faults,
    ).run()


def _bench_run(label="bench"):
    return BenchRun(
        label=label,
        records=(
            ScenarioRecord(
                name="micro.example",
                kind="micro",
                repeats=3,
                warmup=1,
                wall_seconds=(0.1, 0.2, 0.3),
                wall_seconds_median=0.2,
                wall_seconds_iqr=0.1,
                simulated_seconds=5.0,
                events=100,
                sim_seconds_per_wall_second=25.0,
                events_per_second=500.0,
                peak_rss_kb=1024.0,
            ),
        ),
    )


@pytest.mark.parametrize("filename", BACKENDS)
class TestRoundTrip:
    def test_run_with_samples_and_events_round_trips(
        self, tmp_path, filename, vgg19_partition
    ):
        sampler = Sampler(0.5)
        tracer = Tracer()
        result = _run(vgg19_partition, sampler=sampler, tracer=tracer)
        with RunLedger(tmp_path / filename) as ledger:
            run_id = ledger.record_run(
                command="run",
                kind="fela",
                result=result,
                label="vgg19",
                config=run_row_from_result(result),
                samples=sampler.samples,
                events=tracer.events,
            )
        with RunLedger(tmp_path / filename) as ledger:
            rows = ledger.runs()
            assert len(rows) == 1
            row = rows[0]
            assert row["run_id"] == run_id == 0
            assert row["model"] == "vgg19"
            assert row["total_time"] == result.total_time
            assert row["config"]["weights"] == [1, 2, 8]
            assert row["stats"]["ts_requests"] == (
                result.stats["ts_requests"]
            )
            samples = ledger.samples(run_id)
            assert len(samples) == len(sampler.samples)
            assert samples[0]["time"] == 0.0
            events = ledger.events(run_id)
            assert len(events) == len(tracer.events)
            assert events[0]["args"] == dict(tracer.events[0].args)
            assert ledger.validate() == []

    def test_sweep_and_bench_round_trip(self, tmp_path, filename):
        with RunLedger(tmp_path / filename) as ledger:
            sweep_id = ledger.start_sweep(label="tune", total_jobs=2)
            ledger.record_sweep_job(
                sweep_id, index=0, kind="RunJob", status="cached",
                cache_hit=True,
            )
            ledger.record_sweep_job(
                sweep_id, index=1, kind="RunJob", status="started"
            )
            ledger.record_sweep_job(
                sweep_id, index=1, kind="RunJob", status="done",
                elapsed_wall=0.25,
            )
            bench_id = ledger.record_bench_run(_bench_run())
        with RunLedger(tmp_path / filename) as ledger:
            assert ledger.sweeps()[0]["total_jobs"] == 2
            jobs = ledger.sweep_jobs(sweep_id)
            assert [job["status"] for job in jobs] == [
                "cached", "started", "done"
            ]
            assert jobs[0]["cache_hit"] == 1
            records = ledger.bench_records(bench_id)
            assert records[0]["scenario"] == "micro.example"
            assert ledger.validate() == []

    def test_ids_are_sequential_across_reopens(self, tmp_path, filename):
        path = tmp_path / filename
        with RunLedger(path) as ledger:
            assert ledger.start_sweep(label="a", total_jobs=1) == 0
        with RunLedger(path) as ledger:
            assert ledger.start_sweep(label="b", total_jobs=1) == 1
            assert [row["label"] for row in ledger.sweeps()] == ["a", "b"]

    def test_unknown_sweep_status_is_rejected(self, tmp_path, filename):
        with RunLedger(tmp_path / filename) as ledger:
            sweep_id = ledger.start_sweep(label="s", total_jobs=1)
            with pytest.raises(LedgerError, match="status"):
                ledger.record_sweep_job(
                    sweep_id, index=0, kind="J", status="finished"
                )


class TestSchema:
    def test_schema_version_is_pinned_at_creation(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).close()
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {
            "table": "meta",
            "key": "schema",
            "value": str(LEDGER_SCHEMA_VERSION),
        }

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            '{"table": "meta", "key": "schema", "value": "999"}\n'
        )
        with pytest.raises(LedgerError, match="schema 999"):
            RunLedger(path)

    def test_malformed_jsonl_line_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json\n")
        with pytest.raises(LedgerError, match="line 1"):
            RunLedger(path)

    def test_unknown_table_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"table": "nope", "x": 1}\n')
        with pytest.raises(LedgerError, match="unknown table"):
            RunLedger(path)

    def test_wall_columns_are_the_only_timestamps(self):
        # The determinism contract: every nondeterministic column is
        # named *_wall, so consumers can mask them mechanically.
        for table, columns in TABLES.items():
            for column in columns:
                if column.endswith("_wall"):
                    assert column in WALL_COLUMNS, (table, column)


class TestDeterminism:
    def test_rows_identical_modulo_wall_columns(
        self, tmp_path, vgg19_partition
    ):
        paths = (tmp_path / "a.jsonl", tmp_path / "b.jsonl")
        for path in paths:
            sampler = Sampler(0.5)
            faults = FaultController(parse_faults("crash:0@1.0"))
            result = _run(
                vgg19_partition, sampler=sampler, faults=faults
            )
            with RunLedger(path) as ledger:
                ledger.record_run(
                    command="run",
                    kind="fela",
                    result=result,
                    config=run_row_from_result(result),
                    samples=sampler.samples,
                )
                sweep_id = ledger.start_sweep(label="s", total_jobs=1)
                ledger.record_sweep_job(
                    sweep_id, index=0, kind="RunJob", status="done",
                    elapsed_wall=0.125,
                )

        def masked(path):
            rows = []
            for line in path.read_text().splitlines():
                payload = json.loads(line)
                for column in WALL_COLUMNS:
                    payload.pop(column, None)
                rows.append(payload)
            return rows

        assert masked(paths[0]) == masked(paths[1])


class TestValidate:
    def test_flags_unknown_series_and_bad_references(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).close()
        with path.open("a") as handle:
            handle.write(json.dumps({
                "table": "samples", "run_id": 7, "time": -1.0,
                "series": "nope", "key": "", "value": 0.0,
            }) + "\n")
            handle.write(json.dumps({
                "table": "sweep_jobs", "sweep_id": 3, "job_index": 0,
                "job_kind": "J", "status": "started", "cache_hit": 0,
                "elapsed_wall": 0.0, "created_wall": 0.0,
            }) + "\n")
        with RunLedger(path) as ledger:
            problems = ledger.validate()
        assert any("unknown run 7" in problem for problem in problems)
        assert any("unknown sweep 3" in problem for problem in problems)

    def test_flags_invalid_phase_codes(self, tmp_path, vgg19_partition):
        path = tmp_path / "ledger.jsonl"
        result = _run(vgg19_partition)
        with RunLedger(path) as ledger:
            ledger.record_run(command="run", kind="fela", result=result)
        with path.open("a") as handle:
            handle.write(json.dumps({
                "table": "samples", "run_id": 0, "time": 0.0,
                "series": "worker.phase", "key": "0", "value": 42.0,
            }) + "\n")
        with RunLedger(path) as ledger:
            problems = ledger.validate()
        assert any("phase code" in problem for problem in problems)
