"""Dashboard rendering from a populated ledger, plus the two CLIs."""

import pytest

from repro.cli import main
from repro.core import FelaConfig, FelaRuntime
from repro.faults import FaultController, parse_faults
from repro.hardware import Cluster, ClusterSpec
from repro.obs import Sampler, Tracer
from repro.store import (
    RunLedger,
    load_dashboard,
    render_html_dashboard,
    render_text_dashboard,
    run_row_from_result,
)
from repro.store.dashboard import sparkline

from tests.store.test_ledger import _bench_run


@pytest.fixture()
def populated(tmp_path, vgg19_partition):
    """A ledger holding one faulted+sampled+traced run, sweep, bench,
    and one cluster scheduler run."""
    path = tmp_path / "ledger.sqlite"
    sampler = Sampler(0.5)
    tracer = Tracer()
    faults = FaultController(parse_faults("crash:0@1.0"))
    config = FelaConfig(
        partition=vgg19_partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    result = FelaRuntime(
        config,
        Cluster(ClusterSpec(num_nodes=4)),
        sampler=sampler,
        tracer=tracer,
        faults=faults,
    ).run()
    with RunLedger(path) as ledger:
        ledger.record_run(
            command="run",
            kind="fela",
            result=result,
            label="vgg19",
            config=run_row_from_result(result),
            samples=sampler.samples,
            events=tracer.events,
        )
        sweep_id = ledger.start_sweep(label="tune", total_jobs=2)
        ledger.record_sweep_job(
            sweep_id, index=0, kind="RunJob", status="cached",
            cache_hit=True,
        )
        ledger.record_sweep_job(
            sweep_id, index=1, kind="RunJob", status="started"
        )
        ledger.record_sweep_job(
            sweep_id, index=1, kind="RunJob", status="done",
            elapsed_wall=0.5,
        )
        ledger.record_bench_run(_bench_run("first"))
        ledger.record_bench_run(_bench_run("second"))
        from repro.cluster import (
            ClusterSimulator,
            TraceSpec,
            generate_trace,
        )

        trace = generate_trace(
            TraceSpec(kind="bursty", num_jobs=4, seed=3,
                      mean_interarrival=10.0)
        )
        ledger.record_cluster_run(
            ClusterSimulator(trace, "fair", 4).run(),
            label="smoke",
            trace="bursty/jobs=4/seed=3",
        )
    return path


class TestSparkline:
    def test_scales_to_the_block_range(self):
        assert sparkline([0.0, 1.0]) == "▁█"

    def test_flat_series_is_mid_level(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"

    def test_empty_is_empty(self):
        assert sparkline([]) == ""


class TestLoadDashboard:
    def test_model_holds_runs_sweeps_and_bench(self, populated):
        with RunLedger(populated) as ledger:
            data = load_dashboard(ledger)
        assert len(data["runs"]) == 1
        entry = data["runs"][0]
        assert entry["run"]["model"] == "vgg19"
        assert entry["samples"], "sampled run must carry series rows"
        # Fault-category events become curve markers.
        assert any(
            marker["name"] == "worker.failed"
            for marker in entry["markers"]
        )
        sweep = data["sweeps"][0]
        assert sweep["completed"] == 2  # one cached + one done
        assert sweep["cache_hits"] == 1
        assert data["bench"]["micro.example"] == [0.2, 0.2]
        cluster = data["cluster"][0]
        assert cluster["run"]["scheduler"] == "fair"
        assert len(cluster["jobs"]) == 4

    def test_empty_ledger_renders_placeholder(self, tmp_path):
        with RunLedger(tmp_path / "empty.sqlite") as ledger:
            data = load_dashboard(ledger)
        assert "holds no runs" in render_text_dashboard(data)
        assert "<html" in render_html_dashboard(data)


class TestTextDashboard:
    def test_sections_and_heatmap(self, populated):
        with RunLedger(populated) as ledger:
            text = render_text_dashboard(load_dashboard(ledger))
        assert "run 0: fela vgg19" in text
        # Heatmap rows for all four workers, with a dead tail for the
        # crashed one.
        for wid in range(4):
            assert f"w  {wid}" in text
        assert "X" in text
        assert "worker.failed" in text
        assert "throughput" in text
        assert "buffer depth" in text
        # Sweep and bench sections.
        assert "tune" in text
        assert "micro.example" in text
        # Cluster section: summary, Gantt, utilization, JCT CDF.
        assert "cluster run 0 [smoke]: fair" in text
        assert "job schedule" in text
        assert "pool GPUs in use" in text
        assert "JCT CDF" in text

    def test_deterministic_rendering(self, populated):
        with RunLedger(populated) as ledger:
            first = render_text_dashboard(load_dashboard(ledger))
        with RunLedger(populated) as ledger:
            second = render_text_dashboard(load_dashboard(ledger))
        assert first == second


class TestHtmlDashboard:
    def test_self_contained_document(self, populated):
        with RunLedger(populated) as ledger:
            html = render_html_dashboard(load_dashboard(ledger))
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        # No external fetches: everything inline.
        assert "http://" not in html
        assert "https://" not in html
        assert "<svg" in html
        assert "Run 0" in html
        assert "worker.failed" in html
        # Cluster section: summary table, Gantt bars, JCT CDF.
        assert "Cluster run 0" in html
        assert "Job schedule" in html
        assert "JCT CDF" in html

    def test_parses_cleanly(self, populated):
        from html.parser import HTMLParser

        seen = []

        class Collector(HTMLParser):
            def handle_starttag(self, tag, attrs):
                seen.append(tag)

        with RunLedger(populated) as ledger:
            Collector().feed(
                render_html_dashboard(load_dashboard(ledger))
            )
        assert "svg" in seen and "table" in seen


class TestDashboardCli:
    def test_text_to_stdout(self, populated, capsys):
        assert main(["dashboard", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "run 0: fela vgg19" in out

    def test_html_to_file(self, populated, tmp_path, capsys):
        out_path = tmp_path / "dash.html"
        assert main(
            ["dashboard", str(populated), "--out", str(out_path)]
        ) == 0
        assert "wrote dashboard" in capsys.readouterr().out
        assert out_path.read_text().startswith("<!DOCTYPE html>")

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert main(["dashboard", str(tmp_path / "nope.sqlite")]) == 2
        assert "no run ledger" in capsys.readouterr().err


class TestValidatorCli:
    def test_ok_and_invalid_exit_codes(self, populated, tmp_path, capsys):
        from repro.store.validate import main as validate_main

        assert validate_main([str(populated)]) == 0
        assert "OK" in capsys.readouterr().out
        bad = tmp_path / "bad.jsonl"
        RunLedger(bad).close()
        with bad.open("a") as handle:
            handle.write(
                '{"table": "samples", "run_id": 9, "time": 0.0, '
                '"series": "nope", "key": "", "value": 0.0}\n'
            )
        assert validate_main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
