"""Unit tests for the GPU saturation and memory models."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware import GpuSpec
from repro.models import ConvSpec, LinearSpec, ModelGraph, get_model


def single_layer(kind):
    """The paper's Fig. 1 probe layers."""
    if kind == "conv_front":
        graph = ModelGraph(
            "p", (64, 224, 224), [ConvSpec(name="c", out_channels=64)]
        )
    elif kind == "conv_back":
        graph = ModelGraph(
            "p", (512, 14, 14), [ConvSpec(name="c", out_channels=512)]
        )
    elif kind == "fc":
        graph = ModelGraph("p", (4096,), [LinearSpec(name="f", out_features=4096)])
    else:
        raise ValueError(kind)
    return graph.layers[0]


class TestSaturation:
    """The knee positions the paper publishes (Fig. 1, footnotes 12-14)."""

    def test_front_conv_knee_near_16(self, default_gpu):
        knee = default_gpu.knee_batch(
            single_layer("conv_front").forward_flops,
            single_layer("conv_front").activation_floats,
        )
        assert 8 < knee <= 16.5

    def test_back_conv_knee_near_64(self, default_gpu):
        knee = default_gpu.knee_batch(
            single_layer("conv_back").forward_flops,
            single_layer("conv_back").activation_floats,
        )
        assert 32 < knee <= 65

    def test_fc_knee_near_2048(self, default_gpu):
        knee = default_gpu.knee_batch(
            single_layer("fc").forward_flops,
            single_layer("fc").activation_floats,
        )
        assert 1024 < knee <= 2048

    def test_throughput_flat_above_knee(self, default_gpu):
        layer = single_layer("conv_front")
        t64 = default_gpu.layer_throughput(layer, 64)
        t1024 = default_gpu.layer_throughput(layer, 1024)
        assert t1024 == pytest.approx(t64, rel=0.01)

    def test_throughput_linear_below_knee(self, default_gpu):
        layer = single_layer("fc")
        t16 = default_gpu.layer_throughput(layer, 16)
        t32 = default_gpu.layer_throughput(layer, 32)
        assert t32 == pytest.approx(2 * t16, rel=0.02)

    def test_train_time_monotone_in_batch(self, default_gpu):
        layer = single_layer("conv_back")
        times = [
            default_gpu.layer_train_time(layer, b) for b in (1, 8, 64, 512)
        ]
        assert times == sorted(times)

    def test_train_is_forward_plus_backward(self, default_gpu):
        layer = single_layer("conv_front")
        fwd = default_gpu.layer_forward_time(layer, 32)
        bwd = default_gpu.layer_backward_time(layer, 32)
        train = default_gpu.layer_train_time(layer, 32)
        # One kernel_overhead is double-counted when splitting phases.
        assert fwd + bwd == pytest.approx(
            train + default_gpu.kernel_overhead
        )

    def test_batch_below_one_rejected(self, default_gpu):
        with pytest.raises(ConfigurationError):
            default_gpu.layer_train_time(single_layer("fc"), 0)


class TestMemory:
    def test_vgg19_fits_at_32_not_64(self, default_gpu, vgg19):
        """Paper footnote 3: VGG19 batch > 32 exceeds the K40c's 12 GB."""
        assert default_gpu.fits(vgg19.layers, 32, vgg19.input_floats)
        assert not default_gpu.fits(vgg19.layers, 64, vgg19.input_floats)

    def test_max_batch_consistency(self, default_gpu, vgg19):
        max_batch = default_gpu.max_batch(vgg19.layers, vgg19.input_floats)
        assert default_gpu.fits(vgg19.layers, max_batch, vgg19.input_floats)
        assert not default_gpu.fits(
            vgg19.layers, max_batch + 1, vgg19.input_floats
        )

    def test_memory_monotone_in_batch(self, default_gpu, vgg19):
        m8 = default_gpu.memory_required(vgg19.layers, 8)
        m16 = default_gpu.memory_required(vgg19.layers, 16)
        assert m16 > m8

    def test_require_fits_raises(self, default_gpu, vgg19):
        with pytest.raises(CapacityError):
            default_gpu.require_fits(vgg19.layers, 512, vgg19.input_floats)

    def test_googlenet_fits_large_batches(self, default_gpu, googlenet):
        """The small 32x32 GoogLeNet fits far larger batches than VGG19."""
        assert default_gpu.max_batch(
            googlenet.layers, googlenet.input_floats
        ) > default_gpu.max_batch(get_model("vgg19").layers)

    def test_max_batch_zero_when_nothing_fits(self, vgg19):
        tiny = GpuSpec(memory_bytes=1e9)  # smaller than VGG19's params
        assert tiny.max_batch(vgg19.layers, vgg19.input_floats) == 0


class TestValidation:
    def test_bad_peak_flops(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(peak_flops=0)

    def test_bad_overhead(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(kernel_overhead=-1)

    def test_stack_time_is_sum_of_layers(self, default_gpu, vgg19):
        total = default_gpu.train_time(vgg19.layers, 16)
        assert total == pytest.approx(
            sum(
                default_gpu.layer_train_time(p, 16) for p in vgg19.layers
            )
        )
