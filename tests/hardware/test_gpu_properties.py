"""Property-based tests for the GPU saturation/memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import GpuSpec
from repro.models import ConvSpec, LinearSpec, ModelGraph

conv_shapes = st.tuples(
    st.integers(min_value=1, max_value=512),  # in channels
    st.integers(min_value=1, max_value=512),  # out channels
    st.integers(min_value=7, max_value=112),  # spatial size
)
batches = st.integers(min_value=1, max_value=4096)


def conv_profile(c_in, c_out, hw):
    graph = ModelGraph(
        "probe", (c_in, hw, hw),
        [ConvSpec(name="c", out_channels=c_out)],
    )
    return graph.layers[0]


@given(shape=conv_shapes, b1=batches, b2=batches)
@settings(max_examples=100)
def test_train_time_monotone_in_batch(shape, b1, b2):
    gpu = GpuSpec()
    profile = conv_profile(*shape)
    lo, hi = sorted((b1, b2))
    assert gpu.layer_train_time(profile, lo) <= gpu.layer_train_time(
        profile, hi
    ) + 1e-12


@given(shape=conv_shapes, batch=batches)
@settings(max_examples=100)
def test_throughput_never_exceeds_saturated_rate(shape, batch):
    """Samples/s is capped by peak_flops / train_flops_per_sample."""
    gpu = GpuSpec(kernel_overhead=0.0)
    profile = conv_profile(*shape)
    throughput = gpu.layer_throughput(profile, batch)
    cap = gpu.peak_flops / (3.0 * profile.forward_flops)
    assert throughput <= cap * (1 + 1e-9)


@given(shape=conv_shapes)
@settings(max_examples=100)
def test_knee_saturates_throughput(shape):
    """At 2x the knee, throughput is within a hair of the asymptote."""
    gpu = GpuSpec(kernel_overhead=0.0)
    profile = conv_profile(*shape)
    knee = gpu.knee_batch(profile.forward_flops, profile.activation_floats)
    batch = max(1, int(2 * knee))
    asymptote = gpu.peak_flops / (3.0 * profile.forward_flops)
    assert gpu.layer_throughput(profile, batch) >= 0.5 * asymptote


@given(shape=conv_shapes, b1=batches, b2=batches)
@settings(max_examples=100)
def test_memory_monotone_in_batch(shape, b1, b2):
    gpu = GpuSpec()
    profile = conv_profile(*shape)
    lo, hi = sorted((b1, b2))
    assert gpu.memory_required([profile], lo) <= gpu.memory_required(
        [profile], hi
    )


@given(
    features=st.integers(min_value=16, max_value=8192),
    batch=batches,
)
@settings(max_examples=100)
def test_fc_time_positive_and_finite(features, batch):
    gpu = GpuSpec()
    graph = ModelGraph(
        "probe", (features,),
        [LinearSpec(name="f", out_features=features)],
    )
    time = gpu.layer_train_time(graph.layers[0], batch)
    assert 0 < time < float("inf")


@given(shape=conv_shapes)
@settings(max_examples=60)
def test_max_batch_boundary(shape):
    gpu = GpuSpec()
    profile = conv_profile(*shape)
    limit = 1 << 20
    max_batch = gpu.max_batch([profile], limit=limit)
    assert max_batch <= limit
    if max_batch == 0:
        assert not gpu.fits([profile], 1)
    else:
        assert gpu.fits([profile], max_batch)
        if max_batch < limit:  # tiny layers legitimately hit the cap
            assert not gpu.fits([profile], max_batch + 1)
