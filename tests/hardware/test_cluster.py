"""Unit tests for nodes and clusters."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec


class TestClusterSpec:
    def test_defaults_match_paper_testbed(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 8
        assert spec.link_bandwidth == pytest.approx(1.25e9)  # 10 Gbps
        assert spec.gpu.memory_bytes == pytest.approx(12e9)  # K40c

    def test_effective_bandwidth(self):
        spec = ClusterSpec(link_bandwidth=1000.0, network_efficiency=0.5)
        assert spec.effective_bandwidth == 500.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(link_bandwidth=-1)
        with pytest.raises(ConfigurationError):
            ClusterSpec(network_efficiency=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(network_efficiency=1.5)


class TestNode:
    def test_compute_occupies_gpu_exclusively(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        env = cluster.env
        finish = []

        def job(node, seconds):
            yield from node.compute(seconds)
            finish.append(env.now)

        env.process(job(cluster[0], 2))
        env.process(job(cluster[0], 3))  # same GPU: serialized
        env.process(job(cluster[1], 1))  # different GPU: parallel
        env.run()
        assert sorted(finish) == [1, 2, 5]

    def test_busy_time_accounting(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)

        def job(node):
            yield from node.compute(4)

        cluster.env.process(job(cluster[2]))
        cluster.env.run()
        assert cluster[2].busy_time == 4
        assert cluster[0].busy_time == 0

    def test_injected_delay_prolongs_next_compute(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        cluster[0].add_delay(5)

        def job(node):
            yield from node.compute(1)

        cluster.env.process(job(cluster[0]))
        cluster.env.run()
        assert cluster.env.now == 6
        # Consumed: a second compute is unaffected.
        assert cluster[0].take_pending_delay() == 0

    def test_negative_delay_rejected(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        with pytest.raises(ConfigurationError):
            cluster[0].add_delay(-1)

    def test_send_uses_fabric(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        done = []

        def proc(env):
            yield cluster[0].send(1, small_cluster_spec.link_bandwidth)
            done.append(env.now)

        cluster.env.process(proc(cluster.env))
        cluster.env.run()
        assert done[0] == pytest.approx(1.0)


class TestCluster:
    def test_iteration_and_indexing(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        assert len(cluster) == 4
        assert [n.node_id for n in cluster] == [0, 1, 2, 3]
        assert cluster[3].node_id == 3

    def test_utilization(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        assert cluster.utilization() == [0.0] * 4

        def job(node):
            yield from node.compute(1)

        def idle(env):
            yield env.timeout(2)

        cluster.env.process(job(cluster[0]))
        cluster.env.process(idle(cluster.env))
        cluster.env.run()
        util = cluster.utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0
