"""Tests for heterogeneous (per-node GPU speed) clusters."""

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.baselines import DataParallel
from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec


class TestSpeedFactors:
    def test_default_is_homogeneous(self):
        spec = ClusterSpec(num_nodes=4)
        assert [spec.speed_factor(i) for i in range(4)] == [1.0] * 4

    def test_factor_count_validated(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=4, gpu_speed_factors=(1.0, 1.0))

    def test_factor_sign_validated(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=2, gpu_speed_factors=(1.0, 0.0))

    def test_slow_node_computes_slower(self):
        spec = ClusterSpec(
            num_nodes=2, latency=0.0, gpu_speed_factors=(1.0, 0.5)
        )
        cluster = Cluster(spec)
        finish = {}

        def job(node_id):
            yield from cluster[node_id].compute(2.0)
            finish[node_id] = cluster.env.now

        cluster.env.process(job(0))
        cluster.env.process(job(1))
        cluster.env.run()
        assert finish[0] == pytest.approx(2.0)
        assert finish[1] == pytest.approx(4.0)


class TestPermanentStragglerWorkloads:
    def test_fela_outruns_dp_on_heterogeneous_cluster(
        self, vgg19, vgg19_partition
    ):
        """A permanently slow GPU hurts BSP data parallelism every
        iteration; Fela's token pull re-balances around it.  The slow
        node sits outside the conditional subset (CTD pins the
        communication-heavy FC tokens on the subset workers, so placing a
        known-slow GPU there would be a deliberate misconfiguration)."""
        factors = (1.0,) * 7 + (0.25,)
        spec = ClusterSpec(num_nodes=8, gpu_speed_factors=factors)

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=512,
            num_workers=8,
            weights=(1, 2, 8),
            conditional_subset_size=2,
            iterations=4,
        )
        fela = FelaRuntime(config, Cluster(spec)).run()
        dp = DataParallel(
            vgg19, 512, 8, iterations=4, cluster=Cluster(spec)
        ).run()
        assert fela.average_throughput > dp.average_throughput

        # And the slow worker really trains fewer tokens than the rest.
        work = fela.records[-1].work_by_worker
        assert work[-1] < max(work)

    def test_heterogeneity_slows_both_runtimes(self, vgg19):
        uniform = DataParallel(vgg19, 256, 8, iterations=2).run()
        slow_spec = ClusterSpec(
            num_nodes=8, gpu_speed_factors=(0.25,) + (1.0,) * 7
        )
        degraded = DataParallel(
            vgg19, 256, 8, iterations=2, cluster=Cluster(slow_spec)
        ).run()
        assert degraded.average_throughput < uniform.average_throughput
