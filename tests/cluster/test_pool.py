"""GPU-pool accounting: exact integration, exact breakpoints."""

import pytest

from repro.cluster import GpuPool
from repro.errors import CapacityError, ConfigurationError


class TestGpuPool:
    def test_timeline_records_every_change(self):
        pool = GpuPool(8)
        pool.allocate(4, 1.0)
        pool.allocate(2, 2.0)
        pool.release(6, 5.0)
        assert pool.timeline == [(0.0, 0), (1.0, 4), (2.0, 6), (5.0, 0)]
        assert pool.free == 8

    def test_same_instant_changes_coalesce(self):
        pool = GpuPool(4)
        pool.allocate(1, 1.0)
        pool.allocate(2, 1.0)
        assert pool.timeline == [(0.0, 0), (1.0, 3)]

    def test_gpu_seconds_integrate_exactly(self):
        pool = GpuPool(10)
        pool.allocate(5, 0.0)
        pool.release(5, 4.0)    # 20 gpu-s
        pool.allocate(10, 6.0)  # + 40 gpu-s through t=10
        assert pool.gpu_seconds(10.0) == pytest.approx(60.0)
        assert pool.mean_utilization(10.0) == pytest.approx(0.6)

    def test_zero_count_is_a_no_op(self):
        pool = GpuPool(2)
        pool.allocate(0, 3.0)
        assert pool.timeline == [(0.0, 0)]

    def test_over_allocation_and_over_release_rejected(self):
        pool = GpuPool(2)
        with pytest.raises(CapacityError):
            pool.allocate(3, 0.0)
        pool.allocate(2, 0.0)
        with pytest.raises(CapacityError):
            pool.release(3, 1.0)
        with pytest.raises(ConfigurationError):
            pool.allocate(-1, 0.0)
        with pytest.raises(ConfigurationError):
            GpuPool(0)
