"""Scheduler policies as pure functions of the job mix."""

import pytest

from repro.cluster import CostProfile, JobSpec, JobState, get_scheduler
from repro.cluster.schedulers import SCHEDULER_NAMES
from repro.cluster.simulator import STATUS_RUNNING
from repro.errors import ConfigurationError


def _job(
    job_id,
    *,
    min_workers=1,
    max_workers=4,
    compute=10.0,
    param_bytes=(1e6,),
    submit=0.0,
    running=False,
    admitted=0,
):
    spec = JobSpec(
        job_id=job_id,
        model="vgg19",
        total_batch=64,
        iterations=2,
        min_workers=min_workers,
        max_workers=max_workers,
        submit_time=submit,
    )
    cost = CostProfile(
        compute_seconds=compute,
        level_param_bytes=param_bytes,
        bandwidth=1e9,
    )
    state = JobState(spec, cost)
    if running:
        state.status = STATUS_RUNNING
        state.admitted_workers = admitted
    return state


class TestCostProfile:
    def test_single_worker_pays_no_sync(self):
        cost = CostProfile(10.0, [1e9], 1e9)
        assert cost.iteration_seconds(1) == pytest.approx(10.0)
        # Two workers halve compute but pay one ring step.
        assert cost.iteration_seconds(2) == pytest.approx(5.0 + 1.0)

    def test_communication_knee_caps_gain(self):
        # Tiny compute, huge parameters: adding workers only adds wire
        # time, so the marginal gain is negative immediately.
        bound = CostProfile(0.1, [8e9], 1e9)
        assert bound.marginal_gain(1) < 0
        # Pure compute keeps gaining.
        free = CostProfile(100.0, [1.0], 1e9)
        assert free.marginal_gain(1) > 0
        assert free.marginal_gain(4) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostProfile(0.0, [1.0], 1e9)
        with pytest.raises(ConfigurationError):
            CostProfile(1.0, [1.0], 0.0)
        with pytest.raises(ConfigurationError):
            CostProfile(1.0, [1.0], 1e9).iteration_seconds(0)


class TestFifo:
    def test_head_of_line_blocks_backfill(self):
        fifo = get_scheduler("fifo")
        running = [_job(0, running=True, admitted=6)]
        queued = [
            _job(1, max_workers=8),  # head: needs 8, only 2 free
            _job(2, max_workers=2),  # would fit, must NOT backfill
        ]
        plan = fifo.plan(8, running, queued)
        assert plan == {0: 6}

    def test_admits_in_order_while_whole_grants_fit(self):
        fifo = get_scheduler("fifo")
        queued = [_job(0, max_workers=4), _job(1, max_workers=4),
                  _job(2, max_workers=4)]
        plan = fifo.plan(8, [], queued)
        assert plan == {0: 4, 1: 4}

    def test_grant_clamps_to_pool_size(self):
        plan = get_scheduler("fifo").plan(4, [], [_job(0, max_workers=8)])
        assert plan == {0: 4}

    def test_never_resizes_running_jobs(self):
        running = [_job(0, running=True, admitted=3)]
        plan = get_scheduler("fifo").plan(8, running, [])
        assert plan[0] == 3
        assert get_scheduler("fifo").whole_allocation


class TestFairShare:
    def test_equal_split_clamped_to_bounds(self):
        fair = get_scheduler("fair")
        queued = [
            _job(0, max_workers=8),
            _job(1, max_workers=2),
            _job(2, max_workers=8),
        ]
        plan = fair.plan(12, [], queued)
        assert plan[1] == 2  # clamped at its ceiling
        assert plan[0] + plan[1] + plan[2] == 12
        assert abs(plan[0] - plan[2]) <= 1

    def test_uneven_leftover_goes_to_longest_admitted(self):
        fair = get_scheduler("fair")
        plan = fair.plan(5, [], [_job(0), _job(1)])
        assert plan == {0: 3, 1: 2}

    def test_admits_only_what_fits_at_min(self):
        fair = get_scheduler("fair")
        queued = [_job(0, min_workers=2, max_workers=2),
                  _job(1, min_workers=2, max_workers=2),
                  _job(2, min_workers=2, max_workers=2)]
        plan = fair.plan(5, [], queued)
        assert plan == {0: 2, 1: 2}


class TestThroughputElastic:
    def test_surplus_follows_marginal_gain(self):
        elastic = get_scheduler("elastic")
        hungry = _job(0, compute=100.0, param_bytes=(1.0,))
        sated = _job(1, compute=0.1, param_bytes=(8e9,))
        plan = elastic.plan(6, [], [hungry, sated])
        # The communication-bound job stays at its floor; every surplus
        # GPU converts to throughput only on the compute-bound job.
        assert plan[0] == 4  # its max
        assert plan[1] == 1

    def test_leaves_gpus_idle_past_the_knee(self):
        elastic = get_scheduler("elastic")
        bound = [_job(0, compute=0.1, param_bytes=(8e9,), max_workers=8)]
        plan = elastic.plan(8, [], bound)
        assert plan == {0: 1}

    def test_ties_resolve_to_earliest_admitted(self):
        elastic = get_scheduler("elastic")
        twins = [_job(0, compute=10.0), _job(1, compute=10.0)]
        plan = elastic.plan(3, [], twins)
        assert plan == {0: 2, 1: 1}


class TestRegistry:
    def test_canonical_names_resolve(self):
        for name in SCHEDULER_NAMES:
            assert get_scheduler(name).name == name

    def test_long_aliases(self):
        assert get_scheduler("fair-share").name == "fair"
        assert get_scheduler("throughput-elastic").name == "elastic"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scheduler("lottery")

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_plans_are_deterministic(self, name):
        scheduler = get_scheduler(name)
        queued = [_job(0), _job(1, max_workers=2), _job(2)]
        assert scheduler.plan(8, [], queued) == scheduler.plan(
            8, [], queued
        )
