"""Arrival-trace determinism: equal specs ⇒ byte-identical streams."""

import json

import pytest

from repro.cluster import TRACE_KINDS, JobSpec, TraceSpec, generate_trace
from repro.cluster.traces import trace_json
from repro.errors import ConfigurationError


class TestDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_is_byte_identical(self, kind):
        spec = TraceSpec(kind=kind, num_jobs=25, seed=42)
        first = trace_json(generate_trace(spec))
        second = trace_json(generate_trace(spec))
        assert first == second

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_different_seeds_differ(self, kind):
        base = TraceSpec(kind=kind, num_jobs=25, seed=42)
        other = TraceSpec(kind=kind, num_jobs=25, seed=43)
        assert trace_json(generate_trace(base)) != trace_json(
            generate_trace(other)
        )

    def test_pinned_small_trace(self):
        # The determinism contract, pinned byte for byte: if this moves,
        # every recorded cluster comparison silently changes meaning.
        spec = TraceSpec(kind="poisson", num_jobs=2, seed=0)
        assert trace_json(generate_trace(spec)) == (
            '[{"iterations":4,"job_id":0,"max_workers":7,'
            '"min_workers":2,"model":"vgg19","submit_time":55.818213,'
            '"total_batch":128},'
            '{"iterations":4,"job_id":1,"max_workers":8,'
            '"min_workers":1,"model":"vgg16","submit_time":98.377088,'
            '"total_batch":256}]'
        )


class TestTraceShape:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_submit_times_are_monotone(self, kind):
        jobs = generate_trace(TraceSpec(kind=kind, num_jobs=40, seed=7))
        times = [job.submit_time for job in jobs]
        assert times == sorted(times)
        assert all(time >= 0 for time in times)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_job_ids_are_dense(self, kind):
        jobs = generate_trace(TraceSpec(kind=kind, num_jobs=12, seed=1))
        assert [job.job_id for job in jobs] == list(range(12))

    def test_attributes_respect_spec_ranges(self):
        spec = TraceSpec(
            kind="bursty",
            num_jobs=30,
            seed=5,
            models=("alexnet", "zfnet"),
            batches=(64,),
            iterations_range=(2, 3),
            min_workers_range=(1, 1),
            max_workers_range=(2, 4),
        )
        for job in generate_trace(spec):
            assert job.model in spec.models
            assert job.total_batch == 64
            assert 2 <= job.iterations <= 3
            assert job.min_workers == 1
            assert 2 <= job.max_workers <= 4

    def test_bursty_clumps_arrivals(self):
        spec = TraceSpec(
            kind="bursty", num_jobs=24, seed=9, burst_size=6,
            burst_spread=0.5,
        )
        jobs = generate_trace(spec)
        gaps = [
            second.submit_time - first.submit_time
            for first, second in zip(jobs, jobs[1:])
        ]
        # Within-burst gaps are sub-second; inter-burst gaps are long.
        assert sum(1 for gap in gaps if gap < 5.0) >= len(gaps) // 2
        assert max(gaps) > spec.mean_interarrival

    def test_trace_json_is_canonical(self):
        jobs = generate_trace(TraceSpec(num_jobs=3, seed=2))
        payload = json.loads(trace_json(jobs))
        assert [entry["job_id"] for entry in payload] == [0, 1, 2]
        assert list(payload[0]) == sorted(payload[0])


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(kind="lumpy")

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceSpec(iterations_range=(3, 2))
        with pytest.raises(ConfigurationError):
            TraceSpec(mean_interarrival=0.0)
        with pytest.raises(ConfigurationError):
            TraceSpec(min_workers_range=(1, 6), max_workers_range=(4, 8))

    def test_job_spec_invariants(self):
        good = dict(
            job_id=0, model="vgg19", total_batch=64, iterations=2,
            min_workers=1, max_workers=4, submit_time=0.0,
        )
        JobSpec(**good)
        with pytest.raises(ConfigurationError):
            JobSpec(**{**good, "max_workers": 0})
        with pytest.raises(ConfigurationError):
            JobSpec(**{**good, "total_batch": 2})
        with pytest.raises(ConfigurationError):
            JobSpec(**{**good, "submit_time": -1.0})
